//! Gradient topology repair (paper §3.4.2).
//!
//! Start from a candidate topology; at each iteration find the
//! maximally-violated constraint and enumerate the paper's repair
//! moves (adjust a hidden terminal's weight, add/remove edges, spawn
//! a new hidden terminal); apply the move that most reduces total
//! violation; stop at (near-)zero violation or an iteration budget,
//! keeping the best configuration seen. Residuals are maintained
//! incrementally by a [`ResidualTracker`] (see
//! [`crate::blueprint::residual`]) so candidate evaluation costs
//! `O(|edges|²)` instead of a full constraint sweep — with no
//! per-move allocation: edge sets are walked as bitsets and the
//! tracker's flat buffers are reused across every restart of a run.

use crate::blueprint::constraints::{
    ConstraintRef, ConstraintSystem, TransformedHt, TransformedTopology,
};
use crate::blueprint::residual::{ResidualTracker, TrackerBuffers};
use crate::error::BluError;
use crate::runtime::deadline::{Deadline, DeadlineToken};
use blu_sim::clientset::ClientSet;
use blu_sim::topology::InterferenceTopology;
use blu_traces::stats::pair_index;
use serde::{Deserialize, Serialize};

/// Weight below which a hidden terminal is considered gone.
const MIN_WEIGHT: f64 = 1e-4;

/// Configuration of the repair loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceConfig {
    /// Iteration budget per restart.
    pub max_iters: usize,
    /// Total violation below which the topology is accepted.
    pub epsilon: f64,
    /// Number of random restarts (in addition to the structured
    /// initializations).
    pub random_restarts: usize,
    /// Enable the weight-refinement pass after structural repair.
    pub refine_weights: bool,
    /// Residual fraction (violation over constraint target mass) at
    /// or below which the blueprint counts as [`Converged`]
    /// (`InferenceVerdict::Converged`). Measured inputs never reach
    /// `epsilon`, so this is the noisy-regime acceptance knob.
    pub accept_residual: f64,
    /// Residual fraction at or above which the blueprint is
    /// [`Degraded`] (`InferenceVerdict::Degraded`): the constraint
    /// system left most of its target mass unexplained and the
    /// orchestrator should not speculate on it.
    pub degraded_residual: f64,
    /// Time budget for the whole inference (all restarts plus
    /// refinement). On expiry the best-so-far blueprint is returned
    /// with [`InferenceResult::completed`] `= false`. The default
    /// ([`Deadline::None`]) runs to convergence, bit-identical to the
    /// pre-deadline behavior.
    pub deadline: Deadline,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            max_iters: 400,
            epsilon: 1e-6,
            random_restarts: 6,
            refine_weights: true,
            accept_residual: 0.05,
            degraded_residual: 0.5,
            deadline: Deadline::None,
        }
    }
}

impl InferenceConfig {
    /// Reject configurations that would produce NaN thresholds or a
    /// loop that can never run, with a typed
    /// [`BluError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), BluError> {
        if self.max_iters == 0 {
            return Err(BluError::InvalidConfig(
                "inference max_iters must be > 0".into(),
            ));
        }
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(BluError::InvalidConfig(format!(
                "inference epsilon must be finite and > 0, got {}",
                self.epsilon
            )));
        }
        if !self.accept_residual.is_finite() || !(0.0..=1.0).contains(&self.accept_residual) {
            return Err(BluError::InvalidConfig(format!(
                "accept_residual must be finite in [0, 1], got {}",
                self.accept_residual
            )));
        }
        if !self.degraded_residual.is_finite() || !(0.0..=1.0).contains(&self.degraded_residual) {
            return Err(BluError::InvalidConfig(format!(
                "degraded_residual must be finite in [0, 1], got {}",
                self.degraded_residual
            )));
        }
        if self.degraded_residual < self.accept_residual {
            return Err(BluError::InvalidConfig(format!(
                "degraded_residual ({}) must be >= accept_residual ({})",
                self.degraded_residual, self.accept_residual
            )));
        }
        self.deadline.validate()
    }
}

/// How much the returned blueprint should be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferenceVerdict {
    /// The constraint system is (near-)fully explained: residual
    /// violation under `epsilon` or within `accept_residual` of the
    /// target mass.
    Converged,
    /// The optimisation budget ran out before reaching the acceptance
    /// threshold. The blueprint is the best found and usually usable,
    /// but its confidence should gate speculation.
    MaxIters,
    /// The inputs were inconsistent or pathological (non-finite
    /// violation, no candidate produced, or most of the target mass
    /// unexplained). Callers must not speculate on this blueprint.
    Degraded,
}

impl std::fmt::Display for InferenceVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferenceVerdict::Converged => write!(f, "converged"),
            InferenceVerdict::MaxIters => write!(f, "max-iters"),
            InferenceVerdict::Degraded => write!(f, "degraded"),
        }
    }
}

/// Result of inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceResult {
    /// The inferred topology (probability domain, canonicalized).
    pub topology: InterferenceTopology,
    /// Total violation of the returned topology.
    pub violation: f64,
    /// Repair iterations spent across all restarts.
    pub iterations: usize,
    /// Number of restarts attempted.
    pub restarts: usize,
    /// Fraction of the constraint system's target mass left
    /// unexplained, in `[0, 1]`.
    pub residual_fraction: f64,
    /// Convergence verdict.
    pub verdict: InferenceVerdict,
    /// Whether the run finished within its deadline (always `true`
    /// under [`Deadline::None`]). When `false` the blueprint is the
    /// anytime best-so-far.
    pub completed: bool,
    /// Upper bound on work units executed past the deadline (see
    /// [`DeadlineToken::overshoot`]); `0` when completed.
    pub overshoot: u64,
}

impl InferenceResult {
    /// Blueprint confidence in `[0, 1]`: the explained fraction of
    /// the constraint target mass. `1.0` means every measured
    /// individual/pair statistic is reproduced by the blueprint.
    pub fn confidence(&self) -> f64 {
        (1.0 - self.residual_fraction).clamp(0.0, 1.0)
    }
}

/// Residual fraction and verdict for a final violation — shared by
/// the gradient path ([`infer_topology`]) and the MCMC backend
/// ([`crate::blueprint::mcmc::infer_mcmc_result`]) so both report
/// confidence on the same scale.
pub(crate) fn classify(
    sys: &ConstraintSystem,
    violation: f64,
    config: &InferenceConfig,
) -> (f64, InferenceVerdict) {
    let mass = sys.target_mass();
    let residual_fraction = if !violation.is_finite() {
        1.0
    } else if mass > 0.0 {
        (violation / mass).clamp(0.0, 1.0)
    } else if violation > config.epsilon {
        1.0
    } else {
        0.0
    };
    let verdict = if !violation.is_finite() {
        InferenceVerdict::Degraded
    } else if violation <= config.epsilon || residual_fraction <= config.accept_residual {
        InferenceVerdict::Converged
    } else if residual_fraction >= config.degraded_residual {
        InferenceVerdict::Degraded
    } else {
        InferenceVerdict::MaxIters
    };
    (residual_fraction, verdict)
}

/// The repair engine: a candidate topology plus a borrowed
/// [`ResidualTracker`] holding the incrementally maintained
/// residuals. The tracker outlives the repairer so its flat buffers
/// are reused across restarts instead of reallocated per start.
pub(crate) struct Repairer<'t, 'a> {
    res: &'t mut ResidualTracker<'a>,
    topo: TransformedTopology,
    /// Reusable candidate-move buffer (cleared per iteration).
    cand: Vec<Move>,
}

/// One repair move.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Move {
    /// `q_t[k] += delta` (delta may be negative but must keep > 0).
    AdjustWeight { k: usize, delta: f64 },
    /// Add edges `added` to HT `k`.
    AddEdges { k: usize, added: ClientSet },
    /// Remove edges `removed` from HT `k`.
    RemoveEdges { k: usize, removed: ClientSet },
    /// Create a new HT.
    NewHt { edges: ClientSet, q_t: f64 },
}

impl<'t, 'a> Repairer<'t, 'a> {
    /// Start a repair from `start`. Resets the tracker, so the same
    /// tracker can be handed to successive repairers.
    pub(crate) fn new(res: &'t mut ResidualTracker<'a>, start: TransformedTopology) -> Self {
        res.reset();
        let mut r = Repairer {
            res,
            topo: TransformedTopology::default(),
            cand: Vec::new(),
        };
        for ht in start.hts {
            r.apply(Move::NewHt {
                edges: ht.edges,
                q_t: ht.q_t,
            });
        }
        r
    }

    fn total_violation(&self) -> f64 {
        self.res.recompute_violation()
    }

    fn edge_change_cost(&self, old: ClientSet, new: ClientSet, w: f64) -> f64 {
        self.res.edge_change_cost(old, new, w)
    }

    fn move_cost(&self, m: Move) -> f64 {
        match m {
            Move::AdjustWeight { k, delta } => self.res.shift_cost(self.topo.hts[k].edges, delta),
            Move::AddEdges { k, added } => {
                let ht = &self.topo.hts[k];
                self.res
                    .edge_change_cost(ht.edges, ht.edges.union(added), ht.q_t)
            }
            Move::RemoveEdges { k, removed } => {
                let ht = &self.topo.hts[k];
                self.res
                    .edge_change_cost(ht.edges, ht.edges.difference(removed), ht.q_t)
            }
            Move::NewHt { edges, q_t } => self.res.shift_cost(edges, q_t),
        }
    }

    fn apply(&mut self, m: Move) {
        match m {
            Move::AdjustWeight { k, delta } => {
                let edges = self.topo.hts[k].edges;
                self.res.shift(edges, delta);
                self.topo.hts[k].q_t += delta;
            }
            Move::AddEdges { k, added } => {
                let ht = self.topo.hts[k];
                let new = ht.edges.union(added);
                self.apply_edge_change(k, ht.edges, new, ht.q_t);
            }
            Move::RemoveEdges { k, removed } => {
                let ht = self.topo.hts[k];
                let new = ht.edges.difference(removed);
                self.apply_edge_change(k, ht.edges, new, ht.q_t);
            }
            Move::NewHt { edges, q_t } => {
                self.res.shift(edges, q_t);
                self.topo.hts.push(TransformedHt { q_t, edges });
            }
        }
    }

    fn apply_edge_change(&mut self, k: usize, old: ClientSet, new: ClientSet, w: f64) {
        self.res.apply_edge_change(old, new, w);
        self.topo.hts[k].edges = new;
    }

    /// Enumerate repair candidates for the given violated constraint
    /// (the paper's Case 1 / Case 2 catalogues) into the reusable
    /// candidate buffer.
    fn candidates(&mut self, c: ConstraintRef, residual: f64) {
        self.cand.clear();
        let out = &mut self.cand;
        let topo = &self.topo;
        let sys = self.res.sys();
        let over = residual > 0.0;
        let mag = residual.abs();
        match c {
            ConstraintRef::Individual(i) => {
                for (k, ht) in topo.hts.iter().enumerate() {
                    let has = ht.edges.contains(i);
                    if over && has {
                        // Reduce contribution or drop the edge.
                        if ht.q_t - mag > MIN_WEIGHT {
                            out.push(Move::AdjustWeight { k, delta: -mag });
                        }
                        out.push(Move::RemoveEdges {
                            k,
                            removed: ClientSet::singleton(i),
                        });
                    } else if !over && has {
                        out.push(Move::AdjustWeight { k, delta: mag });
                    } else if !over && !has {
                        out.push(Move::AddEdges {
                            k,
                            added: ClientSet::singleton(i),
                        });
                    }
                }
                if !over {
                    out.push(Move::NewHt {
                        edges: ClientSet::singleton(i),
                        q_t: mag,
                    });
                }
            }
            ConstraintRef::Pair(i, j) => {
                let pair = ClientSet::from_iter([i, j]);
                for (k, ht) in topo.hts.iter().enumerate() {
                    let shared = ht.edges.contains(i) && ht.edges.contains(j);
                    if over && shared {
                        if ht.q_t - mag > MIN_WEIGHT {
                            out.push(Move::AdjustWeight { k, delta: -mag });
                        }
                        out.push(Move::RemoveEdges {
                            k,
                            removed: ClientSet::singleton(i),
                        });
                        out.push(Move::RemoveEdges {
                            k,
                            removed: ClientSet::singleton(j),
                        });
                        out.push(Move::RemoveEdges { k, removed: pair });
                    } else if !over && shared {
                        out.push(Move::AdjustWeight { k, delta: mag });
                    } else if !over && !shared {
                        // Add the missing edge(s).
                        let missing = pair.difference(ht.edges);
                        out.push(Move::AddEdges { k, added: missing });
                    }
                }
                if !over {
                    out.push(Move::NewHt {
                        edges: pair,
                        q_t: mag,
                    });
                }
            }
            ConstraintRef::Triple(t) => {
                let (i, j, k) = sys.triples[t].clients;
                let trio = ClientSet::from_iter([i, j, k]);
                for (kk, ht) in topo.hts.iter().enumerate() {
                    let covers =
                        ht.edges.contains(i) && ht.edges.contains(j) && ht.edges.contains(k);
                    if over && covers {
                        if ht.q_t - mag > MIN_WEIGHT {
                            out.push(Move::AdjustWeight { k: kk, delta: -mag });
                        }
                        // Break the triple coverage by dropping any
                        // one of the three edges.
                        for c in [i, j, k] {
                            out.push(Move::RemoveEdges {
                                k: kk,
                                removed: ClientSet::singleton(c),
                            });
                        }
                    } else if !over && covers {
                        out.push(Move::AdjustWeight { k: kk, delta: mag });
                    } else if !over && !covers {
                        let missing = trio.difference(ht.edges);
                        out.push(Move::AddEdges {
                            k: kk,
                            added: missing,
                        });
                    }
                }
                if !over {
                    out.push(Move::NewHt {
                        edges: trio,
                        q_t: mag,
                    });
                }
            }
        }
    }

    /// Run the repair loop; returns (best topology, its violation,
    /// iterations used). The deadline token is consulted once per
    /// iteration (the work-unit granularity of the gradient path);
    /// on expiry the best state seen so far is returned.
    pub(crate) fn run(
        mut self,
        max_iters: usize,
        epsilon: f64,
        token: &mut DeadlineToken,
    ) -> (TransformedTopology, f64, usize) {
        /// Non-improving iterations tolerated before giving up on
        /// this restart (the move catalogue is uphill-capable, so
        /// bounded patience beats both strict descent and cycling to
        /// the iteration cap).
        const PATIENCE: usize = 60;
        let mut best = self.topo.clone();
        let mut best_v = self.total_violation();
        let mut iters = 0;
        let mut stagnant = 0usize;
        while iters < max_iters && stagnant < PATIENCE {
            if token.tick() {
                break;
            }
            iters += 1;
            let v = self.total_violation();
            if v < best_v - 1e-12 {
                best = self.topo.clone();
                best_v = v;
                stagnant = 0;
            } else {
                stagnant += 1;
            }
            if v < epsilon {
                break;
            }
            let (c, r) = self.res.max_violated();
            if r.abs() < epsilon {
                break;
            }
            self.candidates(c, r);
            if self.cand.is_empty() {
                break;
            }
            // First strict minimum by cost (`Iterator::min_by`
            // semantics), evaluated without materializing a
            // `(Move, cost)` vector.
            let mut chosen: Option<(Move, f64)> = None;
            for idx in 0..self.cand.len() {
                let m = self.cand[idx];
                let cost = self.move_cost(m);
                let better = match chosen {
                    None => true,
                    Some((_, bc)) => cost.total_cmp(&bc) == std::cmp::Ordering::Less,
                };
                if better {
                    chosen = Some((m, cost));
                }
            }
            let Some((m, _cost)) = chosen else {
                break; // no applicable move: keep the best seen
            };
            self.apply(m);
            // Garbage-collect dead HTs so candidate lists stay small.
            if iters % 16 == 0 {
                self.gc();
            }
        }
        let v = self.total_violation();
        if v < best_v {
            best = self.topo.clone();
            best_v = v;
        }
        best.prune(MIN_WEIGHT);
        (best, best_v, iters)
    }

    /// Remove edgeless/weightless HTs, keeping residuals consistent.
    fn gc(&mut self) {
        let mut k = 0;
        while k < self.topo.hts.len() {
            let ht = self.topo.hts[k];
            if ht.edges.is_empty() || ht.q_t <= MIN_WEIGHT {
                // Undo its contribution, then drop it.
                self.res.shift(ht.edges, -ht.q_t);
                self.topo.hts.swap_remove(k);
            } else {
                k += 1;
            }
        }
    }
}

/// Reusable working memory for one inference worker: the residual
/// tracker's flat buffers plus the weight-refinement arrays and
/// coverage table. One scratch serves any number of successive cells
/// ([`infer_topology_with`] rebinds it to each cell's constraint
/// system), so a batch shard allocates once instead of per cell.
/// Results are **bit-identical** to the scratch-free reference
/// entry points — only the allocations and the refinement kernel's
/// memory layout differ, never the floating-point operation order.
#[derive(Debug, Default)]
pub struct InferScratch {
    tracker: TrackerBuffers,
    refine: RefineScratch,
}

/// Reusable buffers of [`refine_weights_with`]: the flattened
/// constraint target list, the weight vector, the gradient, and the
/// constraint × terminal coverage table.
#[derive(Debug, Default)]
struct RefineScratch {
    constraints: Vec<(ConstraintRef, f64)>,
    q: Vec<f64>,
    grad: Vec<f64>,
    covers: Vec<bool>,
}

/// Local polish: single-edge toggles on the inferred terminals,
/// accepted whenever they reduce total violation, interleaved with
/// weight re-fits. The strict exact-edge-set metric is most often
/// lost to exactly one wrong edge; this pass repairs those directly.
pub fn polish(sys: &ConstraintSystem, topo: &mut TransformedTopology, passes: usize) {
    let mut tracker = ResidualTracker::new(sys);
    polish_plain(&mut tracker, topo, passes);
}

/// [`polish`] against a caller-provided tracker, re-fitting weights
/// through the plain [`refine_weights`] — the reference path of
/// [`infer_topology`].
fn polish_plain(tracker: &mut ResidualTracker<'_>, topo: &mut TransformedTopology, passes: usize) {
    polish_impl(tracker, topo, passes, &mut |sys, topo| {
        refine_weights(sys, topo)
    });
}

/// [`polish`] against a caller-provided tracker and refinement
/// scratch — the fast path of [`infer_topology_with`].
fn polish_with(
    tracker: &mut ResidualTracker<'_>,
    topo: &mut TransformedTopology,
    passes: usize,
    refine: &mut RefineScratch,
) {
    polish_impl(tracker, topo, passes, &mut |sys, topo| {
        refine_weights_with(sys, topo, refine)
    });
}

/// The shared polish loop, parameterized over the weight re-fit so
/// the reference and scratch paths drive identical toggle sequences.
fn polish_impl(
    tracker: &mut ResidualTracker<'_>,
    topo: &mut TransformedTopology,
    passes: usize,
    refine: &mut dyn FnMut(&ConstraintSystem, &mut TransformedTopology),
) {
    let sys = tracker.sys();
    for _ in 0..passes {
        let mut improved = false;
        let mut r = Repairer::new(tracker, topo.clone());
        for k in 0..r.topo.hts.len() {
            for i in 0..sys.n {
                let ht = r.topo.hts[k];
                if ht.q_t <= MIN_WEIGHT {
                    continue;
                }
                let new = if ht.edges.contains(i) {
                    ht.edges.without(i)
                } else {
                    ht.edges.with(i)
                };
                if new.is_empty() {
                    continue;
                }
                let cost = r.edge_change_cost(ht.edges, new, ht.q_t);
                if cost < -1e-9 {
                    r.apply_edge_change(k, ht.edges, new, ht.q_t);
                    improved = true;
                }
            }
        }
        *topo = r.topo;
        refine(sys, topo);
        if !improved {
            break;
        }
    }
}

/// Non-negative least-squares refinement of the weights `Q(k)` with
/// the edge structure held fixed (projected gradient on the linear
/// system of Eqn. 6). Cleans up weight error left by the
/// combinatorial repair.
///
/// This is the plain reference implementation;
/// [`refine_weights_with`] is the scratch-backed fast path that
/// produces bit-identical weights.
pub fn refine_weights(sys: &ConstraintSystem, topo: &mut TransformedTopology) {
    let h = topo.hts.len();
    if h == 0 {
        return;
    }
    // Rows: every constraint; columns: HTs. Entry 1 if HT contributes.
    let contributes = |c: ConstraintRef, ht: &TransformedHt| -> bool {
        match c {
            ConstraintRef::Individual(i) => ht.edges.contains(i),
            ConstraintRef::Pair(i, j) => ht.edges.contains(i) && ht.edges.contains(j),
            ConstraintRef::Triple(t) => {
                let (i, j, k) = sys.triples[t].clients;
                ht.edges.contains(i) && ht.edges.contains(j) && ht.edges.contains(k)
            }
        }
    };
    let constraints: Vec<(ConstraintRef, f64)> = sys
        .all_constraints()
        .map(|c| {
            let target = match c {
                ConstraintRef::Individual(i) => sys.individual[i],
                ConstraintRef::Pair(i, j) => sys.pair[pair_index(sys.n, i, j)],
                ConstraintRef::Triple(t) => sys.triples[t].target,
            };
            (c, target)
        })
        .collect();
    let mut q: Vec<f64> = topo.hts.iter().map(|ht| ht.q_t).collect();
    // Lipschitz-safe step: 1 / (max column count × rows touched).
    let step = 1.0 / (constraints.len() as f64).max(1.0);
    // One gradient buffer for all 400 iterations.
    let mut grad = vec![0.0; h];
    for _ in 0..400 {
        grad.iter_mut().for_each(|g| *g = 0.0);
        for &(c, target) in &constraints {
            let mut contrib = 0.0;
            for (k, ht) in topo.hts.iter().enumerate() {
                if contributes(c, ht) {
                    contrib += q[k];
                }
            }
            let r = contrib - target;
            for (k, ht) in topo.hts.iter().enumerate() {
                if contributes(c, ht) {
                    grad[k] += 2.0 * r;
                }
            }
        }
        let mut moved = 0.0;
        for k in 0..h {
            let new = (q[k] - step * grad[k]).max(0.0);
            moved += (new - q[k]).abs();
            q[k] = new;
        }
        if moved < 1e-10 {
            break;
        }
    }
    for (k, ht) in topo.hts.iter_mut().enumerate() {
        ht.q_t = q[k];
    }
    topo.prune(MIN_WEIGHT);
}

/// [`refine_weights`] against caller-provided scratch. The coverage
/// table (which terminal contributes to which constraint) is filled
/// once up front — the edge structure is held fixed here, so the 400
/// gradient iterations read it instead of re-testing bitsets — and
/// every buffer is recycled across calls. Iteration order (constraints
/// canonical, terminals ascending) matches [`refine_weights`]'s
/// historical loop exactly, so the refined weights are bit-identical.
fn refine_weights_with(
    sys: &ConstraintSystem,
    topo: &mut TransformedTopology,
    scratch: &mut RefineScratch,
) {
    let h = topo.hts.len();
    if h == 0 {
        return;
    }
    // Rows: every constraint; columns: HTs. Entry 1 if HT contributes.
    let contributes = |c: ConstraintRef, ht: &TransformedHt| -> bool {
        match c {
            ConstraintRef::Individual(i) => ht.edges.contains(i),
            ConstraintRef::Pair(i, j) => ht.edges.contains(i) && ht.edges.contains(j),
            ConstraintRef::Triple(t) => {
                let (i, j, k) = sys.triples[t].clients;
                ht.edges.contains(i) && ht.edges.contains(j) && ht.edges.contains(k)
            }
        }
    };
    let constraints = &mut scratch.constraints;
    constraints.clear();
    constraints.extend(sys.all_constraints().map(|c| {
        let target = match c {
            ConstraintRef::Individual(i) => sys.individual[i],
            ConstraintRef::Pair(i, j) => sys.pair[pair_index(sys.n, i, j)],
            ConstraintRef::Triple(t) => sys.triples[t].target,
        };
        (c, target)
    }));
    let covers = &mut scratch.covers;
    covers.clear();
    for &(c, _) in constraints.iter() {
        covers.extend(topo.hts.iter().map(|ht| contributes(c, ht)));
    }
    let q = &mut scratch.q;
    q.clear();
    q.extend(topo.hts.iter().map(|ht| ht.q_t));
    // Lipschitz-safe step: 1 / (max column count × rows touched).
    let step = 1.0 / (constraints.len() as f64).max(1.0);
    // One gradient buffer for all 400 iterations.
    let grad = &mut scratch.grad;
    grad.clear();
    grad.resize(h, 0.0);
    for _ in 0..400 {
        grad.iter_mut().for_each(|g| *g = 0.0);
        for (row, &(_, target)) in constraints.iter().enumerate() {
            let cover = &covers[row * h..(row + 1) * h];
            let mut contrib = 0.0;
            for k in 0..h {
                if cover[k] {
                    contrib += q[k];
                }
            }
            let r = contrib - target;
            for k in 0..h {
                if cover[k] {
                    grad[k] += 2.0 * r;
                }
            }
        }
        let mut moved = 0.0;
        for k in 0..h {
            let new = (q[k] - step * grad[k]).max(0.0);
            moved += (new - q[k]).abs();
            q[k] = new;
        }
        if moved < 1e-10 {
            break;
        }
    }
    for (k, ht) in topo.hts.iter_mut().enumerate() {
        ht.q_t = q[k];
    }
    topo.prune(MIN_WEIGHT);
}

/// Full inference: multi-point initialization (see
/// [`crate::blueprint::init`]), repair from each start, pick the
/// topology with the smallest violation, breaking ties toward fewer
/// hidden terminals; optionally refine weights. One
/// [`ResidualTracker`] is allocated for the whole run and reset per
/// restart.
///
/// This is the plain reference entry point; batch workers use
/// [`infer_topology_with`], which returns bit-identical results from
/// recycled working memory.
pub fn infer_topology(sys: &ConstraintSystem, config: &InferenceConfig) -> InferenceResult {
    let starts = crate::blueprint::init::starting_topologies(sys, config.random_restarts);
    let restarts = starts.len();
    let mut tracker = ResidualTracker::new(sys);
    let mut best: Option<(TransformedTopology, f64)> = None;
    let mut total_iters = 0;
    let mut token = config.deadline.token();
    for start in starts {
        let repairer = Repairer::new(&mut tracker, start);
        let (mut topo, mut v, iters) = repairer.run(config.max_iters, config.epsilon, &mut token);
        total_iters += iters;
        // Skip the (unbudgeted) refinement pass once out of budget:
        // the anytime contract is "best repaired state so far, now".
        if config.refine_weights && v > config.epsilon && !token.expired() {
            refine_weights(sys, &mut topo);
            polish_plain(&mut tracker, &mut topo, 6);
            v = sys.total_violation(&topo);
        }
        let better = match &best {
            None => true,
            Some((bt, bv)) => {
                // Smallest violation wins; near-ties go to fewer HTs.
                v < bv - config.epsilon
                    || ((v - bv).abs() <= config.epsilon && topo.hts.len() < bt.hts.len())
            }
        };
        if better {
            let stop = v < config.epsilon;
            best = Some((topo, v));
            if stop {
                break;
            }
        }
        if token.expired() {
            break;
        }
    }
    // `starting_topologies` always yields at least the empty start,
    // but a pathological constraint system must degrade, not panic.
    let (topo, violation) =
        best.unwrap_or_else(|| (TransformedTopology { hts: Vec::new() }, f64::INFINITY));
    let (residual_fraction, verdict) = classify(sys, violation, config);
    InferenceResult {
        topology: topo.to_topology(sys.n).canonicalize(),
        violation,
        iterations: total_iters,
        restarts,
        residual_fraction,
        verdict,
        completed: !token.expired(),
        overshoot: token.overshoot(),
    }
}

/// [`infer_topology`] against caller-provided scratch: the tracker's
/// flat buffers are rebound to this cell's constraint system instead
/// of allocated, and weight refinement runs its coverage-table kernel
/// ([`refine_weights_with`]) from recycled arrays — so a worker
/// blue-printing many cells in a row pays the allocations once and
/// skips the per-iteration bitset re-tests. Bit-identical to
/// [`infer_topology`] (pinned by the batch differential tests).
pub fn infer_topology_with(
    sys: &ConstraintSystem,
    config: &InferenceConfig,
    scratch: &mut InferScratch,
) -> InferenceResult {
    let starts = crate::blueprint::init::starting_topologies(sys, config.random_restarts);
    let restarts = starts.len();
    let mut tracker = ResidualTracker::rebind(sys, std::mem::take(&mut scratch.tracker));
    let mut best: Option<(TransformedTopology, f64)> = None;
    let mut total_iters = 0;
    let mut token = config.deadline.token();
    for start in starts {
        let repairer = Repairer::new(&mut tracker, start);
        let (mut topo, mut v, iters) = repairer.run(config.max_iters, config.epsilon, &mut token);
        total_iters += iters;
        // Skip the (unbudgeted) refinement pass once out of budget:
        // the anytime contract is "best repaired state so far, now".
        if config.refine_weights && v > config.epsilon && !token.expired() {
            refine_weights_with(sys, &mut topo, &mut scratch.refine);
            polish_with(&mut tracker, &mut topo, 6, &mut scratch.refine);
            v = sys.total_violation(&topo);
        }
        let better = match &best {
            None => true,
            Some((bt, bv)) => {
                // Smallest violation wins; near-ties go to fewer HTs.
                v < bv - config.epsilon
                    || ((v - bv).abs() <= config.epsilon && topo.hts.len() < bt.hts.len())
            }
        };
        if better {
            let stop = v < config.epsilon;
            best = Some((topo, v));
            if stop {
                break;
            }
        }
        if token.expired() {
            break;
        }
    }
    // Hand the flat buffers back for the next cell on this scratch.
    scratch.tracker = tracker.into_buffers();
    // `starting_topologies` always yields at least the empty start,
    // but a pathological constraint system must degrade, not panic.
    let (topo, violation) =
        best.unwrap_or_else(|| (TransformedTopology { hts: Vec::new() }, f64::INFINITY));
    let (residual_fraction, verdict) = classify(sys, violation, config);
    InferenceResult {
        topology: topo.to_topology(sys.n).canonicalize(),
        violation,
        iterations: total_iters,
        restarts,
        residual_fraction,
        verdict,
        completed: !token.expired(),
        overshoot: token.overshoot(),
    }
}

/// Incremental warm-start refinement — the streaming counterpart of
/// [`infer_topology_with`]. Instead of the full restart portfolio, a
/// single [`Repairer`] runs from `start` (typically the serving
/// blueprint lifted back into the log domain via
/// [`TransformedTopology::from_topology`]) against a constraint
/// system built from the current sliding observation window, then
/// takes the usual weight-refinement/polish pass. Under a small
/// [`Deadline::Steps`] budget this folds window deltas into the
/// blueprint between sub-frame segments at a fraction of a full
/// inference's cost; the verdict/confidence semantics are identical
/// to the full path, so the orchestrator gates installation the same
/// way.
pub fn refine_topology_with(
    sys: &ConstraintSystem,
    config: &InferenceConfig,
    start: TransformedTopology,
    scratch: &mut InferScratch,
) -> InferenceResult {
    let mut tracker = ResidualTracker::rebind(sys, std::mem::take(&mut scratch.tracker));
    let mut token = config.deadline.token();
    let repairer = Repairer::new(&mut tracker, start);
    let (mut topo, mut v, iterations) = repairer.run(config.max_iters, config.epsilon, &mut token);
    if config.refine_weights && v > config.epsilon && !token.expired() {
        refine_weights_with(sys, &mut topo, &mut scratch.refine);
        polish_with(&mut tracker, &mut topo, 6, &mut scratch.refine);
        v = sys.total_violation(&topo);
    }
    scratch.tracker = tracker.into_buffers();
    let (residual_fraction, verdict) = classify(sys, v, config);
    InferenceResult {
        topology: topo.to_topology(sys.n).canonicalize(),
        violation: v,
        iterations,
        restarts: 1,
        residual_fraction,
        verdict,
        completed: !token.expired(),
        overshoot: token.overshoot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::accuracy::topology_accuracy;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::{HiddenTerminal, InterferenceTopology};

    fn topo(n: usize, spec: &[(f64, &[usize])]) -> InterferenceTopology {
        InterferenceTopology {
            n_clients: n,
            hts: spec
                .iter()
                .map(|&(q, edges)| HiddenTerminal {
                    q,
                    edges: edges.iter().copied().collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn warm_start_refine_keeps_a_correct_blueprint() {
        // Refining from the truth against the truth's constraint
        // system must converge immediately and keep the topology.
        let t = topo(4, &[(0.4, &[0, 1]), (0.25, &[2]), (0.6, &[1, 2, 3])]);
        let sys = ConstraintSystem::from_topology(&t);
        let start = TransformedTopology::from_topology(&t);
        let mut scratch = InferScratch::default();
        let r = refine_topology_with(&sys, &InferenceConfig::default(), start, &mut scratch);
        assert_eq!(r.verdict, InferenceVerdict::Converged);
        assert_eq!(r.restarts, 1);
        assert!(r.completed);
        let acc = topology_accuracy(&t, &r.topology).exact_fraction();
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn warm_start_refine_tracks_a_perturbed_system() {
        // The environment drifts (one HT's q changes): a warm start
        // from the stale blueprint must recover the new truth in a
        // single budgeted repair.
        let old = topo(5, &[(0.4, &[0, 1]), (0.3, &[2, 3])]);
        let new = topo(5, &[(0.4, &[0, 1]), (0.55, &[2, 3])]);
        let sys = ConstraintSystem::from_topology(&new);
        let start = TransformedTopology::from_topology(&old);
        let mut scratch = InferScratch::default();
        let config = InferenceConfig {
            deadline: Deadline::Steps(200),
            ..InferenceConfig::default()
        };
        let r = refine_topology_with(&sys, &config, start, &mut scratch);
        assert_eq!(r.verdict, InferenceVerdict::Converged);
        let acc = topology_accuracy(&new, &r.topology).exact_fraction();
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn ground_truth_is_a_fixed_point() {
        // Starting from the truth, the repairer must not move.
        let t = topo(4, &[(0.4, &[0, 1]), (0.25, &[2]), (0.6, &[1, 2, 3])]);
        let sys = ConstraintSystem::from_topology(&t);
        let start = TransformedTopology::from_topology(&t);
        let mut tracker = ResidualTracker::new(&sys);
        let r = Repairer::new(&mut tracker, start.clone());
        let (out, v, iters) = r.run(100, 1e-9, &mut Deadline::None.token());
        assert!(v < 1e-9, "violation {v}");
        assert!(iters <= 2);
        assert_eq!(out.hts.len(), 3);
    }

    #[test]
    fn recovers_single_hidden_terminal() {
        let t = topo(3, &[(0.5, &[0, 1, 2])]);
        let sys = ConstraintSystem::from_topology(&t);
        let result = infer_topology(&sys, &InferenceConfig::default());
        assert!(result.violation < 1e-6, "violation {}", result.violation);
        let acc = topology_accuracy(&t, &result.topology);
        assert_eq!(acc.exact_fraction(), 1.0, "{result:?}");
    }

    #[test]
    fn recovers_disjoint_hidden_terminals() {
        let t = topo(4, &[(0.3, &[0, 1]), (0.6, &[2, 3])]);
        let sys = ConstraintSystem::from_topology(&t);
        let result = infer_topology(&sys, &InferenceConfig::default());
        assert!(result.violation < 1e-6);
        assert_eq!(
            topology_accuracy(&t, &result.topology).exact_fraction(),
            1.0
        );
    }

    #[test]
    fn recovers_overlapping_hidden_terminals() {
        let t = topo(4, &[(0.4, &[0, 1, 2]), (0.2, &[2, 3])]);
        let sys = ConstraintSystem::from_topology(&t);
        let result = infer_topology(&sys, &InferenceConfig::default());
        assert!(result.violation < 1e-5, "violation {}", result.violation);
        let acc = topology_accuracy(&t, &result.topology);
        assert!(acc.exact_fraction() >= 0.5, "{:?}", result.topology);
    }

    #[test]
    fn recovered_weights_match_truth() {
        let t = topo(3, &[(0.45, &[0, 1, 2])]);
        let sys = ConstraintSystem::from_topology(&t);
        let result = infer_topology(&sys, &InferenceConfig::default());
        assert_eq!(result.topology.n_hidden(), 1);
        assert!(
            (result.topology.hts[0].q - 0.45).abs() < 1e-4,
            "q = {}",
            result.topology.hts[0].q
        );
    }

    #[test]
    fn empty_system_yields_empty_topology() {
        let t = InterferenceTopology::interference_free(4);
        let sys = ConstraintSystem::from_topology(&t);
        let result = infer_topology(&sys, &InferenceConfig::default());
        assert_eq!(result.topology.n_hidden(), 0);
        assert!(result.violation < 1e-9);
    }

    #[test]
    fn refine_weights_fixes_perturbed_weights() {
        let t = topo(4, &[(0.4, &[0, 1]), (0.3, &[2, 3])]);
        let sys = ConstraintSystem::from_topology(&t);
        let mut perturbed = TransformedTopology::from_topology(&t);
        perturbed.hts[0].q_t *= 1.5;
        perturbed.hts[1].q_t *= 0.5;
        refine_weights(&sys, &mut perturbed);
        let v = sys.total_violation(&perturbed);
        assert!(v < 1e-3, "violation after refinement {v}");
    }

    #[test]
    fn random_topologies_inferred_with_high_accuracy() {
        // Noiseless inputs, moderate size: expect mostly-exact
        // recovery across seeds (paper Fig. 14 regime).
        let mut total_acc = 0.0;
        let trials = 20;
        for seed in 0..trials {
            let mut rng = DetRng::seed_from_u64(seed);
            let truth =
                InterferenceTopology::random(6, 3, (0.15, 0.6), 0.4, &mut rng).canonicalize();
            let sys = ConstraintSystem::from_topology(&truth);
            let result = infer_topology(&sys, &InferenceConfig::default());
            let acc = topology_accuracy(&truth, &result.topology).exact_fraction();
            total_acc += acc;
        }
        let mean = total_acc / trials as f64;
        assert!(mean > 0.8, "mean exact-edge accuracy {mean}");
    }
}

#[cfg(test)]
mod triple_inference_tests {
    use super::*;
    use crate::blueprint::accuracy::topology_accuracy;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::HiddenTerminal;

    /// Paper §3.5: pairwise statistics cannot separate a "star +
    /// singles" truth from a cheaper "triangle" explanation, so the
    /// fewest-terminals tie-break picks the triangle; one triple
    /// measurement restores the truth.
    #[test]
    fn triple_evidence_disambiguates_skewed_topology() {
        let q = 0.4;
        let star = InterferenceTopology {
            n_clients: 3,
            hts: vec![
                HiddenTerminal {
                    q,
                    edges: ClientSet::from_iter([0, 1, 2]),
                },
                HiddenTerminal {
                    q,
                    edges: ClientSet::singleton(0),
                },
                HiddenTerminal {
                    q,
                    edges: ClientSet::singleton(1),
                },
                HiddenTerminal {
                    q,
                    edges: ClientSet::singleton(2),
                },
            ],
        };
        // Pairwise only: the inferred solution explains the stats but
        // need not match the star (triangle is cheaper).
        let sys_pairwise = ConstraintSystem::from_topology(&star);
        let r_pairwise = infer_topology(&sys_pairwise, &InferenceConfig::default());
        assert!(r_pairwise.violation < 1e-6);

        // With the triple: only the star satisfies everything.
        let mut sys_triple = ConstraintSystem::from_topology(&star);
        sys_triple.add_triples_from_topology(&star, &[(0, 1, 2)]);
        let r_triple = infer_topology(&sys_triple, &InferenceConfig::default());
        assert!(
            r_triple.violation < 1e-5,
            "violation {}",
            r_triple.violation
        );
        let acc = topology_accuracy(&star, &r_triple.topology);
        assert_eq!(
            acc.exact_fraction(),
            1.0,
            "star not recovered: {:?}",
            r_triple.topology
        );
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(InferenceConfig::default().validate().is_ok());
        let bad = [
            InferenceConfig {
                max_iters: 0,
                ..Default::default()
            },
            InferenceConfig {
                epsilon: 0.0,
                ..Default::default()
            },
            InferenceConfig {
                epsilon: f64::NAN,
                ..Default::default()
            },
            InferenceConfig {
                accept_residual: 1.5,
                ..Default::default()
            },
            InferenceConfig {
                degraded_residual: f64::INFINITY,
                ..Default::default()
            },
            InferenceConfig {
                accept_residual: 0.4,
                degraded_residual: 0.1,
                ..Default::default()
            },
            InferenceConfig {
                deadline: Deadline::Steps(0),
                ..Default::default()
            },
            InferenceConfig {
                deadline: Deadline::Wall(std::time::Duration::ZERO),
                ..Default::default()
            },
        ];
        for cfg in bad {
            assert!(
                matches!(
                    cfg.validate(),
                    Err(crate::error::BluError::InvalidConfig(_))
                ),
                "{cfg:?} should be rejected"
            );
        }
    }

    fn deadline_test_system() -> ConstraintSystem {
        let mut rng = DetRng::seed_from_u64(77);
        let truth = InterferenceTopology::random(8, 5, (0.15, 0.6), 0.4, &mut rng);
        ConstraintSystem::from_topology(&truth)
    }

    /// The no-deadline differential contract: adding the (default)
    /// `Deadline::None` field must leave inference bit-identical to a
    /// config that never heard of deadlines, and a roomy step budget
    /// must match exactly as well (the token is only consulted, never
    /// drawn from).
    #[test]
    fn no_deadline_is_bit_identical_to_roomy_budget() {
        let sys = deadline_test_system();
        let unbounded = infer_topology(&sys, &InferenceConfig::default());
        assert!(unbounded.completed);
        assert_eq!(unbounded.overshoot, 0);
        let roomy = infer_topology(
            &sys,
            &InferenceConfig {
                deadline: Deadline::Steps(u64::MAX),
                ..Default::default()
            },
        );
        assert_eq!(roomy.topology, unbounded.topology);
        assert_eq!(roomy.violation.to_bits(), unbounded.violation.to_bits());
        assert_eq!(roomy.verdict, unbounded.verdict);
        assert_eq!(roomy.iterations, unbounded.iterations);
        assert_eq!(roomy.restarts, unbounded.restarts);
        assert!(roomy.completed);
    }

    /// A budget far below convergence still yields a usable anytime
    /// result: finite violation, `completed = false`, zero overshoot
    /// (step budgets are exact), and determinism across runs.
    #[test]
    fn tiny_step_budget_returns_best_so_far() {
        let sys = deadline_test_system();
        let cfg = InferenceConfig {
            deadline: Deadline::Steps(3),
            ..Default::default()
        };
        let a = infer_topology(&sys, &cfg);
        let b = infer_topology(&sys, &cfg);
        assert!(!a.completed, "3 repair iterations cannot converge here");
        assert_eq!(a.overshoot, 0);
        assert!(a.violation.is_finite());
        assert!(!a.topology.p_individual(0).is_nan());
        assert_eq!(a.topology, b.topology, "bounded runs stay deterministic");
        assert_eq!(a.violation.to_bits(), b.violation.to_bits());
        // The anytime result is strictly coarser than (or equal to)
        // the converged one.
        let full = infer_topology(&sys, &InferenceConfig::default());
        assert!(a.violation >= full.violation);
    }
}
