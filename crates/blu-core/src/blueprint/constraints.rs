//! The constraint system of Eqn. 6.
//!
//! One constraint per client (`P(i) = Σ_k z_ik Q(k)`) and one per
//! unordered pair (`P(i,j) = Σ_k z_ik z_jk Q(k)`). The inference
//! algorithm manipulates topologies in the transformed domain; this
//! module evaluates residuals and total violation.

use crate::blueprint::transform::{pairwise_stat, transform_p, transform_q};
use blu_sim::clientset::ClientSet;
use blu_sim::topology::InterferenceTopology;
use blu_traces::stats::{n_pairs, pair_index, EmpiricalAccess};

/// A hidden terminal in the transformed domain: blocking weight
/// `Q = −log(1−q)` plus its client edge set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformedHt {
    /// Blocking weight (≥ 0).
    pub q_t: f64,
    /// Impacted clients.
    pub edges: ClientSet,
}

/// A candidate topology in the transformed domain.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransformedTopology {
    /// Hidden terminals.
    pub hts: Vec<TransformedHt>,
}

impl TransformedTopology {
    /// Convert to a probability-domain topology.
    pub fn to_topology(&self, n_clients: usize) -> InterferenceTopology {
        InterferenceTopology {
            n_clients,
            hts: self
                .hts
                .iter()
                .map(|ht| blu_sim::topology::HiddenTerminal {
                    q: crate::blueprint::transform::inverse_q(ht.q_t),
                    edges: ht.edges,
                })
                .collect(),
        }
    }

    /// Build from a probability-domain topology.
    pub fn from_topology(topo: &InterferenceTopology) -> Self {
        TransformedTopology {
            hts: topo
                .hts
                .iter()
                .map(|ht| TransformedHt {
                    q_t: transform_q(ht.q),
                    edges: ht.edges,
                })
                .collect(),
        }
    }

    /// Drop HTs with no edges or negligible weight.
    pub fn prune(&mut self, min_weight: f64) {
        self.hts
            .retain(|ht| !ht.edges.is_empty() && ht.q_t > min_weight);
    }
}

/// Which constraint is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintRef {
    /// The individual constraint `P(i)`.
    Individual(usize),
    /// The pairwise constraint `P(i,j)`, `i < j`.
    Pair(usize, usize),
    /// A triple constraint (index into
    /// [`ConstraintSystem::triples`]).
    Triple(usize),
}

/// A third-order constraint: the total weight of hidden terminals
/// covering all three clients (paper §3.5: extra joint measurements
/// disambiguate skewed topologies that pairwise statistics cannot
/// pin down).
///
/// In the transformed domain, with `A_i` the set of terminals
/// covering client `i`,
///
/// ```text
/// Q(A_i ∩ A_j ∩ A_k) = P(i) + P(j) + P(k)
///                    − S(i,j) − S(i,k) − S(j,k) + S(i,j,k)
/// ```
///
/// where `S(·) = −log p(·)` of the *joint access* of the set —
/// inclusion–exclusion over union weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripleConstraint {
    /// The three clients, `i < j < k`.
    pub clients: (usize, usize, usize),
    /// Transformed target weight.
    pub target: f64,
}

/// The measured constraint targets.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSystem {
    /// Number of clients.
    pub n: usize,
    /// Transformed individual targets `P(i)`.
    pub individual: Vec<f64>,
    /// Transformed pairwise targets `P(i,j)` (upper triangular, see
    /// [`pair_index`]).
    pub pair: Vec<f64>,
    /// Optional third-order constraints (empty unless triple
    /// measurements were taken).
    pub triples: Vec<TripleConstraint>,
}

impl ConstraintSystem {
    /// Build from exact probabilities of a ground-truth topology
    /// (noiseless inputs — for testing inference in isolation).
    pub fn from_topology(topo: &InterferenceTopology) -> Self {
        let n = topo.n_clients;
        let individual = (0..n).map(|i| transform_p(topo.p_individual(i))).collect();
        let mut pair = vec![0.0; n_pairs(n)];
        for i in 0..n {
            for j in (i + 1)..n {
                pair[pair_index(n, i, j)] = pairwise_stat(
                    topo.p_individual(i),
                    topo.p_individual(j),
                    topo.p_pair(i, j),
                );
            }
        }
        ConstraintSystem {
            n,
            individual,
            pair,
            triples: Vec::new(),
        }
    }

    /// Build from measured access statistics. Unobserved clients or
    /// pairs contribute zero-target constraints (no evidence of
    /// blocking). Measured zeros are floored by add-half smoothing
    /// (`p̂ ≥ 0.5/observations`) so a client that simply never won a
    /// CCA during measurement does not produce an unbounded
    /// constraint.
    pub fn from_measurements(emp: &EmpiricalAccess) -> Self {
        let n = emp.n;
        let smooth = |p: Option<f64>, obs: u64| -> Option<f64> {
            p.map(|v| {
                let floor = 0.5 / obs.max(1) as f64;
                v.max(floor).min(1.0)
            })
        };
        let individual = (0..n)
            .map(|i| transform_p(smooth(emp.p_individual(i), emp.obs_individual[i]).unwrap_or(1.0)))
            .collect();
        let mut pair = vec![0.0; n_pairs(n)];
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = pair_index(n, i, j);
                let p_ij = smooth(emp.p_pair(i, j), emp.obs_pair[idx]);
                let p_i = smooth(emp.p_individual(i), emp.obs_individual[i]);
                let p_j = smooth(emp.p_individual(j), emp.obs_individual[j]);
                if let (Some(pi), Some(pj), Some(pij)) = (p_i, p_j, p_ij) {
                    pair[idx] = pairwise_stat(pi, pj, pij);
                }
            }
        }
        ConstraintSystem {
            n,
            individual,
            pair,
            triples: Vec::new(),
        }
    }

    /// Add third-order constraints computed from a topology's exact
    /// probabilities (for testing inference with triple evidence).
    pub fn add_triples_from_topology(
        &mut self,
        topo: &InterferenceTopology,
        triples: &[(usize, usize, usize)],
    ) {
        for &(i, j, k) in triples {
            let stat = triple_stat(|s: ClientSet| topo.p_all_access(s), self.n, i, j, k);
            self.triples.push(TripleConstraint {
                clients: sort3(i, j, k),
                target: stat,
            });
        }
    }

    /// Add third-order constraints measured from a full access trace
    /// (the paper's "additional joint access distribution … from
    /// existing (new) measurements").
    pub fn add_triples_from_trace(
        &mut self,
        trace: &blu_traces::schema::AccessTrace,
        triples: &[(usize, usize, usize)],
    ) {
        for &(i, j, k) in triples {
            let stat = triple_stat(
                |s: ClientSet| blu_traces::stats::empirical_joint(trace, s, ClientSet::EMPTY),
                self.n,
                i,
                j,
                k,
            );
            self.triples.push(TripleConstraint {
                clients: sort3(i, j, k),
                target: stat,
            });
        }
    }

    /// Residual of one constraint for a candidate topology:
    /// `Σ contributions − target` (positive = over-contribution).
    pub fn residual(&self, topo: &TransformedTopology, c: ConstraintRef) -> f64 {
        match c {
            ConstraintRef::Individual(i) => {
                let contrib: f64 = topo
                    .hts
                    .iter()
                    .filter(|ht| ht.edges.contains(i))
                    .map(|ht| ht.q_t)
                    .sum();
                contrib - self.individual[i]
            }
            ConstraintRef::Pair(i, j) => {
                let contrib: f64 = topo
                    .hts
                    .iter()
                    .filter(|ht| ht.edges.contains(i) && ht.edges.contains(j))
                    .map(|ht| ht.q_t)
                    .sum();
                contrib - self.pair[pair_index(self.n, i, j)]
            }
            ConstraintRef::Triple(t) => {
                let (i, j, k) = self.triples[t].clients;
                let contrib: f64 = topo
                    .hts
                    .iter()
                    .filter(|ht| {
                        ht.edges.contains(i) && ht.edges.contains(j) && ht.edges.contains(k)
                    })
                    .map(|ht| ht.q_t)
                    .sum();
                contrib - self.triples[t].target
            }
        }
    }

    /// Iterate every constraint reference, in the **canonical order**:
    ///
    /// 1. individuals `0 .. n`, ascending;
    /// 2. pairs `(i, j)` with `i < j`, lexicographic (`i` ascending,
    ///    then `j`) — the same order `pair_index` linearizes;
    /// 3. triples in `self.triples` Vec order (insertion order).
    ///
    /// This order is a **contract**, not an implementation detail:
    /// [`total_violation`](Self::total_violation) sums residuals in
    /// it, so float summation order — and therefore the exact energy
    /// bits — depends on it, and the incremental
    /// [`ResidualTracker`](crate::blueprint::ResidualTracker) replays
    /// the same order to stay bit-identical with the from-scratch
    /// recompute. Built from ranges over dense storage, so it is
    /// deterministic across runs and platforms (no hashing anywhere).
    /// The `canonical_constraint_order` test pins it.
    pub fn all_constraints(&self) -> impl Iterator<Item = ConstraintRef> + '_ {
        let n = self.n;
        (0..n)
            .map(ConstraintRef::Individual)
            .chain((0..n).flat_map(move |i| ((i + 1)..n).map(move |j| ConstraintRef::Pair(i, j))))
            .chain((0..self.triples.len()).map(ConstraintRef::Triple))
    }

    /// Total violation `Σ |residual|` over all constraints.
    pub fn total_violation(&self, topo: &TransformedTopology) -> f64 {
        self.all_constraints()
            .map(|c| self.residual(topo, c).abs())
            .sum()
    }

    /// Total target mass `Σ |target|` over all constraints — the
    /// violation of the empty topology, and the natural normalizer
    /// for residual-based confidence scores: `violation /
    /// target_mass` is the fraction of the measured statistics a
    /// candidate leaves unexplained.
    pub fn target_mass(&self) -> f64 {
        let mass: f64 = self.individual.iter().map(|t| t.abs()).sum::<f64>()
            + self.pair.iter().map(|t| t.abs()).sum::<f64>()
            + self.triples.iter().map(|t| t.target.abs()).sum::<f64>();
        mass
    }

    /// The constraint with the largest absolute residual, with that
    /// residual. `None` if there are no constraints.
    pub fn max_violated(&self, topo: &TransformedTopology) -> Option<(ConstraintRef, f64)> {
        self.all_constraints()
            .map(|c| (c, self.residual(topo, c)))
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
    }

    /// Quarantine corrupted targets before inference: a NaN (or other
    /// non-finite, or negative — transformed targets are `−log` of a
    /// probability, hence ≥ 0) individual/pair target is reset to the
    /// no-interference value `0.0`, and a corrupted triple constraint
    /// is dropped outright. Returns the number of constraints
    /// quarantined; a clean system is left bit-for-bit untouched.
    ///
    /// The failure this guards against is quiet, not loud: a single
    /// NaN target never panics the solver, it silently poisons every
    /// residual sum into NaN, which compares `false` against every
    /// acceptance threshold and drives the run into permanent
    /// low-confidence fallback.
    pub fn sanitize(&mut self) -> usize {
        let mut quarantined = 0usize;
        for t in self.individual.iter_mut().chain(self.pair.iter_mut()) {
            if !(t.is_finite() && *t >= 0.0) {
                *t = 0.0;
                quarantined += 1;
            }
        }
        let before = self.triples.len();
        self.triples
            .retain(|t| t.target.is_finite() && t.target >= 0.0);
        quarantined + (before - self.triples.len())
    }
}

/// Sort a client triple ascending.
fn sort3(i: usize, j: usize, k: usize) -> (usize, usize, usize) {
    let mut v = [i, j, k];
    v.sort_unstable();
    assert!(
        v[0] < v[1] && v[1] < v[2],
        "triple clients must be distinct"
    );
    (v[0], v[1], v[2])
}

/// The transformed third-order statistic via inclusion–exclusion of
/// joint-access log-probabilities.
fn triple_stat(p_all: impl Fn(ClientSet) -> f64, _n: usize, i: usize, j: usize, k: usize) -> f64 {
    use crate::blueprint::transform::transform_p;
    let s = |set: ClientSet| transform_p(p_all(set));
    let singles =
        s(ClientSet::singleton(i)) + s(ClientSet::singleton(j)) + s(ClientSet::singleton(k));
    let pairs = s(ClientSet::from_iter([i, j]))
        + s(ClientSet::from_iter([i, k]))
        + s(ClientSet::from_iter([j, k]));
    let triple = s(ClientSet::from_iter([i, j, k]));
    (singles - pairs + triple).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::rng::DetRng;

    fn random_topo(seed: u64) -> InterferenceTopology {
        let mut rng = DetRng::seed_from_u64(seed);
        InterferenceTopology::random(5, 4, (0.1, 0.7), 0.4, &mut rng)
    }

    #[test]
    fn canonical_constraint_order() {
        // Pins the `all_constraints` order contract (see its
        // rustdoc): individuals ascending, pairs lexicographic,
        // triples in insertion order. ResidualTracker and
        // total_violation both depend on this exact sequence for
        // bit-identical float summation.
        let topo = random_topo(1);
        let mut sys = ConstraintSystem::from_topology(&topo);
        sys.add_triples_from_topology(&topo, &[(2, 3, 4), (0, 1, 2)]);
        let got: Vec<ConstraintRef> = sys.all_constraints().collect();
        let mut want: Vec<ConstraintRef> = (0..5).map(ConstraintRef::Individual).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                want.push(ConstraintRef::Pair(i, j));
            }
        }
        want.push(ConstraintRef::Triple(0));
        want.push(ConstraintRef::Triple(1));
        assert_eq!(got, want);
        // Pair order must agree with pair_index's linearization.
        for (k, c) in got.iter().skip(5).take(10).enumerate() {
            if let ConstraintRef::Pair(i, j) = *c {
                assert_eq!(pair_index(5, i, j), k);
            } else {
                panic!("expected a pair at position {k}");
            }
        }
        // And the iteration must be identical across calls.
        let again: Vec<ConstraintRef> = sys.all_constraints().collect();
        assert_eq!(got, again);
    }

    #[test]
    fn ground_truth_has_zero_violation() {
        // DESIGN.md invariant 3: a ground-truth topology satisfies
        // its own constraint system exactly.
        for seed in 0..20 {
            let topo = random_topo(seed);
            let sys = ConstraintSystem::from_topology(&topo);
            let t = TransformedTopology::from_topology(&topo);
            let v = sys.total_violation(&t);
            assert!(v < 1e-7, "seed {seed}: violation {v}");
        }
    }

    #[test]
    fn empty_topology_violation_is_sum_of_targets() {
        let topo = random_topo(1);
        let sys = ConstraintSystem::from_topology(&topo);
        let empty = TransformedTopology::default();
        let want: f64 = sys.individual.iter().sum::<f64>() + sys.pair.iter().sum::<f64>();
        assert!((sys.total_violation(&empty) - want).abs() < 1e-12);
    }

    #[test]
    fn max_violated_finds_the_worst() {
        let topo = random_topo(2);
        let sys = ConstraintSystem::from_topology(&topo);
        let empty = TransformedTopology::default();
        let (c, r) = sys.max_violated(&empty).unwrap();
        // All residuals are −target; worst is the largest target.
        let max_ind = sys.individual.iter().cloned().fold(f64::MIN, f64::max);
        let max_pair = sys.pair.iter().cloned().fold(f64::MIN, f64::max);
        assert!((r.abs() - max_ind.max(max_pair)).abs() < 1e-12, "{c:?} {r}");
    }

    #[test]
    fn constraint_count() {
        let topo = random_topo(3);
        let sys = ConstraintSystem::from_topology(&topo);
        assert_eq!(sys.all_constraints().count(), 5 + 10);
    }

    #[test]
    fn from_measurements_approximates_from_topology() {
        let topo = random_topo(4);
        let mut rng = DetRng::seed_from_u64(99);
        let mut emp = EmpiricalAccess::new(5);
        let all = ClientSet::all(5);
        for _ in 0..200_000 {
            emp.record(all, topo.sample_access(&mut rng));
        }
        let measured = ConstraintSystem::from_measurements(&emp);
        let exact = ConstraintSystem::from_topology(&topo);
        for i in 0..5 {
            assert!(
                (measured.individual[i] - exact.individual[i]).abs() < 0.05,
                "P({i})"
            );
        }
        for (m, e) in measured.pair.iter().zip(&exact.pair) {
            assert!((m - e).abs() < 0.05, "{m} vs {e}");
        }
    }

    #[test]
    fn prune_drops_weightless_hts() {
        let mut t = TransformedTopology {
            hts: vec![
                TransformedHt {
                    q_t: 0.5,
                    edges: ClientSet::singleton(0),
                },
                TransformedHt {
                    q_t: 1e-9,
                    edges: ClientSet::singleton(1),
                },
                TransformedHt {
                    q_t: 0.7,
                    edges: ClientSet::EMPTY,
                },
            ],
        };
        t.prune(1e-6);
        assert_eq!(t.hts.len(), 1);
    }

    #[test]
    fn transformed_roundtrip() {
        let topo = random_topo(5);
        let t = TransformedTopology::from_topology(&topo);
        let back = t.to_topology(5);
        for (a, b) in topo.hts.iter().zip(&back.hts) {
            assert!((a.q - b.q).abs() < 1e-9);
            assert_eq!(a.edges, b.edges);
        }
    }
}

#[cfg(test)]
mod triple_tests {
    use super::*;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::HiddenTerminal;

    fn topo(n: usize, spec: &[(f64, &[usize])]) -> InterferenceTopology {
        InterferenceTopology {
            n_clients: n,
            hts: spec
                .iter()
                .map(|&(q, edges)| HiddenTerminal {
                    q,
                    edges: edges.iter().copied().collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn triple_stat_is_exact_on_random_topologies() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..20 {
            let t = InterferenceTopology::random(6, 5, (0.1, 0.7), 0.45, &mut rng);
            let mut sys = ConstraintSystem::from_topology(&t);
            sys.add_triples_from_topology(&t, &[(0, 1, 2), (1, 3, 5), (2, 3, 4)]);
            let tt = TransformedTopology::from_topology(&t);
            assert!(
                sys.total_violation(&tt) < 1e-6,
                "violation {} with triples",
                sys.total_violation(&tt)
            );
        }
    }

    #[test]
    fn triangle_and_star_agree_pairwise_but_differ_on_triples() {
        // The classic ambiguity: three pairwise terminals (triangle)
        // vs one shared terminal plus three singles (star) induce
        // IDENTICAL pairwise statistics but different triple weight.
        let q = 0.4;
        let triangle = topo(3, &[(q, &[0, 1]), (q, &[0, 2]), (q, &[1, 2])]);
        let star = topo(3, &[(q, &[0, 1, 2]), (q, &[0]), (q, &[1]), (q, &[2])]);
        let sys_tri = ConstraintSystem::from_topology(&triangle);
        let sys_star = ConstraintSystem::from_topology(&star);
        for i in 0..3 {
            assert!((sys_tri.individual[i] - sys_star.individual[i]).abs() < 1e-12);
        }
        for (a, b) in sys_tri.pair.iter().zip(&sys_star.pair) {
            assert!((a - b).abs() < 1e-12, "pairwise stats must coincide");
        }
        // Both topologies satisfy the OTHER's pairwise system…
        let t_tri = TransformedTopology::from_topology(&triangle);
        let t_star = TransformedTopology::from_topology(&star);
        assert!(sys_star.total_violation(&t_tri) < 1e-9);
        assert!(sys_tri.total_violation(&t_star) < 1e-9);
        // …but the triple constraint separates them.
        let mut sys_star3 = sys_star.clone();
        sys_star3.add_triples_from_topology(&star, &[(0, 1, 2)]);
        assert!(
            sys_star3.total_violation(&t_star) < 1e-9,
            "truth still fits"
        );
        assert!(
            sys_star3.total_violation(&t_tri) > 0.1,
            "triangle must now violate: {}",
            sys_star3.total_violation(&t_tri)
        );
    }

    #[test]
    fn measured_triples_approximate_exact() {
        let mut rng = DetRng::seed_from_u64(2);
        let t = InterferenceTopology::random(5, 4, (0.2, 0.6), 0.5, &mut rng);
        let accessible: Vec<ClientSet> = (0..150_000).map(|_| t.sample_access(&mut rng)).collect();
        let trace = blu_traces::schema::AccessTrace {
            n_ues: 5,
            accessible,
        };
        let mut sys_exact = ConstraintSystem::from_topology(&t);
        sys_exact.add_triples_from_topology(&t, &[(0, 1, 2), (2, 3, 4)]);
        let mut sys_meas = ConstraintSystem::from_topology(&t);
        sys_meas.add_triples_from_trace(&trace, &[(0, 1, 2), (2, 3, 4)]);
        for (a, b) in sys_exact.triples.iter().zip(&sys_meas.triples) {
            assert_eq!(a.clients, b.clients);
            assert!(
                (a.target - b.target).abs() < 0.05,
                "exact {} vs measured {}",
                a.target,
                b.target
            );
        }
    }
}
