//! Multi-point initialization for topology inference.
//!
//! The gradient repair is not guaranteed a global optimum (the paper
//! §3.4.2, "Topology Initialization"), so it is restarted from a
//! portfolio of starting topologies:
//!
//! 1. the **empty** topology;
//! 2. **singles** — one hidden terminal per client, satisfying the
//!    individual constraints exactly (pairs start violated);
//! 3. **pairs** — one hidden terminal per positive pairwise
//!    constraint, satisfying the pair constraints exactly, plus
//!    per-client singles absorbing the residual individual exposure;
//! 4. **cliques** — a constructive guess that groups clients whose
//!    pairwise statistics look like one shared terminal (greedy seed
//!    expansion over the pair matrix);
//! 5. **random** topologies with varied hidden-terminal counts.

use crate::blueprint::constraints::{ConstraintSystem, TransformedHt, TransformedTopology};
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_traces::stats::pair_index;

/// Threshold below which a transformed statistic is treated as zero
/// (no shared terminal evidence).
const STAT_EPS: f64 = 1e-6;

/// Starting topology 2: one HT per client with nonzero exposure.
fn singles(sys: &ConstraintSystem) -> TransformedTopology {
    TransformedTopology {
        hts: (0..sys.n)
            .filter(|&i| sys.individual[i] > STAT_EPS)
            .map(|i| TransformedHt {
                q_t: sys.individual[i],
                edges: ClientSet::singleton(i),
            })
            .collect(),
    }
}

/// Starting topology 3: one HT per positive pair statistic, plus
/// singles for the per-client exposure not explained by the pairs.
fn pairs(sys: &ConstraintSystem) -> TransformedTopology {
    let mut hts = Vec::new();
    let mut explained = vec![0.0; sys.n];
    for i in 0..sys.n {
        for j in (i + 1)..sys.n {
            let stat = sys.pair[pair_index(sys.n, i, j)];
            if stat > STAT_EPS {
                hts.push(TransformedHt {
                    q_t: stat,
                    edges: ClientSet::from_iter([i, j]),
                });
                explained[i] += stat;
                explained[j] += stat;
            }
        }
    }
    for (i, &ex) in explained.iter().enumerate() {
        let residual = sys.individual[i] - ex;
        if residual > STAT_EPS {
            hts.push(TransformedHt {
                q_t: residual,
                edges: ClientSet::singleton(i),
            });
        }
    }
    TransformedTopology { hts }
}

/// Starting topology 4: greedy clique construction. Repeatedly take
/// the largest unexplained pair statistic `(i, j)` as a seed, grow a
/// clique with every client `l` whose residual statistics to all
/// current members are compatible (within a relative tolerance), emit
/// the clique as one hidden terminal at the **bottleneck** weight
/// (the minimum residual among its member pairs — safe when several
/// terminals cover the seed pair), subtract, and repeat. Finish with
/// singles for leftover individual exposure.
///
/// Parameterized by a relative tolerance and an optional shuffling
/// RNG so the restart portfolio can carry several diverse clique
/// decompositions (the growth order matters when terminals overlap).
fn cliques_with(
    sys: &ConstraintSystem,
    rel_tol: f64,
    shuffle: Option<&mut DetRng>,
) -> TransformedTopology {
    let n = sys.n;
    let mut residual_pair = sys.pair.clone();
    let mut residual_ind = sys.individual.clone();
    let mut hts = Vec::new();
    let mut order: Vec<usize> = (0..n).collect();
    if let Some(rng) = shuffle {
        rng.shuffle(&mut order);
    }
    for _round in 0..6 * n {
        // Find the largest residual pair statistic.
        let mut best = (0usize, 0usize, 0.0f64);
        for i in 0..n {
            for j in (i + 1)..n {
                let s = residual_pair[pair_index(n, i, j)];
                if s > best.2 {
                    best = (i, j, s);
                }
            }
        }
        let (i, j, w) = best;
        if w <= STAT_EPS {
            break;
        }
        // Grow the clique: l joins if its residual pair stats to all
        // members are ≥ (1 − rel_tol)·w.
        let mut members = ClientSet::from_iter([i, j]);
        let floor = (1.0 - rel_tol) * w;
        for &l in &order {
            if members.contains(l) {
                continue;
            }
            let joins = members.iter().all(|m| {
                let (a, b) = if l < m { (l, m) } else { (m, l) };
                residual_pair[pair_index(n, a, b)] >= floor
            });
            if joins {
                members.insert(l);
            }
        }
        // Bottleneck weight over the clique's pairs: never subtract
        // more than any member pair actually has.
        let mv: Vec<usize> = members.iter().collect();
        let mut weight = w;
        for (a, &x) in mv.iter().enumerate() {
            for &y in &mv[a + 1..] {
                let (p, q) = if x < y { (x, y) } else { (y, x) };
                weight = weight.min(residual_pair[pair_index(n, p, q)]);
            }
        }
        if weight <= STAT_EPS {
            break;
        }
        hts.push(TransformedHt {
            q_t: weight,
            edges: members,
        });
        for (a, &x) in mv.iter().enumerate() {
            residual_ind[x] = (residual_ind[x] - weight).max(0.0);
            for &y in &mv[a + 1..] {
                let idx = pair_index(n, x, y);
                residual_pair[idx] = (residual_pair[idx] - weight).max(0.0);
            }
        }
    }
    for (i, &residual) in residual_ind.iter().enumerate() {
        if residual > STAT_EPS {
            hts.push(TransformedHt {
                q_t: residual,
                edges: ClientSet::singleton(i),
            });
        }
    }
    TransformedTopology { hts }
}

/// The default clique construction (moderate tolerance, no shuffle).
fn cliques(sys: &ConstraintSystem) -> TransformedTopology {
    cliques_with(sys, 0.25, None)
}

/// Random start: `h` hidden terminals with random weights and edges.
fn random_start(sys: &ConstraintSystem, h: usize, rng: &mut DetRng) -> TransformedTopology {
    let max_stat = sys
        .individual
        .iter()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(0.1);
    let hts = (0..h)
        .map(|_| {
            let mut edges = ClientSet::EMPTY;
            while edges.is_empty() {
                for i in 0..sys.n {
                    if rng.chance(0.3) {
                        edges.insert(i);
                    }
                }
            }
            TransformedHt {
                q_t: rng.range_f64(0.05, max_stat),
                edges,
            }
        })
        .collect();
    TransformedTopology { hts }
}

/// The full portfolio of starting topologies: clique decompositions
/// at several tolerances, shuffled clique variants, the pair/single
/// exact-satisfiers, the empty topology, and random topologies.
pub fn starting_topologies(
    sys: &ConstraintSystem,
    random_restarts: usize,
) -> Vec<TransformedTopology> {
    let mut rng = DetRng::seed_from_u64(0xB1E);
    let mut starts = vec![cliques(sys)];
    for rel_tol in [0.05, 0.15, 0.4, 0.6] {
        starts.push(cliques_with(sys, rel_tol, None));
    }
    for _ in 0..random_restarts.div_ceil(2) {
        let tol = rng.range_f64(0.1, 0.5);
        starts.push(cliques_with(sys, tol, Some(&mut rng)));
    }
    starts.push(pairs(sys));
    starts.push(singles(sys));
    starts.push(TransformedTopology::default());
    for r in 0..random_restarts {
        let h = 1 + (r % (2 * sys.n.max(1)));
        starts.push(random_start(sys, h, &mut rng));
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::topology::{HiddenTerminal, InterferenceTopology};

    fn example_system() -> (InterferenceTopology, ConstraintSystem) {
        let t = InterferenceTopology {
            n_clients: 4,
            hts: vec![
                HiddenTerminal {
                    q: 0.4,
                    edges: ClientSet::from_iter([0, 1, 2]),
                },
                HiddenTerminal {
                    q: 0.25,
                    edges: ClientSet::from_iter([3]),
                },
            ],
        };
        let sys = ConstraintSystem::from_topology(&t);
        (t, sys)
    }

    #[test]
    fn singles_satisfy_individual_constraints() {
        let (_, sys) = example_system();
        let s = singles(&sys);
        for i in 0..sys.n {
            let r = sys.residual(
                &s,
                crate::blueprint::constraints::ConstraintRef::Individual(i),
            );
            assert!(r.abs() < 1e-12, "P({i}) residual {r}");
        }
    }

    #[test]
    fn pairs_satisfy_pair_constraints() {
        let (_, sys) = example_system();
        let p = pairs(&sys);
        for i in 0..sys.n {
            for j in (i + 1)..sys.n {
                let r = sys.residual(&p, crate::blueprint::constraints::ConstraintRef::Pair(i, j));
                assert!(r.abs() < 1e-9, "P({i},{j}) residual {r}");
            }
        }
    }

    #[test]
    fn cliques_recover_simple_structure_outright() {
        // One HT covering {0,1,2}: the clique init alone should emit
        // exactly that terminal (plus the {3} single) with zero
        // violation.
        let (_, sys) = example_system();
        let c = cliques(&sys);
        let v = sys.total_violation(&c);
        assert!(v < 1e-9, "clique-init violation {v}: {c:?}");
        assert_eq!(c.hts.len(), 2);
        let edge_sets: Vec<ClientSet> = c.hts.iter().map(|h| h.edges).collect();
        assert!(edge_sets.contains(&ClientSet::from_iter([0, 1, 2])));
        assert!(edge_sets.contains(&ClientSet::singleton(3)));
    }

    #[test]
    fn portfolio_contains_all_families() {
        let (_, sys) = example_system();
        let starts = starting_topologies(&sys, 5);
        // 5 fixed-tolerance cliques + 3 shuffled cliques + pairs +
        // singles + empty + 5 random.
        assert!(starts.len() >= 13, "{}", starts.len());
        assert!(starts.iter().any(|s| s.hts.is_empty()));
    }

    #[test]
    fn random_starts_are_valid() {
        let (_, sys) = example_system();
        let mut rng = DetRng::seed_from_u64(1);
        for h in 1..10 {
            let s = random_start(&sys, h, &mut rng);
            assert_eq!(s.hts.len(), h);
            assert!(s.hts.iter().all(|ht| !ht.edges.is_empty() && ht.q_t > 0.0));
        }
    }
}
