//! Parallel multi-cell batch inference.
//!
//! At deployment scale one eNB process blue-prints many cells — and
//! PR-1's degraded-mode orchestration re-triggers inference on every
//! drift event, so re-measurement storms arrive in bursts of
//! independent per-cell problems. This module fans those problems out
//! across the `vendor/rayon` worker pool.
//!
//! **Determinism contract:** each cell's inference is a pure function
//! of its [`ConstraintSystem`] (and the backend's seed); the rayon
//! shim materializes the input, splits it into contiguous chunks, and
//! joins worker threads in spawn order, so
//! [`infer_batch`] returns results **in input order, byte-identical**
//! to the sequential reference [`infer_batch_sequential`] — the
//! fan-out reorders wall-clock execution, never results. The
//! differential tests below pin this.

use crate::blueprint::constraints::ConstraintSystem;
use crate::blueprint::infer::{InferenceConfig, InferenceResult};
use crate::blueprint::InferenceBackend;

/// Infer every cell's topology in parallel with the default
/// (gradient) backend; results in input order.
pub fn infer_batch(systems: &[ConstraintSystem], config: &InferenceConfig) -> Vec<InferenceResult> {
    infer_batch_with(systems, config, &InferenceBackend::Gradient)
}

/// Infer every cell's topology in parallel with an explicit backend;
/// results in input order.
pub fn infer_batch_with(
    systems: &[ConstraintSystem],
    config: &InferenceConfig,
    backend: &InferenceBackend,
) -> Vec<InferenceResult> {
    use rayon::prelude::*;
    systems
        .par_iter()
        .map(|sys| backend.infer(sys, config))
        .collect()
}

/// Sequential reference for [`infer_batch_with`] — kept alive for
/// differential testing and single-thread profiling.
pub fn infer_batch_sequential(
    systems: &[ConstraintSystem],
    config: &InferenceConfig,
    backend: &InferenceBackend,
) -> Vec<InferenceResult> {
    systems
        .iter()
        .map(|sys| backend.infer(sys, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::mcmc::McmcConfig;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::InterferenceTopology;

    fn systems(n_cells: usize) -> Vec<ConstraintSystem> {
        (0..n_cells)
            .map(|c| {
                let mut rng = DetRng::seed_from_u64(500 + c as u64);
                let t = InterferenceTopology::random(5, 3, (0.15, 0.6), 0.4, &mut rng);
                ConstraintSystem::from_topology(&t)
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_gradient() {
        let sys = systems(6);
        let cfg = InferenceConfig::default();
        let par = infer_batch(&sys, &cfg);
        let seq = infer_batch_sequential(&sys, &cfg, &InferenceBackend::Gradient);
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.topology, b.topology, "topologies must be bit-identical");
            assert_eq!(a.violation.to_bits(), b.violation.to_bits());
            assert_eq!(a.verdict, b.verdict);
        }
    }

    #[test]
    fn batch_matches_sequential_mcmc() {
        let sys = systems(4);
        let cfg = InferenceConfig::default();
        let backend = InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: 2_000,
                ..Default::default()
            },
            seed: 9,
        };
        let par = infer_batch_with(&sys, &cfg, &backend);
        let seq = infer_batch_sequential(&sys, &cfg, &backend);
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.topology, b.topology);
            assert_eq!(a.violation.to_bits(), b.violation.to_bits());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = infer_batch(&[], &InferenceConfig::default());
        assert!(out.is_empty());
    }
}
