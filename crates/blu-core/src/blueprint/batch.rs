//! Sharded multi-cell batch inference with per-cell panic isolation
//! and per-shard scratch reuse.
//!
//! At deployment scale one eNB process blue-prints many cells — and
//! PR-1's degraded-mode orchestration re-triggers inference on every
//! drift event, so re-measurement storms arrive in bursts of
//! independent per-cell problems. This module fans those problems out
//! across the engine's [`FleetEngine`] shards. Each shard owns one
//! [`InferScratch`] for its whole chunk of cells, so the gradient
//! path's flat buffers (residual tracker, refinement arrays) are
//! allocated once per shard instead of once per cell — which is also
//! why the batch front end beats the sequential reference even on a
//! single hardware thread.
//!
//! **Isolation contract:** each cell's inference runs under
//! `catch_unwind` *inside* the shard closure (the fleet engine joins
//! shards with `expect`, so a panic that escaped the closure would
//! abort the whole batch); a panicking cell comes back as
//! [`BluError::Panicked`] while every other cell's result is
//! untouched — a panic mid-inference leaves the shard's scratch
//! empty, never corrupt, so subsequent cells on the shard are
//! unaffected. A config rejected by [`InferenceConfig::validate`] is
//! reported uniformly for all cells without spawning any work.
//!
//! **Determinism contract:** each cell's inference is a pure function
//! of its [`ConstraintSystem`] (and the backend's seed); the fleet
//! engine materializes the input, splits it into contiguous chunks,
//! and joins shard threads in spawn order, so
//! [`infer_batch`] returns results **in input order, byte-identical**
//! to the sequential reference [`infer_batch_sequential`] — the
//! fan-out reorders wall-clock execution, and the scratch recycles
//! allocations, but neither ever changes results. The differential
//! tests below pin this.

use crate::blueprint::constraints::ConstraintSystem;
use crate::blueprint::fleetcache::{FleetBlueprintCache, TopologySignature};
use crate::blueprint::infer::{
    infer_topology_with, InferScratch, InferenceConfig, InferenceResult,
};
use crate::blueprint::InferenceBackend;
use crate::engine::FleetEngine;
use crate::error::BluError;
use crate::runtime::panic_message;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One cell's inference, with any panic contained at this boundary.
pub(crate) fn guarded_infer(
    sys: &ConstraintSystem,
    config: &InferenceConfig,
    backend: &InferenceBackend,
) -> Result<InferenceResult, BluError> {
    catch_unwind(AssertUnwindSafe(|| backend.infer(sys, config)))
        .map_err(|payload| BluError::Panicked(panic_message(payload.as_ref())))
}

/// [`guarded_infer`] with shard-local scratch: the gradient backend
/// runs through [`infer_topology_with`] so its buffers are recycled
/// across the shard's cells; the MCMC backend keeps its own state and
/// takes the plain path.
fn guarded_infer_scratch(
    sys: &ConstraintSystem,
    config: &InferenceConfig,
    backend: &InferenceBackend,
    scratch: &mut InferScratch,
) -> Result<InferenceResult, BluError> {
    match backend {
        InferenceBackend::Gradient => catch_unwind(AssertUnwindSafe(|| {
            infer_topology_with(sys, config, scratch)
        }))
        .map_err(|payload| BluError::Panicked(panic_message(payload.as_ref()))),
        other => guarded_infer(sys, config, other),
    }
}

/// Infer every cell's topology in parallel with the default
/// (gradient) backend; results in input order, one `Result` per cell.
pub fn infer_batch(
    systems: &[ConstraintSystem],
    config: &InferenceConfig,
) -> Vec<Result<InferenceResult, BluError>> {
    infer_batch_with(systems, config, &InferenceBackend::Gradient)
}

/// Infer every cell's topology across the fleet shards with an
/// explicit backend; results in input order, one `Result` per cell. A
/// per-cell panic is contained and surfaces as that cell's
/// [`BluError::Panicked`].
pub fn infer_batch_with(
    systems: &[ConstraintSystem],
    config: &InferenceConfig,
    backend: &InferenceBackend,
) -> Vec<Result<InferenceResult, BluError>> {
    if let Err(e) = config.validate() {
        return systems.iter().map(|_| Err(e.clone())).collect();
    }
    let items: Vec<&ConstraintSystem> = systems.iter().collect();
    FleetEngine::run(items, InferScratch::default, |scratch, sys| {
        guarded_infer_scratch(sys, config, backend, scratch)
    })
}

/// [`infer_batch_with`] consulting a shared [`FleetBlueprintCache`]
/// before solving: each shard computes the cell's
/// [`TopologySignature`] and asks the cache, so repeated topology
/// classes across the batch are solved once and shared. A cell whose
/// signature is already in flight on another shard parks on the entry
/// (a *delayed hit*) instead of duplicating the solve. Results stay
/// in input order, and every served hit is byte-identical to what the
/// cell's own fresh solve would have produced (see
/// [`fleetcache`](crate::blueprint::fleetcache) for the contract).
pub fn infer_batch_cached(
    systems: &[ConstraintSystem],
    config: &InferenceConfig,
    backend: &InferenceBackend,
    cache: &FleetBlueprintCache,
) -> Vec<Result<InferenceResult, BluError>> {
    if let Err(e) = config.validate() {
        return systems.iter().map(|_| Err(e.clone())).collect();
    }
    let items: Vec<&ConstraintSystem> = systems.iter().collect();
    FleetEngine::run(items, InferScratch::default, |scratch, sys| {
        let sig = TopologySignature::new(sys, config, backend);
        cache
            .get_or_solve(&sig, || {
                guarded_infer_scratch(sys, config, backend, scratch)
            })
            .map(|(result, _)| result)
    })
}

/// Sequential reference for [`infer_batch_with`] — kept alive for
/// differential testing and single-thread profiling.
pub fn infer_batch_sequential(
    systems: &[ConstraintSystem],
    config: &InferenceConfig,
    backend: &InferenceBackend,
) -> Vec<Result<InferenceResult, BluError>> {
    if let Err(e) = config.validate() {
        return systems.iter().map(|_| Err(e.clone())).collect();
    }
    systems
        .iter()
        .map(|sys| guarded_infer(sys, config, backend))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::mcmc::McmcConfig;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::InterferenceTopology;

    fn systems(n_cells: usize) -> Vec<ConstraintSystem> {
        (0..n_cells)
            .map(|c| {
                let mut rng = DetRng::seed_from_u64(500 + c as u64);
                let t = InterferenceTopology::random(5, 3, (0.15, 0.6), 0.4, &mut rng);
                ConstraintSystem::from_topology(&t)
            })
            .collect()
    }

    /// A constraint system that makes the gradient path panic: `n`
    /// promises 5 clients but the target vectors are empty, so the
    /// first residual lookup indexes out of bounds.
    fn malformed() -> ConstraintSystem {
        ConstraintSystem {
            n: 5,
            individual: Vec::new(),
            pair: Vec::new(),
            triples: Vec::new(),
        }
    }

    #[test]
    fn batch_matches_sequential_gradient() {
        let sys = systems(6);
        let cfg = InferenceConfig::default();
        let par = infer_batch(&sys, &cfg);
        let seq = infer_batch_sequential(&sys, &cfg, &InferenceBackend::Gradient);
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.topology, b.topology, "topologies must be bit-identical");
            assert_eq!(a.violation.to_bits(), b.violation.to_bits());
            assert_eq!(a.verdict, b.verdict);
        }
    }

    #[test]
    fn batch_matches_sequential_mcmc() {
        let sys = systems(4);
        let cfg = InferenceConfig::default();
        let backend = InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: 2_000,
                ..Default::default()
            },
            seed: 9,
        };
        let par = infer_batch_with(&sys, &cfg, &backend);
        let seq = infer_batch_sequential(&sys, &cfg, &backend);
        for (a, b) in par.iter().zip(&seq) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.topology, b.topology);
            assert_eq!(a.violation.to_bits(), b.violation.to_bits());
        }
    }

    /// One scratch carried across heterogeneous cells (including a
    /// different client count, which forces a buffer rebind to a new
    /// shape) must reproduce the scratch-free path bit for bit.
    #[test]
    fn scratch_reuse_is_bit_identical_across_heterogeneous_cells() {
        let mut sys = systems(4);
        let mut rng = DetRng::seed_from_u64(900);
        let big = InterferenceTopology::random(9, 5, (0.15, 0.6), 0.4, &mut rng);
        sys.push(ConstraintSystem::from_topology(&big));
        let cfg = InferenceConfig::default();
        let mut scratch = InferScratch::default();
        for s in &sys {
            let with = infer_topology_with(s, &cfg, &mut scratch);
            let plain = crate::blueprint::infer::infer_topology(s, &cfg);
            assert_eq!(with.topology, plain.topology);
            assert_eq!(with.violation.to_bits(), plain.violation.to_bits());
            assert_eq!(with.verdict, plain.verdict);
            assert_eq!(with.iterations, plain.iterations);
        }
    }

    /// The cached front end must be byte-identical to the cache-free
    /// batch — including on a workload with repeated topology classes,
    /// where all repeats are served from one solve.
    #[test]
    fn cached_batch_matches_uncached_and_saves_work() {
        let distinct = systems(4);
        // 12 cells, 4 distinct classes, each class repeated 3×.
        let repeated: Vec<ConstraintSystem> = (0..12).map(|i| distinct[i % 4].clone()).collect();
        let cfg = InferenceConfig::default();
        let backend = InferenceBackend::Gradient;
        let cache = FleetBlueprintCache::new(64);
        let cached = infer_batch_cached(&repeated, &cfg, &backend, &cache);
        let plain = infer_batch_with(&repeated, &cfg, &backend);
        for (a, b) in cached.iter().zip(&plain) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.topology, b.topology, "cached result diverged");
            assert_eq!(a.violation.to_bits(), b.violation.to_bits());
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.iterations, b.iterations);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 4, "one solve per distinct class");
        assert_eq!(s.hits + s.delayed_hits, 8, "every repeat served from cache");
        assert!(s.work_saved() >= 0.5);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = infer_batch(&[], &InferenceConfig::default());
        assert!(out.is_empty());
    }

    /// The acceptance criterion of the resilience PR: a panicking cell
    /// must not cross the batch boundary, and its neighbours' results
    /// must be exactly what they would have been without it.
    #[test]
    fn panicking_cell_is_isolated() {
        let healthy = systems(4);
        let mut mixed = healthy.clone();
        mixed.insert(2, malformed());
        let cfg = InferenceConfig::default();
        let clean = infer_batch(&healthy, &cfg);
        let out = infer_batch(&mixed, &cfg);
        assert_eq!(out.len(), 5);
        match &out[2] {
            Err(BluError::Panicked(msg)) => {
                assert!(!msg.is_empty(), "panic payload must be captured");
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
        for (i, j) in [(0usize, 0usize), (1, 1), (3, 2), (4, 3)] {
            let (a, b) = (out[i].as_ref().unwrap(), clean[j].as_ref().unwrap());
            assert_eq!(a.topology, b.topology, "healthy cell {i} was perturbed");
            assert_eq!(a.violation.to_bits(), b.violation.to_bits());
        }
    }

    #[test]
    fn invalid_config_is_reported_for_every_cell() {
        let sys = systems(3);
        let cfg = InferenceConfig {
            max_iters: 0,
            ..Default::default()
        };
        let out = infer_batch(&sys, &cfg);
        assert_eq!(out.len(), 3);
        for r in &out {
            assert!(matches!(r, Err(BluError::InvalidConfig(_))), "{r:?}");
        }
    }
}
