//! Fleet-level blueprint cache with delayed-hit coalescing.
//!
//! At fleet scale many cells see near-identical interference
//! topologies — stochastic-geometry models of unlicensed coexistence
//! predict exactly this clustering of geometry classes and
//! hidden-terminal counts — yet each cell pays the full ~1.5 ms
//! inference solve even when a neighbouring cell just solved the same
//! problem. This module amortizes that work across the fleet:
//!
//! * [`TopologySignature`] canonicalizes a [`ConstraintSystem`] into a
//!   labeling-independent byte string (WL-style invariant refinement
//!   over UE labels, deterministic tie-break) and hashes it together
//!   with the [`InferenceConfig`] and backend identity/seed into a
//!   stable `u128` key. The permutation that produced the canonical
//!   labeling is kept so a cached result can be mapped back into the
//!   requesting cell's own labels.
//! * [`FleetBlueprintCache`] is a bounded, `Send + Sync` cache over
//!   the shared [`LruCore`](crate::runtime::lru::LruCore) whose
//!   entries move `Vacant → InFlight → Ready`: the first cell to miss
//!   on a signature becomes the *owner* and solves; cells that miss
//!   while the solve is in flight **park on a condvar** and are woken
//!   with the shared result (a *delayed hit*) instead of duplicating
//!   the solve — single-flight per signature across the whole fleet.
//!
//! ## Determinism contract
//!
//! A hit whose requester has the same canonical permutation as the
//! entry's first-seen representative (the overwhelmingly common case:
//! re-measurement storms, repeated topology classes, stall repeats)
//! returns a **clone of the representative's solve**, which is
//! byte-identical to what the requester's own fresh solve would have
//! produced, because the two systems are byte-identical under the
//! shared canonical form and the solvers are deterministic. This is
//! pinned by differential tests here and in
//! `tests/fleetcache_proptest.rs`. Before serving any hit the
//! requester's canonical bytes are compared **byte-exactly** against
//! the entry's; a mismatch (hash collision, or WL-indistinguishable
//! but non-identical systems) falls back to an uncached fresh solve,
//! counted as a [`FleetCacheEvent::Bypass`] — the cache can therefore
//! never serve a wrong blueprint. With the cache disabled (`None`
//! handles everywhere) no code path changes, pinned by the existing
//! engine goldens.

use crate::blueprint::constraints::ConstraintSystem;
use crate::blueprint::infer::{InferenceConfig, InferenceResult};
use crate::blueprint::InferenceBackend;
use crate::runtime::deadline::Deadline;
use crate::runtime::lru::LruCore;
use blu_sim::clientset::ClientSet;
use blu_traces::stats::pair_index;
use serde::Serialize;
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Default number of blueprints kept resident per fleet cache: one
/// slot per plausible geometry class in a large fleet.
pub const DEFAULT_FLEET_CACHE_CAPACITY: usize = 256;

// ---------------------------------------------------------------------------
// Canonical topology signature
// ---------------------------------------------------------------------------

/// 128-bit FNV-1a over `bytes` — no external hash dependency, stable
/// across runs, platforms and process restarts.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Assign dense class ids to UEs by their invariant byte strings.
/// Equal invariants share an id; ids are ordered by the invariant's
/// lexicographic rank, so they are independent of UE labeling.
fn classes_of(inv: &[Vec<u8>]) -> (Vec<usize>, usize) {
    let mut sorted: Vec<&Vec<u8>> = inv.iter().collect();
    sorted.sort();
    sorted.dedup();
    let ids = inv
        .iter()
        .map(|v| sorted.binary_search(&v).expect("own invariant present"))
        .collect();
    let n_classes = sorted.len();
    (ids, n_classes)
}

/// Pair target bits for UEs `i`, `j` in either order.
fn pair_bits(sys: &ConstraintSystem, i: usize, j: usize) -> u64 {
    let (a, b) = if i < j { (i, j) } else { (j, i) };
    sys.pair[pair_index(sys.n, a, b)].to_bits()
}

/// Compute the canonical UE ordering of `sys` by Weisfeiler–Lehman
/// style invariant refinement. Returns `to_canon`: `to_canon[i]` is
/// the canonical slot of original UE `i`.
///
/// Round 0 distinguishes UEs by their own target, the multiset of
/// incident pair targets, and the multiset of incident triple
/// targets; each subsequent round folds in the neighbour classes of
/// the previous round, until the partition stops refining (at most
/// `n` rounds). The final order sorts by `(class, original index)`:
/// for truly symmetric (automorphic) UEs either order yields the same
/// canonical bytes, so the tie-break cannot break label invariance.
fn canonical_order(sys: &ConstraintSystem) -> Vec<usize> {
    let n = sys.n;
    if n == 0 {
        return Vec::new();
    }
    // Round-0 invariants.
    let inv: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let mut b = Vec::new();
            b.extend_from_slice(&sys.individual[i].to_bits().to_le_bytes());
            let mut pairs: Vec<u64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| pair_bits(sys, i, j))
                .collect();
            pairs.sort_unstable();
            for p in pairs {
                b.extend_from_slice(&p.to_le_bytes());
            }
            let mut tris: Vec<u64> = sys
                .triples
                .iter()
                .filter(|t| t.clients.0 == i || t.clients.1 == i || t.clients.2 == i)
                .map(|t| t.target.to_bits())
                .collect();
            tris.sort_unstable();
            for t in tris {
                b.extend_from_slice(&t.to_le_bytes());
            }
            b
        })
        .collect();
    let (mut classes, mut n_classes) = classes_of(&inv);
    for _ in 0..n {
        if n_classes == n {
            break; // fully discrete: no further refinement possible
        }
        let refined: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let mut b = Vec::new();
                b.extend_from_slice(&(classes[i] as u64).to_le_bytes());
                let mut pairs: Vec<(u64, u64)> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| (classes[j] as u64, pair_bits(sys, i, j)))
                    .collect();
                pairs.sort_unstable();
                for (c, p) in pairs {
                    b.extend_from_slice(&c.to_le_bytes());
                    b.extend_from_slice(&p.to_le_bytes());
                }
                let mut tris: Vec<(u64, u64, u64)> = sys
                    .triples
                    .iter()
                    .filter(|t| t.clients.0 == i || t.clients.1 == i || t.clients.2 == i)
                    .map(|t| {
                        let others: Vec<usize> = [t.clients.0, t.clients.1, t.clients.2]
                            .into_iter()
                            .filter(|&c| c != i)
                            .collect();
                        let (mut x, mut y) = (
                            classes[others[0]] as u64,
                            classes[others.get(1).copied().unwrap_or(others[0])] as u64,
                        );
                        if x > y {
                            std::mem::swap(&mut x, &mut y);
                        }
                        (t.target.to_bits(), x, y)
                    })
                    .collect();
                tris.sort_unstable();
                for (t, x, y) in tris {
                    b.extend_from_slice(&t.to_le_bytes());
                    b.extend_from_slice(&x.to_le_bytes());
                    b.extend_from_slice(&y.to_le_bytes());
                }
                b
            })
            .collect();
        let (new_classes, new_count) = classes_of(&refined);
        let stable = new_count == n_classes;
        classes = new_classes;
        n_classes = new_count;
        if stable {
            break;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (classes[i], i));
    let mut to_canon = vec![0usize; n];
    for (slot, &i) in order.iter().enumerate() {
        to_canon[i] = slot;
    }
    to_canon
}

/// Serialize `sys` under the canonical labeling, followed by the
/// inference configuration and backend identity — the exact byte
/// string two requests must share to be served from one entry.
fn canonical_bytes(
    sys: &ConstraintSystem,
    to_canon: &[usize],
    config: &InferenceConfig,
    backend: &InferenceBackend,
) -> Vec<u8> {
    let n = sys.n;
    let mut from_canon = vec![0usize; n];
    for (i, &slot) in to_canon.iter().enumerate() {
        from_canon[slot] = i;
    }
    let mut b = Vec::with_capacity(16 + 8 * (n + n * n / 2 + 4 * sys.triples.len()) + 64);
    b.extend_from_slice(&(n as u64).to_le_bytes());
    for &orig in &from_canon {
        b.extend_from_slice(&sys.individual[orig].to_bits().to_le_bytes());
    }
    for a in 0..n {
        for c in (a + 1)..n {
            b.extend_from_slice(&pair_bits(sys, from_canon[a], from_canon[c]).to_le_bytes());
        }
    }
    let mut tris: Vec<([usize; 3], u64)> = sys
        .triples
        .iter()
        .map(|t| {
            let mut cl = [
                to_canon[t.clients.0],
                to_canon[t.clients.1],
                to_canon[t.clients.2],
            ];
            cl.sort_unstable();
            (cl, t.target.to_bits())
        })
        .collect();
    tris.sort_unstable();
    b.extend_from_slice(&(tris.len() as u64).to_le_bytes());
    for (cl, bits) in tris {
        for c in cl {
            b.extend_from_slice(&(c as u64).to_le_bytes());
        }
        b.extend_from_slice(&bits.to_le_bytes());
    }
    // Inference configuration: any knob that changes the solve output
    // must split the key.
    b.extend_from_slice(&(config.max_iters as u64).to_le_bytes());
    b.extend_from_slice(&config.epsilon.to_bits().to_le_bytes());
    b.extend_from_slice(&(config.random_restarts as u64).to_le_bytes());
    b.push(config.refine_weights as u8);
    b.extend_from_slice(&config.accept_residual.to_bits().to_le_bytes());
    b.extend_from_slice(&config.degraded_residual.to_bits().to_le_bytes());
    match config.deadline {
        Deadline::None => b.push(0),
        Deadline::Steps(s) => {
            b.push(1);
            b.extend_from_slice(&s.to_le_bytes());
        }
        Deadline::Wall(d) => {
            b.push(2);
            b.extend_from_slice(&d.as_nanos().to_le_bytes());
        }
    }
    match backend {
        InferenceBackend::Gradient => b.push(0),
        InferenceBackend::Mcmc { config: mc, seed } => {
            b.push(1);
            b.extend_from_slice(&(mc.steps as u64).to_le_bytes());
            b.extend_from_slice(&mc.t_start.to_bits().to_le_bytes());
            b.extend_from_slice(&mc.t_end.to_bits().to_le_bytes());
            b.extend_from_slice(&(mc.max_hts as u64).to_le_bytes());
            b.extend_from_slice(&mc.ht_penalty.to_bits().to_le_bytes());
            b.extend_from_slice(&seed.to_le_bytes());
        }
    }
    b
}

/// Canonical, labeling-independent identity of one inference request:
/// the constraint system up to UE relabeling, plus the configuration
/// and backend that will solve it.
#[derive(Debug, Clone)]
pub struct TopologySignature {
    key: u128,
    to_canon: Vec<usize>,
    canon_bytes: Vec<u8>,
}

impl TopologySignature {
    /// Canonicalize and hash one inference request.
    pub fn new(
        sys: &ConstraintSystem,
        config: &InferenceConfig,
        backend: &InferenceBackend,
    ) -> Self {
        let to_canon = canonical_order(sys);
        let canon_bytes = canonical_bytes(sys, &to_canon, config, backend);
        TopologySignature {
            key: fnv1a_128(&canon_bytes),
            to_canon,
            canon_bytes,
        }
    }

    /// The stable 128-bit cache key.
    pub fn key(&self) -> u128 {
        self.key
    }

    /// The canonical permutation: `to_canon()[i]` is the canonical
    /// slot of this cell's UE `i`.
    pub fn to_canon(&self) -> &[usize] {
        &self.to_canon
    }
}

/// Relabel a constraint system: UE `i` becomes UE `perm[i]`. Pair and
/// triple targets move with their endpoints. Used by the
/// permutation-invariance tests; `perm` must be a permutation of
/// `0..sys.n`.
pub fn relabel_system(sys: &ConstraintSystem, perm: &[usize]) -> ConstraintSystem {
    let n = sys.n;
    assert_eq!(perm.len(), n, "permutation arity mismatch");
    let mut individual = vec![0.0; n];
    for i in 0..n {
        individual[perm[i]] = sys.individual[i];
    }
    let mut pair = vec![0.0; sys.pair.len()];
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = if perm[i] < perm[j] {
                (perm[i], perm[j])
            } else {
                (perm[j], perm[i])
            };
            pair[pair_index(n, a, b)] = sys.pair[pair_index(n, i, j)];
        }
    }
    let triples = sys
        .triples
        .iter()
        .map(|t| {
            let mut cl = [perm[t.clients.0], perm[t.clients.1], perm[t.clients.2]];
            cl.sort_unstable();
            crate::blueprint::constraints::TripleConstraint {
                clients: (cl[0], cl[1], cl[2]),
                target: t.target,
            }
        })
        .collect();
    ConstraintSystem {
        n,
        individual,
        pair,
        triples,
    }
}

// ---------------------------------------------------------------------------
// The fleet cache
// ---------------------------------------------------------------------------

/// What one lookup did — surfaced per inference through the
/// [`SubframeObserver`](crate::engine::SubframeObserver) seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetCacheEvent {
    /// Served from a ready entry without waiting.
    Hit,
    /// Parked on an in-flight entry and woken with the shared result.
    DelayedHit,
    /// Cold signature: this request performed the solve and published
    /// the entry.
    Miss,
    /// Key matched but canonical bytes differed (hash collision or
    /// WL-indistinguishable non-identical systems): solved fresh,
    /// uncached, so correctness never depends on the hash.
    Bypass,
}

/// Counters of one fleet cache, snapshotted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FleetCacheStats {
    /// Lookups served from a ready entry without waiting.
    pub hits: u64,
    /// Lookups that parked on an in-flight solve and shared its
    /// result.
    pub delayed_hits: u64,
    /// Lookups that performed the solve (including retries after an
    /// owner failed).
    pub misses: u64,
    /// Lookups that matched on key but not on canonical bytes and
    /// solved fresh, uncached.
    pub bypasses: u64,
    /// Ready entries evicted to make room.
    pub evictions: u64,
}

impl FleetCacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.delayed_hits + self.misses + self.bypasses
    }

    /// Fraction of lookups that skipped a solve — the
    /// `fleet_infer_work_saved` metric (0 when no lookups were made).
    pub fn work_saved(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            (self.hits + self.delayed_hits) as f64 / total as f64
        }
    }
}

/// One ready entry: the first-seen representative's canonical bytes
/// and permutation, plus its solve.
struct CachedBlueprint {
    canon_bytes: Vec<u8>,
    to_canon: Vec<usize>,
    result: InferenceResult,
}

struct FleetState {
    ready: LruCore<Arc<CachedBlueprint>>,
    /// Signatures currently being solved by an owner. Kept **outside**
    /// the LRU so eviction pressure can never orphan waiters.
    inflight: HashSet<u128>,
    stats: FleetCacheStats,
}

/// Bounded, shared, single-flight blueprint cache. `Send + Sync`;
/// one instance is shared by every cell of a fleet (and across
/// supervised restarts).
pub struct FleetBlueprintCache {
    state: Mutex<FleetState>,
    cv: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for FleetBlueprintCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("FleetBlueprintCache")
            .field("capacity", &self.capacity)
            .field("len", &st.ready.len())
            .field("stats", &st.stats)
            .finish()
    }
}

/// Removes the in-flight marker and wakes waiters if the owner's
/// solve fails (error return or panic), so a waiter can claim the
/// flight instead of parking forever.
struct FlightGuard<'a> {
    cache: &'a FleetBlueprintCache,
    key: u128,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut st = self.cache.lock();
            st.inflight.remove(&self.key);
            drop(st);
            self.cache.cv.notify_all();
        }
    }
}

impl FleetBlueprintCache {
    /// New cache holding at most `capacity` ready blueprints
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        FleetBlueprintCache {
            state: Mutex::new(FleetState {
                ready: LruCore::new(capacity),
                inflight: HashSet::new(),
                stats: FleetCacheStats::default(),
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured bound on ready entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ready blueprints currently resident.
    pub fn len(&self) -> usize {
        self.lock().ready.len()
    }

    /// Whether no blueprints are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FleetCacheStats {
        self.lock().stats
    }

    /// Lock the state, recovering from poisoning: the solve closure
    /// runs outside the lock, so a poisoned mutex can only mean a
    /// panic inside trivial bookkeeping — the counters and map are
    /// still structurally sound.
    fn lock(&self) -> MutexGuard<'_, FleetState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Fetch the blueprint for `sig`, solving at most once per
    /// signature across all concurrent callers.
    ///
    /// * ready entry with byte-identical canonical form → clone,
    ///   mapped into the requester's labels ([`FleetCacheEvent::Hit`],
    ///   or [`FleetCacheEvent::DelayedHit`] if this caller parked on
    ///   an in-flight solve first);
    /// * signature in flight → park on the condvar until the owner
    ///   publishes (or fails, in which case one waiter claims the
    ///   flight);
    /// * vacant → this caller becomes the owner: `solve` runs
    ///   **outside** the lock, the entry is published, and all
    ///   waiters wake ([`FleetCacheEvent::Miss`]);
    /// * key collision (canonical bytes differ) → `solve` runs fresh
    ///   and nothing is cached ([`FleetCacheEvent::Bypass`]).
    ///
    /// An `Err` from `solve` is returned to the owner and nothing is
    /// published; a panic unwinds through but clears the in-flight
    /// marker, so waiters never deadlock on a dead owner.
    pub fn get_or_solve<E>(
        &self,
        sig: &TopologySignature,
        solve: impl FnOnce() -> Result<InferenceResult, E>,
    ) -> Result<(InferenceResult, FleetCacheEvent), E> {
        let mut waited = false;
        let mut st = self.lock();
        loop {
            if let Some(entry) = st.ready.peek_bump(sig.key) {
                if entry.canon_bytes == sig.canon_bytes {
                    let event = if waited {
                        st.stats.delayed_hits += 1;
                        FleetCacheEvent::DelayedHit
                    } else {
                        st.stats.hits += 1;
                        FleetCacheEvent::Hit
                    };
                    drop(st);
                    return Ok((map_into_requester_labels(&entry, sig), event));
                }
                st.stats.bypasses += 1;
                drop(st);
                return solve().map(|r| (r, FleetCacheEvent::Bypass));
            }
            if st.inflight.contains(&sig.key) {
                waited = true;
                st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            st.inflight.insert(sig.key);
            st.stats.misses += 1;
            break;
        }
        drop(st);
        let mut guard = FlightGuard {
            cache: self,
            key: sig.key,
            armed: true,
        };
        let result = solve()?; // FlightGuard cleans up on Err / panic
        let entry = Arc::new(CachedBlueprint {
            canon_bytes: sig.canon_bytes.clone(),
            to_canon: sig.to_canon.clone(),
            result: result.clone(),
        });
        let mut st = self.lock();
        st.inflight.remove(&sig.key);
        let evictions_before = st.ready.evictions();
        st.ready.insert(sig.key, entry);
        st.stats.evictions += st.ready.evictions() - evictions_before;
        drop(st);
        guard.armed = false;
        self.cv.notify_all();
        Ok((result, FleetCacheEvent::Miss))
    }

    /// [`Self::get_or_solve`] for infallible solvers (the engine's
    /// ungated inference path).
    pub fn get_or_solve_infallible(
        &self,
        sig: &TopologySignature,
        solve: impl FnOnce() -> InferenceResult,
    ) -> (InferenceResult, FleetCacheEvent) {
        let r: Result<_, std::convert::Infallible> = self.get_or_solve(sig, || Ok(solve()));
        match r {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }
}

/// Map a cached result into the requester's UE labels. When the
/// requester's canonical permutation equals the representative's, the
/// labelings agree and the representative's solve is returned
/// verbatim — byte-identical to the requester's own fresh solve.
/// Otherwise hidden-terminal edge sets are pushed through
/// `σ = req_from_canon ∘ rep_to_canon` and re-sorted deterministically
/// (probabilities and scalar diagnostics are label-free and move
/// unchanged).
fn map_into_requester_labels(entry: &CachedBlueprint, sig: &TopologySignature) -> InferenceResult {
    if entry.to_canon == sig.to_canon {
        return entry.result.clone();
    }
    let n = sig.to_canon.len();
    let mut req_from_canon = vec![0usize; n];
    for (req, &slot) in sig.to_canon.iter().enumerate() {
        req_from_canon[slot] = req;
    }
    let mut result = entry.result.clone();
    for ht in result.topology.hts.iter_mut() {
        let mut mapped = ClientSet(0);
        for a in ht.edges.iter() {
            mapped.insert(req_from_canon[entry.to_canon[a]]);
        }
        ht.edges = mapped;
    }
    result
        .topology
        .hts
        .sort_by_key(|ht| (ht.edges.0, ht.q.to_bits()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn small_system(salt: u64) -> ConstraintSystem {
        // Deterministic, mildly-noisy 4-UE system; `salt` perturbs the
        // targets so distinct salts give distinct signatures.
        let n = 4;
        let jitter = |k: u64| ((salt.wrapping_mul(31).wrapping_add(k) % 97) as f64) * 1e-4;
        let individual: Vec<f64> = (0..n)
            .map(|i| 0.55 + 0.08 * i as f64 + jitter(i as u64))
            .collect();
        let mut pair = vec![0.0; blu_traces::stats::n_pairs(n)];
        for i in 0..n {
            for j in (i + 1)..n {
                pair[pair_index(n, i, j)] =
                    (individual[i] * individual[j] * (0.9 + jitter((i * n + j) as u64))).min(1.0);
            }
        }
        ConstraintSystem {
            n,
            individual,
            pair,
            triples: Vec::new(),
        }
    }

    fn assert_results_bit_identical(a: &InferenceResult, b: &InferenceResult) {
        assert_eq!(a.topology.n_clients, b.topology.n_clients);
        assert_eq!(a.topology.hts.len(), b.topology.hts.len());
        for (x, y) in a.topology.hts.iter().zip(&b.topology.hts) {
            assert_eq!(x.edges.0, y.edges.0, "HT edge sets differ");
            assert_eq!(x.q.to_bits(), y.q.to_bits(), "HT probability bits differ");
        }
        assert_eq!(a.violation.to_bits(), b.violation.to_bits());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.restarts, b.restarts);
        assert_eq!(a.residual_fraction.to_bits(), b.residual_fraction.to_bits());
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.overshoot, b.overshoot);
    }

    #[test]
    fn signature_is_invariant_under_relabeling() {
        let sys = small_system(7);
        let config = InferenceConfig::default();
        let backend = InferenceBackend::default();
        let base = TopologySignature::new(&sys, &config, &backend);
        for perm in [[1usize, 0, 3, 2], [3, 2, 1, 0], [2, 0, 3, 1]] {
            let relabeled = relabel_system(&sys, &perm);
            let sig = TopologySignature::new(&relabeled, &config, &backend);
            assert_eq!(
                sig.key(),
                base.key(),
                "key changed under relabeling {perm:?}"
            );
            assert_eq!(
                sig.canon_bytes, base.canon_bytes,
                "canonical bytes changed under relabeling {perm:?}"
            );
        }
    }

    #[test]
    fn signature_splits_on_config_and_backend() {
        let sys = small_system(7);
        let config = InferenceConfig::default();
        let backend = InferenceBackend::default();
        let base = TopologySignature::new(&sys, &config, &backend);

        let mut other = config;
        other.epsilon *= 2.0;
        assert_ne!(
            TopologySignature::new(&sys, &other, &backend).key(),
            base.key()
        );
        let mcmc = InferenceBackend::Mcmc {
            config: crate::blueprint::McmcConfig::default(),
            seed: 42,
        };
        assert_ne!(
            TopologySignature::new(&sys, &config, &mcmc).key(),
            base.key()
        );
        let sys2 = small_system(8);
        assert_ne!(
            TopologySignature::new(&sys2, &config, &backend).key(),
            base.key()
        );
    }

    #[test]
    fn unpermuted_hit_is_byte_identical_to_fresh_solve() {
        let sys = small_system(3);
        let config = InferenceConfig::default();
        let backend = InferenceBackend::default();
        let fresh = backend.infer(&sys, &config);

        let cache = FleetBlueprintCache::new(8);
        let sig = TopologySignature::new(&sys, &config, &backend);
        let (first, ev1) = cache.get_or_solve_infallible(&sig, || backend.infer(&sys, &config));
        assert_eq!(ev1, FleetCacheEvent::Miss);
        let (second, ev2) = cache.get_or_solve_infallible(&sig, || panic!("hit must not re-solve"));
        assert_eq!(ev2, FleetCacheEvent::Hit);
        assert_results_bit_identical(&first, &fresh);
        assert_results_bit_identical(&second, &fresh);
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.delayed_hits, s.bypasses), (1, 1, 0, 0));
    }

    #[test]
    fn key_collision_bypasses_instead_of_serving_wrong_entry() {
        let sys = small_system(3);
        let config = InferenceConfig::default();
        let backend = InferenceBackend::default();
        let sig = TopologySignature::new(&sys, &config, &backend);
        let cache = FleetBlueprintCache::new(8);
        cache.get_or_solve_infallible(&sig, || backend.infer(&sys, &config));

        // Forge a signature with the same key but different canonical
        // bytes — exactly what a 128-bit hash collision would produce.
        let mut forged = sig.clone();
        forged.canon_bytes.push(0xFF);
        let solved = AtomicUsize::new(0);
        let (_, ev) = cache.get_or_solve_infallible(&forged, || {
            solved.fetch_add(1, Ordering::SeqCst);
            backend.infer(&sys, &config)
        });
        assert_eq!(ev, FleetCacheEvent::Bypass);
        assert_eq!(solved.load(Ordering::SeqCst), 1, "bypass must solve fresh");
        assert_eq!(cache.stats().bypasses, 1);
        assert_eq!(cache.len(), 1, "bypass must not publish");
    }

    #[test]
    fn racing_threads_on_one_cold_signature_solve_exactly_once() {
        const THREADS: usize = 8;
        let sys = small_system(11);
        let config = InferenceConfig::default();
        let backend = InferenceBackend::default();
        let sig = TopologySignature::new(&sys, &config, &backend);
        let fresh = backend.infer(&sys, &config);

        let cache = FleetBlueprintCache::new(8);
        let solves = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    barrier.wait();
                    let (result, _) = cache.get_or_solve_infallible(&sig, || {
                        solves.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that the
                        // other racers park instead of racing past.
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        backend.infer(&sys, &config)
                    });
                    assert_results_bit_identical(&result, &fresh);
                });
            }
        });
        assert_eq!(solves.load(Ordering::SeqCst), 1, "single-flight violated");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(
            s.hits + s.delayed_hits,
            (THREADS - 1) as u64,
            "every non-owner must be served from the shared solve"
        );
        assert!(
            s.delayed_hits >= 1,
            "with a 100 ms flight and a start barrier at least one racer must park"
        );
    }

    #[test]
    fn owner_failure_wakes_waiters_and_a_retry_succeeds() {
        let sys = small_system(5);
        let config = InferenceConfig::default();
        let backend = InferenceBackend::default();
        let sig = TopologySignature::new(&sys, &config, &backend);
        let cache = FleetBlueprintCache::new(8);
        let attempts = AtomicUsize::new(0);
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            let failer = s.spawn(|| {
                let r = cache.get_or_solve(&sig, || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    barrier.wait(); // waiter is about to park
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    Err("solver exploded")
                });
                assert_eq!(r.unwrap_err(), "solver exploded");
            });
            let waiter = s.spawn(|| {
                barrier.wait();
                let (result, _) = cache
                    .get_or_solve::<&str>(&sig, || {
                        attempts.fetch_add(1, Ordering::SeqCst);
                        Ok(backend.infer(&sys, &config))
                    })
                    .unwrap();
                assert_results_bit_identical(&result, &backend.infer(&sys, &config));
            });
            failer.join().unwrap();
            waiter.join().unwrap();
        });
        assert_eq!(
            attempts.load(Ordering::SeqCst),
            2,
            "failed owner plus exactly one retry"
        );
        assert_eq!(cache.len(), 1, "retry must publish");
    }

    #[test]
    fn eviction_is_counted_and_bounded() {
        let config = InferenceConfig::default();
        let backend = InferenceBackend::default();
        let cache = FleetBlueprintCache::new(1);
        for salt in 0..3u64 {
            let sys = small_system(salt);
            let sig = TopologySignature::new(&sys, &config, &backend);
            cache.get_or_solve_infallible(&sig, || backend.infer(&sys, &config));
        }
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 2);
        assert!(s.work_saved() == 0.0);
    }

    #[test]
    fn permuted_hit_maps_topology_back_into_requester_labels() {
        // A symmetric 3-UE system where relabeling is exact: the
        // cached representative's result must come back with edge
        // sets expressed in the requester's labels.
        let sys = small_system(9);
        let perm = [2usize, 0, 3, 1];
        let relabeled = relabel_system(&sys, &perm);
        let config = InferenceConfig::default();
        let backend = InferenceBackend::default();
        let sig_a = TopologySignature::new(&sys, &config, &backend);
        let sig_b = TopologySignature::new(&relabeled, &config, &backend);
        assert_eq!(sig_a.key(), sig_b.key());

        let cache = FleetBlueprintCache::new(8);
        let (rep, _) = cache.get_or_solve_infallible(&sig_a, || backend.infer(&sys, &config));
        let (mapped, ev) = cache.get_or_solve_infallible(&sig_b, || {
            panic!("relabeled request must hit the shared entry")
        });
        assert_eq!(ev, FleetCacheEvent::Hit);
        // Label-free scalars move unchanged…
        assert_eq!(mapped.violation.to_bits(), rep.violation.to_bits());
        assert_eq!(mapped.topology.hts.len(), rep.topology.hts.len());
        // …and every mapped edge set is the σ-image of a rep edge set.
        for ht in &mapped.topology.hts {
            let pre_image = ClientSet::from_iter(ht.edges.iter().map(|c| {
                // invert σ: requester label c → rep label
                let slot = sig_b.to_canon()[c];
                sig_a.to_canon().iter().position(|&s| s == slot).unwrap()
            }));
            assert!(
                rep.topology
                    .hts
                    .iter()
                    .any(|r| r.edges.0 == pre_image.0 && r.q.to_bits() == ht.q.to_bits()),
                "mapped HT has no σ-pre-image in the representative solve"
            );
        }
    }
}
