//! The paper's topology-inference accuracy metric.
//!
//! §4.2.2: "a stringent accuracy metric, calculated as the fraction
//! of the hidden terminals that are inferred with the exact same
//! interference edges to specific UEs, when compared to the ground
//! truth (even a single missing edge will prevent the match)."
//!
//! Both topologies are canonicalized first (duplicate edge sets
//! merged), then ground-truth terminals are matched one-to-one
//! against inferred terminals by exact edge-set equality.

use blu_sim::topology::InterferenceTopology;
use std::collections::HashMap;

/// Accuracy report for an inferred topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Ground-truth hidden terminals (after canonicalization).
    pub n_truth: usize,
    /// Inferred hidden terminals (after canonicalization).
    pub n_inferred: usize,
    /// Terminals matched with the exact same edge set.
    pub exact_matches: usize,
    /// Mean absolute error of `q(k)` over the matched terminals
    /// (NaN if none matched).
    pub q_mae: f64,
}

impl AccuracyReport {
    /// The paper's metric: matched / ground-truth count.
    pub fn exact_fraction(&self) -> f64 {
        if self.n_truth == 0 {
            // Nothing to find: exact iff nothing was invented.
            if self.n_inferred == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.exact_matches as f64 / self.n_truth as f64
        }
    }

    /// Spurious terminals beyond the matches.
    pub fn excess(&self) -> usize {
        self.n_inferred.saturating_sub(self.exact_matches)
    }
}

/// Score `inferred` against `truth`.
pub fn topology_accuracy(
    truth: &InterferenceTopology,
    inferred: &InterferenceTopology,
) -> AccuracyReport {
    assert_eq!(truth.n_clients, inferred.n_clients);
    let t = truth.canonicalize();
    let i = inferred.canonicalize();
    // Canonical topologies have unique edge sets, so matching is a
    // hash join.
    let inferred_by_edges: HashMap<u128, f64> = i.hts.iter().map(|ht| (ht.edges.0, ht.q)).collect();
    let mut exact = 0usize;
    let mut q_err = 0.0f64;
    for ht in &t.hts {
        if let Some(&qi) = inferred_by_edges.get(&ht.edges.0) {
            exact += 1;
            q_err += (qi - ht.q).abs();
        }
    }
    AccuracyReport {
        n_truth: t.hts.len(),
        n_inferred: i.hts.len(),
        exact_matches: exact,
        q_mae: if exact > 0 {
            q_err / exact as f64
        } else {
            f64::NAN
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::topology::HiddenTerminal;

    fn topo(n: usize, spec: &[(f64, &[usize])]) -> InterferenceTopology {
        InterferenceTopology {
            n_clients: n,
            hts: spec
                .iter()
                .map(|&(q, edges)| HiddenTerminal {
                    q,
                    edges: edges.iter().copied().collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn perfect_match() {
        let t = topo(3, &[(0.4, &[0, 1]), (0.2, &[2])]);
        let r = topology_accuracy(&t, &t.clone());
        assert_eq!(r.exact_fraction(), 1.0);
        assert_eq!(r.excess(), 0);
        assert!(r.q_mae < 1e-12);
    }

    #[test]
    fn missing_edge_breaks_match() {
        let truth = topo(3, &[(0.4, &[0, 1, 2])]);
        let inferred = topo(3, &[(0.4, &[0, 1])]);
        let r = topology_accuracy(&truth, &inferred);
        assert_eq!(r.exact_matches, 0);
        assert_eq!(r.exact_fraction(), 0.0);
    }

    #[test]
    fn partial_match_counts_fraction() {
        let truth = topo(4, &[(0.4, &[0, 1]), (0.3, &[2, 3])]);
        let inferred = topo(4, &[(0.35, &[0, 1]), (0.3, &[1, 2, 3])]);
        let r = topology_accuracy(&truth, &inferred);
        assert_eq!(r.exact_matches, 1);
        assert_eq!(r.exact_fraction(), 0.5);
        assert_eq!(r.excess(), 1);
        assert!((r.q_mae - 0.05).abs() < 1e-12);
    }

    #[test]
    fn canonicalization_merges_before_matching() {
        // Two inferred HTs with the same edges merge into one whose
        // combined q matches truth.
        let truth = topo(2, &[(0.75, &[0, 1])]);
        let inferred = topo(2, &[(0.5, &[0, 1]), (0.5, &[0, 1])]);
        let r = topology_accuracy(&truth, &inferred);
        assert_eq!(r.exact_matches, 1);
        assert_eq!(r.n_inferred, 1);
        assert!(r.q_mae < 1e-12);
    }

    #[test]
    fn empty_truth_cases() {
        let empty = InterferenceTopology::interference_free(2);
        assert_eq!(topology_accuracy(&empty, &empty).exact_fraction(), 1.0);
        let spurious = topo(2, &[(0.2, &[0])]);
        assert_eq!(topology_accuracy(&empty, &spurious).exact_fraction(), 0.0);
    }
}
