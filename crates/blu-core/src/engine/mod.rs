//! The staged cell engine: one sub-frame loop, one stage pipeline,
//! every orchestration layer a thin composition.
//!
//! The paper's Fig. 9 loop (measure → blue-print → speculate) used to
//! be implemented three separate times — the emulator's run loops,
//! the two-phase orchestrator, and the robust driver — each
//! re-deriving CCA/pilot/decode/PF sequencing by hand. This module
//! collapses them onto two mechanisms:
//!
//! * [`CellEngine`] ([`cell`]) owns the per-subframe sequencing —
//!   CCA → grant → pilot classification → ZF decode → PF/estimator
//!   update — for both back-to-back and LBT-contended access
//!   ([`AccessMode`]), streaming every decoded sub-frame to a
//!   [`SubframeObserver`] ([`observer`]; no-op default, zero cost
//!   when unused).
//! * [`run_pipeline`] ([`stages`]) drives an ordered composition of
//!   typed stages — [`MeasureStage`] → [`InferStage`] →
//!   [`GenerateStage`] → [`ScheduleStage`] → [`TransmitStage`] —
//!   over a shared [`CellContext`] ([`context`]). The **ordering
//!   contract** is structural: [`StageKind`] derives `Ord` in
//!   pipeline order and `run_pipeline` rejects any composition whose
//!   kinds decrease.
//!
//! The mutable loop state lives in [`CellSnapshot`] — the
//! engine-level, serializable checkpoint (née `RobustSnapshot`, still
//! re-exported under that name with an unchanged on-disk schema), so
//! checkpoint/restore, the circuit breaker and the drift monitor are
//! available to **any** staged composition, not just the robust loop.
//! Fleet-scale callers fan cells across [`FleetEngine`] ([`fleet`]),
//! which reproduces the rayon shim's deterministic ordered chunking
//! while adding per-shard scratch reuse.
//!
//! Stages carry *mechanism*; *policy* stays with the caller:
//! `orchestrator::run_blu` composes all five stages once over a fresh
//! snapshot, while `robust` composes `[Measure, Infer]` or
//! `[Generate, Schedule, Transmit]` per state-machine arm and keeps
//! drift/probation/breaker decisions for itself.

pub mod cell;
pub mod context;
pub mod fleet;
pub mod hot;
pub mod observer;
pub mod stages;

pub use cell::{AccessMode, CellEngine};
pub use context::{
    CellContext, CellGeometry, CellSnapshot, CheckpointPolicy, DriftMonitor, OrchestratorState,
    SchedulerSpec, SegmentPlan, StateTransition, StreamState,
};
pub use fleet::FleetEngine;
pub use hot::EngineArena;
pub use observer::{HeartbeatCounter, NullObserver, StreamEvent, SubframeObserver, SubframeView};
pub use stages::{
    run_pipeline, GenerateStage, InferGate, InferStage, MeasureFidelity, MeasureStage,
    SchedulePolicy, ScheduleStage, Stage, StageFlow, StageKind, StreamInferStage, TransmitFeed,
    TransmitStage,
};
