//! Shared state the stage pipeline runs over.
//!
//! [`CellContext`] borrows the immutable inputs of one cell's run
//! (trace, fault script, configs) and owns references to the mutable
//! loop state, all of which lives in [`CellSnapshot`] — the
//! engine-level, serializable record of everything that must survive
//! a process restart for a resumed run to be bit-identical. The
//! snapshot (historically `RobustSnapshot`, still re-exported under
//! that name with an unchanged serde layout), the orchestrator state
//! machine, the drift monitor, the circuit breaker, and the
//! checkpoint policy are engine-level concerns here: any staged
//! composition gets checkpoint/restore and breaker gating for free,
//! not just the robust loop.

use crate::blueprint::infer::InferenceVerdict;
use crate::blueprint::{InferenceBackend, InferenceConfig, InferenceResult, ObservationWindow};
use crate::emulator::{EmulationConfig, EmulationReport};
use crate::measure::OutcomeEstimator;
use crate::metrics::UplinkMetrics;
use crate::runtime::breaker::{BreakerConfig, CircuitBreaker};
use blu_sim::faults::{FaultScript, ObservationChannel};
use blu_sim::rng::DetRng;
use blu_traces::schema::TestbedTrace;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Where a staged cell run currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrchestratorState {
    /// Initial full-length measurement phase.
    Measuring,
    /// Speculating on a blue-print whose drift score is below
    /// threshold.
    Confident,
    /// Drift detected; about to re-measure.
    Drifting,
    /// Shortened re-measurement phase (§3.7).
    Remeasuring,
    /// Blue-print unusable — scheduling with plain PF.
    Fallback,
}

impl std::fmt::Display for OrchestratorState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OrchestratorState::Measuring => "measuring",
            OrchestratorState::Confident => "confident",
            OrchestratorState::Drifting => "drifting",
            OrchestratorState::Remeasuring => "re-measuring",
            OrchestratorState::Fallback => "fallback",
        })
    }
}

/// Per-client mispredict tracker: an EWMA of the signed difference
/// between each observed CCA outcome (1 = accessed) and the
/// blue-print's predicted access probability. Under a correct
/// blue-print every per-client EWMA hovers around zero; a terminal
/// appearing, disappearing or drifting pulls its victims' EWMAs away
/// in either direction, so the score is the **maximum absolute**
/// per-client deviation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftMonitor {
    alpha: f64,
    dev: Vec<f64>,
    samples: u64,
}

impl DriftMonitor {
    /// New monitor over `n` clients with EWMA weight `alpha`.
    pub fn new(alpha: f64, n: usize) -> Self {
        DriftMonitor {
            alpha: alpha.clamp(0.0, 1.0),
            dev: vec![0.0; n],
            samples: 0,
        }
    }

    /// Feed one observed outcome for client `ue` against the
    /// blue-print's predicted access probability.
    pub fn observe(&mut self, ue: usize, accessed: bool, predicted: f64) {
        if ue >= self.dev.len() {
            return;
        }
        let p = if predicted.is_finite() {
            predicted.clamp(0.0, 1.0)
        } else {
            0.5
        };
        let x = if accessed { 1.0 } else { 0.0 };
        self.dev[ue] += self.alpha * ((x - p) - self.dev[ue]);
        self.samples += 1;
    }

    /// Current drift score: the largest per-client |EWMA| deviation.
    pub fn score(&self) -> f64 {
        self.dev.iter().fold(0.0_f64, |m, d| m.max(d.abs()))
    }

    /// Observations consumed since the last reset.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Forget everything (called after re-blue-printing).
    pub fn reset(&mut self) {
        self.dev.iter_mut().for_each(|d| *d = 0.0);
        self.samples = 0;
    }
}

/// Streaming-pipeline state carried inside the snapshot: the sliding
/// observation window plus the streaming counters the daemon exports
/// as `blu_stream_*`. Only present when the robust loop runs with
/// streaming enabled — phased runs never materialize it, and the
/// snapshot's hand-written serializer omits the field entirely when
/// absent, so streaming-off checkpoints stay byte-identical to the
/// v1 schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamState {
    /// Bounded per-subframe observation ring with incrementally
    /// maintained counters (the streaming ingest path).
    pub window: ObservationWindow,
    /// Incremental refines attempted so far.
    pub refines: u64,
    /// Refines whose blueprint passed the gate and was installed.
    pub refines_installed: u64,
    /// Drift-monitor fallback re-measurements scheduled despite
    /// streaming (the demoted §3.7 arm).
    pub fallback_remeasurements: u64,
    /// Churn-driven topology events applied to the cell's books.
    pub churn_events_applied: u64,
}

impl StreamState {
    /// Fresh streaming state over `n` clients with a window retaining
    /// at most `window_capacity` sub-frames.
    pub fn new(n: usize, window_capacity: usize) -> Self {
        StreamState {
            window: ObservationWindow::new(n, window_capacity),
            refines: 0,
            refines_installed: 0,
            fallback_remeasurements: 0,
            churn_events_applied: 0,
        }
    }
}

/// Where and how often the loop persists its state.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory holding the per-cell snapshot files
    /// (`cell-<index>.json`).
    pub dir: PathBuf,
    /// Save whenever the cursor has advanced this many sub-frames
    /// since the last save (0 = only at clean shutdown). A final
    /// save always happens when the run completes.
    pub every_subframes: u64,
    /// Resume from an existing snapshot in `dir` if one is present
    /// (a fresh run starts when the file is absent).
    pub resume: bool,
}

/// One state-machine transition, for post-mortem inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateTransition {
    /// Trace sub-frame at which the state was entered.
    pub at_subframe: u64,
    /// The state entered.
    pub state: OrchestratorState,
}

/// The complete mutable state of one cell's staged run — everything
/// that must survive a process restart for the resumed run to be
/// bit-identical to an uninterrupted one. Persisted via
/// [`crate::runtime::checkpoint`]; the serde layout is the v1 robust
/// checkpoint schema, unchanged by the engine extraction.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct CellSnapshot {
    /// Clients in the capture (resume-mismatch guard).
    pub n_clients: u64,
    /// Sub-frames in the capture (resume-mismatch guard).
    pub trace_len: u64,
    /// Seed the run started with (resume-mismatch guard: a different
    /// seed means different RNG streams).
    pub config_seed: u64,
    /// Trace cursor, in sub-frames.
    pub cursor: u64,
    /// Current machine state.
    pub state: OrchestratorState,
    /// Whether the run has consumed the trace.
    pub done: bool,
    /// Accumulated access statistics.
    pub est: OutcomeEstimator,
    /// Observation-fault channel (carries its RNG).
    pub chan: ObservationChannel,
    /// RNG stream feeding scripted constraint poisoning.
    pub poison_rng: DetRng,
    /// Drift monitor EWMAs.
    pub drift: DriftMonitor,
    /// Per-cell circuit breaker (state, backoff, jitter RNG,
    /// transition history).
    pub breaker: CircuitBreaker,
    /// Merged scheduling metrics so far.
    pub metrics: UplinkMetrics,
    /// State history so far.
    pub transitions: Vec<StateTransition>,
    /// Inference verdicts so far.
    pub verdicts: Vec<InferenceVerdict>,
    /// Blue-print currently in force.
    pub blueprint: Option<InferenceResult>,
    /// PF average-rate state carried across engine segments.
    pub pf_avg: Option<Vec<f64>>,
    /// Sub-frames spent measuring so far.
    pub measurement_subframes: u64,
    /// Re-measurement phases so far.
    pub n_remeasurements: u32,
    /// TxOPs spent speculating so far.
    pub speculative_txops: u64,
    /// TxOPs spent in PF fallback so far.
    pub fallback_txops: u64,
    /// TxOPs of fallback probation remaining.
    pub probation_left: u64,
    /// Largest drift score seen so far.
    pub peak_drift: f64,
    /// Wall-clock inference time so far (timing only — excluded from
    /// the determinism contract and therefore from snapshot
    /// equality-based determinism tests).
    pub inference_micros: u64,
    /// Contained inference panics so far.
    pub inference_panics: u32,
    /// Deadline-bounded inferences that returned incomplete so far.
    pub deadline_misses: u32,
    /// Constraint targets quarantined so far.
    pub quarantined_constraints: u64,
    /// Streaming-pipeline state (window + counters). `None` on every
    /// phased run; the serializer omits the key entirely when absent
    /// so v1 checkpoints round-trip byte-identically, and the
    /// deserializer tolerates its absence, so v1 files still load.
    pub stream: Option<StreamState>,
}

// Hand-rolled so the `stream` key is *omitted* (not `null`) when the
// run is phased: the v1 checkpoint golden is a byte-level contract
// and the derive would emit `"stream": null` into it. Field order
// matches the declaration order the derive would use.
impl Serialize for CellSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut m: Vec<(String, serde::Value)> = vec![
            ("n_clients".to_string(), self.n_clients.to_value()),
            ("trace_len".to_string(), self.trace_len.to_value()),
            ("config_seed".to_string(), self.config_seed.to_value()),
            ("cursor".to_string(), self.cursor.to_value()),
            ("state".to_string(), self.state.to_value()),
            ("done".to_string(), self.done.to_value()),
            ("est".to_string(), self.est.to_value()),
            ("chan".to_string(), self.chan.to_value()),
            ("poison_rng".to_string(), self.poison_rng.to_value()),
            ("drift".to_string(), self.drift.to_value()),
            ("breaker".to_string(), self.breaker.to_value()),
            ("metrics".to_string(), self.metrics.to_value()),
            ("transitions".to_string(), self.transitions.to_value()),
            ("verdicts".to_string(), self.verdicts.to_value()),
            ("blueprint".to_string(), self.blueprint.to_value()),
            ("pf_avg".to_string(), self.pf_avg.to_value()),
            (
                "measurement_subframes".to_string(),
                self.measurement_subframes.to_value(),
            ),
            (
                "n_remeasurements".to_string(),
                self.n_remeasurements.to_value(),
            ),
            (
                "speculative_txops".to_string(),
                self.speculative_txops.to_value(),
            ),
            ("fallback_txops".to_string(), self.fallback_txops.to_value()),
            ("probation_left".to_string(), self.probation_left.to_value()),
            ("peak_drift".to_string(), self.peak_drift.to_value()),
            (
                "inference_micros".to_string(),
                self.inference_micros.to_value(),
            ),
            (
                "inference_panics".to_string(),
                self.inference_panics.to_value(),
            ),
            (
                "deadline_misses".to_string(),
                self.deadline_misses.to_value(),
            ),
            (
                "quarantined_constraints".to_string(),
                self.quarantined_constraints.to_value(),
            ),
        ];
        if let Some(stream) = &self.stream {
            m.push(("stream".to_string(), stream.to_value()));
        }
        serde::Value::Map(m)
    }
}

impl CellSnapshot {
    /// Fresh pre-run state for a cell of `n` clients over a trace of
    /// `trace_len` sub-frames. All RNG streams (observation channel,
    /// poison source, breaker jitter) derive from `seed`.
    pub fn fresh(
        n: usize,
        trace_len: u64,
        seed: u64,
        drift_alpha: f64,
        breaker: BreakerConfig,
    ) -> Self {
        CellSnapshot {
            n_clients: n as u64,
            trace_len,
            config_seed: seed,
            cursor: 0,
            state: OrchestratorState::Measuring,
            done: false,
            est: OutcomeEstimator::new(n),
            chan: ObservationChannel::new(DetRng::seed_from_u64(seed ^ 0x0B5E_7ACE)),
            poison_rng: DetRng::seed_from_u64(seed ^ 0x7015_0A11),
            drift: DriftMonitor::new(drift_alpha, n),
            breaker: CircuitBreaker::new(breaker, seed),
            metrics: UplinkMetrics::new(n),
            transitions: vec![StateTransition {
                at_subframe: 0,
                state: OrchestratorState::Measuring,
            }],
            verdicts: Vec::new(),
            blueprint: None,
            pf_avg: None,
            measurement_subframes: 0,
            n_remeasurements: 0,
            speculative_txops: 0,
            fallback_txops: 0,
            probation_left: 0,
            peak_drift: 0.0,
            inference_micros: 0,
            inference_panics: 0,
            deadline_misses: 0,
            quarantined_constraints: 0,
            stream: None,
        }
    }

    /// Enter a state, recording the transition at the current cursor.
    pub fn enter(&mut self, next: OrchestratorState) {
        self.state = next;
        self.transitions.push(StateTransition {
            at_subframe: self.cursor,
            state: next,
        });
    }
}

/// Fixed per-run geometry derived from the trace and the cell config.
#[derive(Debug, Clone, Copy)]
pub struct CellGeometry {
    /// Clients in the trace.
    pub n: usize,
    /// Sub-frames in the trace.
    pub trace_len: u64,
    /// Sub-frames per TxOP (DL + UL).
    pub per_txop: u64,
    /// DL sub-frames per TxOP.
    pub dl: u64,
    /// UL sub-frames per TxOP.
    pub ul: u64,
    /// Measurement-plan `K` (max clients schedulable per sub-frame).
    pub k_max: usize,
}

impl CellGeometry {
    /// Derive the geometry from a trace and the cell config.
    pub fn derive(trace: &TestbedTrace, emulation: &EmulationConfig) -> Self {
        CellGeometry {
            n: trace.ground_truth.n_clients,
            trace_len: trace.access.len() as u64,
            per_txop: emulation.cell.txop.total_subframes(),
            dl: emulation.cell.txop.dl_subframes,
            ul: emulation.cell.txop.ul_subframes,
            k_max: emulation.cell.max_ues_per_subframe,
        }
    }
}

/// Which scheduler the transmit stage instantiates, decided by
/// [`GenerateStage`](crate::engine::GenerateStage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerSpec {
    /// Plain proportional fair (needs no topology knowledge).
    #[default]
    Pf,
    /// BLU's speculative scheduler over the blue-print in force.
    Speculative,
}

/// One transmit segment's window, decided by
/// [`ScheduleStage`](crate::engine::ScheduleStage).
#[derive(Debug, Clone, Copy)]
pub struct SegmentPlan {
    /// TxOPs to run.
    pub txops: u64,
    /// Trace sub-frame the segment starts at.
    pub start_subframe: u64,
}

/// Everything a stage pipeline reads and writes: borrowed immutable
/// inputs, the mutable [`CellSnapshot`], and the inter-stage slots
/// (scheduler spec, segment plan, last transmit report).
pub struct CellContext<'a, 's> {
    /// The captured air being replayed.
    pub trace: &'a TestbedTrace,
    /// Scripted faults (`None` = clean observation/runtime path).
    pub script: Option<&'a FaultScript>,
    /// Cell/emulation parameters (borrowed — never cloned per
    /// segment).
    pub emulation: &'a EmulationConfig,
    /// Inference parameters.
    pub inference: &'a InferenceConfig,
    /// Inference engine.
    pub backend: &'a InferenceBackend,
    /// Fixed run geometry.
    pub geom: CellGeometry,
    /// The mutable, checkpointable loop state.
    pub snap: &'s mut CellSnapshot,
    /// Slot written by the schedule stage, consumed by transmit.
    pub segment: Option<SegmentPlan>,
    /// Slot written by the generate stage, consumed by transmit.
    pub spec: SchedulerSpec,
    /// Report of the last transmit segment.
    pub last_report: Option<EmulationReport>,
    /// Recycled engine hot-state buffers (one arena per fleet shard
    /// or per driver): when set, the transmit stage adopts them into
    /// its segment engine and yields them back afterwards, so
    /// repeated segments allocate nothing per sub-frame. `None` keeps
    /// the stage self-contained (fresh buffers per segment).
    pub arena: Option<&'s mut super::hot::EngineArena>,
    /// Shared fleet blueprint cache: when set, the infer stage
    /// consults it (single-flight per canonical topology signature)
    /// before solving. `None` keeps inference self-contained,
    /// bit-identical to the pre-cache engine.
    pub fleet_cache: Option<&'a crate::blueprint::fleetcache::FleetBlueprintCache>,
}

impl<'a, 's> CellContext<'a, 's> {
    /// Assemble a context over borrowed inputs and snapshot.
    pub fn new(
        trace: &'a TestbedTrace,
        script: Option<&'a FaultScript>,
        emulation: &'a EmulationConfig,
        inference: &'a InferenceConfig,
        backend: &'a InferenceBackend,
        snap: &'s mut CellSnapshot,
    ) -> Self {
        CellContext {
            trace,
            script,
            emulation,
            inference,
            backend,
            geom: CellGeometry::derive(trace, emulation),
            snap,
            segment: None,
            spec: SchedulerSpec::default(),
            last_report: None,
            arena: None,
            fleet_cache: None,
        }
    }

    /// Attach a recycled hot-state arena (builder style; see the
    /// `arena` field).
    pub fn with_arena(mut self, arena: &'s mut super::hot::EngineArena) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Attach a shared fleet blueprint cache (builder style; see the
    /// `fleet_cache` field).
    pub fn with_fleet_cache(
        mut self,
        cache: &'a crate::blueprint::fleetcache::FleetBlueprintCache,
    ) -> Self {
        self.fleet_cache = Some(cache);
        self
    }
}
