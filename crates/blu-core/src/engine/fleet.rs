//! Sharded fleet execution with per-shard scratch state.
//!
//! [`FleetEngine`] fans a work list across a chunked
//! [`std::thread::scope`] pool using **exactly** the vendored rayon
//! shim's placement math — `min(RAYON_NUM_THREADS |
//! available_parallelism, items)` workers, balanced contiguous
//! chunks, joined in spawn order — so anything previously routed
//! through `par_iter().map(..)` produces byte-identical, input-ordered
//! results when routed through here instead.
//!
//! What the shim cannot express (and the reason this exists) is
//! *per-shard state*: each worker builds one scratch value with
//! `init()` and threads it through every item of its chunk. Callers
//! whose per-item work is allocation-heavy — batch blueprint
//! inference re-allocating residual trackers per cell — amortize
//! those allocations across the shard instead of paying them per
//! item. With `St = ()` the engine degenerates to the shim's plain
//! ordered map.

use crate::error::BluError;
use crate::runtime::panic_message;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Number of worker shards for `n_items` items — the vendored rayon
/// shim's `threads_for`, verbatim, so placement (and therefore
/// per-shard scratch reuse boundaries) matches `par_iter` exactly.
fn shards_for(n_items: usize) -> usize {
    let hw = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    hw.min(n_items).max(1)
}

/// The sharded fleet executor. Stateless; its methods are associated
/// functions so call sites read `FleetEngine::run(..)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetEngine;

impl FleetEngine {
    /// Map `f` over `items` across balanced contiguous shards,
    /// returning results in input order. Each shard calls `init()`
    /// once and passes the resulting scratch to every `f` call of its
    /// chunk.
    ///
    /// Determinism contract: shard boundaries depend only on
    /// `(items.len(), worker count)`, shards are joined in spawn
    /// order, and a single-worker run degenerates to a plain
    /// sequential loop — so a pure, deterministic `f` yields
    /// bit-identical output at any parallelism level.
    pub fn run<T, R, St, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        I: Fn() -> St + Sync,
        F: Fn(&mut St, T) -> R + Sync,
    {
        Self::run_isolated(items, init, f)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("fleet shard panicked: {e}")))
            .collect()
    }

    /// [`FleetEngine::run`] with **per-item panic isolation**: a panic
    /// inside `f` is contained at the item boundary and surfaces as
    /// that item's [`BluError::Panicked`] (payload rendered through
    /// [`panic_message`]); every other item — including the rest of
    /// the panicking item's own shard — still produces its result.
    /// The shard scratch is rebuilt with `init()` after a contained
    /// panic, since the unwound `f` may have left it torn.
    ///
    /// The determinism contract of [`FleetEngine::run`] carries over
    /// unchanged: input-ordered results, placement from
    /// `(items.len(), worker count)` only, sequential degeneration at
    /// one worker.
    pub fn run_isolated<T, R, St, I, F>(items: Vec<T>, init: I, f: F) -> Vec<Result<R, BluError>>
    where
        T: Send,
        R: Send,
        I: Fn() -> St + Sync,
        F: Fn(&mut St, T) -> R + Sync,
    {
        let n = items.len();
        let shards = shards_for(n);
        let run_shard = |chunk: Vec<T>| -> Vec<Result<R, BluError>> {
            let mut scratch = init();
            chunk
                .into_iter()
                .map(
                    |x| match catch_unwind(AssertUnwindSafe(|| f(&mut scratch, x))) {
                        Ok(r) => Ok(r),
                        Err(payload) => {
                            // The unwound closure may have left the
                            // shard scratch half-updated — rebuild it
                            // before the next item.
                            scratch = init();
                            Err(BluError::Panicked(panic_message(payload.as_ref())))
                        }
                    },
                )
                .collect()
        };
        if shards <= 1 {
            return run_shard(items);
        }
        // Balanced contiguous chunks: sizes differ by at most one, and
        // boundaries depend only on (n, shards) — never on timing.
        let base = n / shards;
        let extra = n % shards;
        let mut it = items.into_iter();
        let chunks: Vec<Vec<T>> = (0..shards)
            .map(|i| {
                let len = base + usize::from(i < extra);
                it.by_ref().take(len).collect()
            })
            .collect();
        let run_shard = &run_shard;
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| (chunk.len(), s.spawn(move || run_shard(chunk))))
                .collect();
            let mut out = Vec::with_capacity(n);
            for (len, h) in handles {
                // Join in spawn order — the ordered reduction. With
                // `f` panics contained per item, a shard thread can
                // only die in `init()`; that still must not take the
                // other shards' results down, so the whole chunk
                // degrades to per-item `Panicked` errors instead.
                match h.join() {
                    Ok(results) => out.extend(results),
                    Err(payload) => {
                        let e = BluError::Panicked(panic_message(payload.as_ref()));
                        out.extend(std::iter::repeat_n(e, len).map(Err));
                    }
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let got = FleetEngine::run((0..1_000u64).collect(), || (), |_, x| x * 3);
        let want: Vec<u64> = (0..1_000u64).map(|x| x * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn shard_scratch_is_reused_within_a_shard() {
        // Scratch counts the items its shard has seen; every shard
        // must see a contiguous run starting at 1.
        let counts = FleetEngine::run(
            (0..64usize).collect(),
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts.len(), 64);
        assert_eq!(counts[0], 1, "first item of the first shard");
        // Counts only ever step by 1 or reset to 1 at a shard start.
        for w in counts.windows(2) {
            assert!(w[1] == w[0] + 1 || w[1] == 1);
        }
    }

    #[test]
    fn panicking_item_surfaces_as_error_and_spares_the_rest() {
        // Items 7 and 20 panic; every other item — whatever shard it
        // landed on, including the panicking items' own shards — must
        // still produce its result, in input order.
        let got = FleetEngine::run_isolated(
            (0..32u64).collect(),
            || (),
            |_, x| {
                if x == 7 || x == 20 {
                    panic!("boom on {x}");
                }
                x * 2
            },
        );
        assert_eq!(got.len(), 32);
        for (i, r) in got.iter().enumerate() {
            if i == 7 || i == 20 {
                match r {
                    Err(BluError::Panicked(msg)) => {
                        assert!(msg.contains(&format!("boom on {i}")), "{msg}");
                    }
                    other => panic!("item {i}: expected Panicked, got {other:?}"),
                }
            } else {
                assert_eq!(*r, Ok(i as u64 * 2));
            }
        }
    }

    #[test]
    fn shard_scratch_is_rebuilt_after_a_contained_panic() {
        // Every item records itself into the shard scratch *before*
        // item 5 panics mid-update. If the scratch were reused as-is,
        // the item after 5 (in 5's shard) would observe 5's residue;
        // a rebuilt scratch never contains it — and neither does any
        // other shard's, so the assertion is placement-independent.
        let got =
            FleetEngine::run_isolated((0..16usize).collect(), Vec::<usize>::new, |seen, x| {
                seen.push(x);
                if x == 5 {
                    panic!("tearing the scratch");
                }
                seen.clone()
            });
        assert!(matches!(got[5], Err(BluError::Panicked(_))));
        for (i, r) in got.iter().enumerate() {
            if i == 5 {
                continue;
            }
            let seen = r.as_ref().expect("only item 5 panicked");
            assert!(
                !seen.contains(&5),
                "item {i} saw the torn scratch: {seen:?}"
            );
            assert_eq!(*seen.last().unwrap(), i);
        }
    }

    #[test]
    fn plain_run_repanics_on_contained_panic() {
        let caught = std::panic::catch_unwind(|| {
            FleetEngine::run(
                (0..4u32).collect(),
                || (),
                |_, x| {
                    if x == 2 {
                        panic!("original payload");
                    }
                    x
                },
            )
        });
        let payload = caught.expect_err("must propagate the panic");
        let msg = crate::runtime::panic_message(payload.as_ref());
        assert!(msg.contains("original payload"), "{msg}");
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = FleetEngine::run(Vec::<u8>::new(), || (), |_, x| x);
        assert!(empty.is_empty());
        let one = FleetEngine::run(vec![7u8], || (), |_, x| x + 1);
        assert_eq!(one, vec![8]);
    }
}
