//! Sharded fleet execution with per-shard scratch state.
//!
//! [`FleetEngine`] fans a work list across a chunked
//! [`std::thread::scope`] pool using **exactly** the vendored rayon
//! shim's placement math — `min(RAYON_NUM_THREADS |
//! available_parallelism, items)` workers, balanced contiguous
//! chunks, joined in spawn order — so anything previously routed
//! through `par_iter().map(..)` produces byte-identical, input-ordered
//! results when routed through here instead.
//!
//! What the shim cannot express (and the reason this exists) is
//! *per-shard state*: each worker builds one scratch value with
//! `init()` and threads it through every item of its chunk. Callers
//! whose per-item work is allocation-heavy — batch blueprint
//! inference re-allocating residual trackers per cell — amortize
//! those allocations across the shard instead of paying them per
//! item. With `St = ()` the engine degenerates to the shim's plain
//! ordered map.

/// Number of worker shards for `n_items` items — the vendored rayon
/// shim's `threads_for`, verbatim, so placement (and therefore
/// per-shard scratch reuse boundaries) matches `par_iter` exactly.
fn shards_for(n_items: usize) -> usize {
    let hw = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    hw.min(n_items).max(1)
}

/// The sharded fleet executor. Stateless; its methods are associated
/// functions so call sites read `FleetEngine::run(..)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetEngine;

impl FleetEngine {
    /// Map `f` over `items` across balanced contiguous shards,
    /// returning results in input order. Each shard calls `init()`
    /// once and passes the resulting scratch to every `f` call of its
    /// chunk.
    ///
    /// Determinism contract: shard boundaries depend only on
    /// `(items.len(), worker count)`, shards are joined in spawn
    /// order, and a single-worker run degenerates to a plain
    /// sequential loop — so a pure, deterministic `f` yields
    /// bit-identical output at any parallelism level.
    pub fn run<T, R, St, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        I: Fn() -> St + Sync,
        F: Fn(&mut St, T) -> R + Sync,
    {
        let n = items.len();
        let shards = shards_for(n);
        if shards <= 1 {
            let mut scratch = init();
            return items.into_iter().map(|x| f(&mut scratch, x)).collect();
        }
        // Balanced contiguous chunks: sizes differ by at most one, and
        // boundaries depend only on (n, shards) — never on timing.
        let base = n / shards;
        let extra = n % shards;
        let mut it = items.into_iter();
        let chunks: Vec<Vec<T>> = (0..shards)
            .map(|i| {
                let len = base + usize::from(i < extra);
                it.by_ref().take(len).collect()
            })
            .collect();
        let init = &init;
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    s.spawn(move || {
                        let mut scratch = init();
                        chunk
                            .into_iter()
                            .map(|x| f(&mut scratch, x))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(n);
            for h in handles {
                // Join in spawn order — the ordered reduction.
                out.extend(h.join().expect("fleet shard panicked"));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let got = FleetEngine::run((0..1_000u64).collect(), || (), |_, x| x * 3);
        let want: Vec<u64> = (0..1_000u64).map(|x| x * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn shard_scratch_is_reused_within_a_shard() {
        // Scratch counts the items its shard has seen; every shard
        // must see a contiguous run starting at 1.
        let counts = FleetEngine::run(
            (0..64usize).collect(),
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts.len(), 64);
        assert_eq!(counts[0], 1, "first item of the first shard");
        // Counts only ever step by 1 or reset to 1 at a shard start.
        for w in counts.windows(2) {
            assert!(w[1] == w[0] + 1 || w[1] == 1);
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = FleetEngine::run(Vec::<u8>::new(), || (), |_, x| x);
        assert!(empty.is_empty());
        let one = FleetEngine::run(vec![7u8], || (), |_, x| x + 1);
        assert_eq!(one, vec![8]);
    }
}
