//! Struct-of-arrays hot state for the sub-frame loop.
//!
//! [`CellEngine::run_segment`](crate::engine::CellEngine::run_segment)
//! used to recompute channel gains, per-RB jitter, linear powers and
//! grant-time rates from the trace on every call, and allocated fresh
//! `Vec`s per sub-frame (delivered bits, sendable caps, observations,
//! ZF channel/power vectors). This module carves that state out into
//! [`CellHotState`]:
//!
//! * **Block caches** ([`BlockCache`]) — every PHY quantity the loop
//!   derives from CSI is constant within one coherence block
//!   (`coherence_subframes` sub-frames, 50 in the testbed captures):
//!   per-UE pilot detectability and per-(UE, RB) linear power,
//!   rate-estimation SINR and grant-time rate live in contiguous
//!   arrays recomputed once per block. Two slots form a
//!   tiny LRU because decode needs the *current* block while
//!   grant-time MCS selection needs the *grant* sub-frame's block.
//!   The cache key is the **raw** coherence quotient `sf /
//!   coherence_subframes` — the RB-jitter hash uses it unwrapped,
//!   while the CSI lookup wraps it over the stored blocks, so the raw
//!   quotient is the only key under which both are constant.
//! * **Per-sub-frame buffers** — delivered/sendable vectors, the
//!   observation pool (recycled [`RbObservation`]s via
//!   `classify_rb_into`), ZF members/powers and the
//!   [`ZfScratch`] arena, and the per-TxOP HARQ lanes.
//!
//! The hot state is *pure cache*: every array is a deterministic
//! function of `(trace, config, block)`, and the kernels that consume
//! it replay the reference implementations' float operations in the
//! same order, so engine output is bit-identical to the pre-SoA loop
//! (pinned by `tests/engine_differential.rs`). Fleet callers move the
//! state between cells through [`EngineArena`] — one arena per
//! [`FleetEngine`](crate::engine::FleetEngine) shard — so the fleet
//! path stops allocating per sub-frame; adoption invalidates the
//! block caches (they are cell-specific) but keeps every buffer's
//! capacity.

use blu_phy::harq::HarqProcess;
use blu_phy::mcs::Cqi;
use blu_phy::mimo::ZfScratch;
use blu_phy::outcome::RbObservation;
use blu_sim::clientset::ClientSet;

/// Sentinel for an unfilled [`BlockCache`] slot (no real trace
/// reaches a raw coherence quotient of `u64::MAX`).
pub(crate) const INVALID_BLOCK: u64 = u64::MAX;

/// All coherence-block-periodic PHY quantities, in SoA layout.
#[derive(Debug, Clone)]
pub(crate) struct BlockCache {
    /// Raw coherence quotient this slot holds ([`INVALID_BLOCK`] =
    /// empty).
    pub block: u64,
    /// UEs whose pilot-domain SNR (`mean_snr_db + 10·log10(gain)`)
    /// clears the detection floor this block.
    pub pilot_ok: ClientSet,
    /// Per-(UE, RB) linear received power `10^((snr+jitter)/10)` mW,
    /// row-major `[ue·n_rbs + rb]`.
    pub power_mw: Vec<f64>,
    /// Per-(UE, RB) rate-estimation SINR in dB (jittered, margin
    /// applied), row-major.
    pub est_db: Vec<f64>,
    /// Per-(UE, RB) grant-time rate at `est_db`, row-major.
    pub rate: Vec<f64>,
    /// Grant-time CQI per (UE, RB, expected stream count), layout
    /// `(ue·n_rbs + rb)·m + (s − 1)` for `s ∈ 1..=m`: the MCS chosen
    /// at `est_db + pen_db[s]`. Block-constant, so the decode loop
    /// reads one element instead of scanning the CQI table per member
    /// per sub-frame.
    pub cqi: Vec<Cqi>,
    /// Transport-block bits at the corresponding `cqi` entry, same
    /// layout.
    pub bits: Vec<f64>,
}

impl Default for BlockCache {
    fn default() -> Self {
        BlockCache {
            block: INVALID_BLOCK,
            pilot_ok: ClientSet::EMPTY,
            power_mw: Vec::new(),
            est_db: Vec::new(),
            rate: Vec::new(),
            cqi: Vec::new(),
            bits: Vec::new(),
        }
    }
}

/// In-flight HARQ processes of one TxOP burst, stored as flat
/// per-(client, RB) lanes. Replaces the historical
/// `HashMap<(usize, usize), HarqProcess>`: the key space is the dense
/// `clients × RBs` grid, so a flat `Vec<Option<_>>` gives the same
/// semantics without hashing on every decode. Cleared per TxOP.
#[derive(Debug, Clone, Default)]
pub(crate) struct HarqLanes {
    slots: Vec<Option<HarqProcess>>,
    /// Row stride (`n_rbs`).
    stride: usize,
}

impl HarqLanes {
    /// Size the grid for a cell; drops residue when the shape changes.
    pub fn ensure(&mut self, n_clients: usize, n_rbs: usize) {
        let want = n_clients * n_rbs;
        if self.stride != n_rbs || self.slots.len() != want {
            self.stride = n_rbs;
            self.slots.clear();
            self.slots.resize(want, None);
        }
    }

    /// Abandon every in-flight process (start of a TxOP burst).
    pub fn clear(&mut self) {
        for s in self.slots.iter_mut() {
            *s = None;
        }
    }

    /// The process slot of one (client, RB) pair.
    #[inline]
    pub fn slot_mut(&mut self, ue: usize, rb: usize) -> &mut Option<HarqProcess> {
        &mut self.slots[ue * self.stride + rb]
    }
}

/// Per-RB decode scratch: block caches plus every buffer the ZF/HARQ
/// path used to allocate per call.
#[derive(Debug, Clone, Default)]
pub(crate) struct RbScratch {
    /// Two-slot LRU of block caches (decode block + grant block).
    pub blocks: [BlockCache; 2],
    /// Most-recently-used slot (the *other* one is evicted on miss).
    pub mru: usize,
    /// `pen_db[s] = 10·log10(mimo_penalty(s, m).max(1e-3))` for
    /// expected stream counts `s ∈ 1..=m` (index 0 unused). Depends
    /// only on the antenna count.
    pub pen_db: Vec<f64>,
    /// Transmitting members of the RB under decode, ascending.
    pub members: Vec<usize>,
    /// Their linear receive powers (gathered from the block cache).
    pub powers: Vec<f64>,
    /// ZF matrix arena.
    pub zf: ZfScratch,
    /// ZF output SINRs.
    pub zf_out: Vec<f64>,
    /// Per-member decode results before classification.
    pub results: Vec<(usize, Option<f64>)>,
    /// In-flight HARQ processes of the current TxOP burst.
    pub harq: HarqLanes,
}

impl RbScratch {
    /// Make sure the ZF-penalty LUT matches the antenna count.
    pub fn ensure_pen_db(&mut self, m: usize) {
        if self.pen_db.len() == m + 1 {
            return;
        }
        self.pen_db.clear();
        self.pen_db.push(0.0); // s = 0: never granted
        for s in 1..=m {
            let pen = crate::sched::mimo_penalty(s, m).max(1e-3);
            self.pen_db.push(10.0 * pen.log10());
        }
    }
}

/// The sub-frame loop's entire mutable scratch, SoA-organized. Owned
/// by a [`CellEngine`](crate::engine::CellEngine); moved between
/// cells via [`EngineArena`].
#[derive(Debug, Clone, Default)]
pub(crate) struct CellHotState {
    /// Per-RB decode scratch (block caches, ZF arena, HARQ lanes).
    pub rb: RbScratch,
    /// Per-UE bits delivered this sub-frame.
    pub delivered: Vec<f64>,
    /// Per-UE queue-capped deliverable bits this sub-frame.
    pub sendable: Vec<f64>,
    /// Recycled observation pool; `observations[..n_obs]` is the
    /// current sub-frame's output.
    pub observations: Vec<RbObservation>,
    /// Observations live this sub-frame.
    pub n_obs: usize,
}

impl CellHotState {
    /// Drop all cell-specific cached values (block caches, penalty
    /// LUT, HARQ residue) while keeping every buffer's capacity.
    /// Called when the state moves to a different cell.
    pub fn invalidate(&mut self) {
        for b in &mut self.rb.blocks {
            b.block = INVALID_BLOCK;
        }
        self.rb.pen_db.clear();
        self.rb.harq.clear();
        self.n_obs = 0;
    }

    /// Grow the observation pool by one empty slot if needed and
    /// return the index of the next free slot.
    pub fn next_obs_index(&mut self) -> usize {
        if self.n_obs == self.observations.len() {
            self.observations.push(RbObservation {
                scheduled: ClientSet::EMPTY,
                outcomes: Vec::new(),
            });
        }
        let i = self.n_obs;
        self.n_obs += 1;
        i
    }
}

/// Per-shard engine scratch for fleet runs: one arena per
/// [`FleetEngine`](crate::engine::FleetEngine) shard keeps the SoA
/// hot state alive across the cells the shard processes, so steady
/// state allocates nothing per sub-frame. Adopting an arena into an
/// engine invalidates the block caches (they belong to the previous
/// cell) but keeps the capacity of every buffer.
#[derive(Debug, Default)]
pub struct EngineArena {
    pub(crate) hot: CellHotState,
}

impl EngineArena {
    /// Fresh, empty arena.
    pub fn new() -> Self {
        EngineArena::default()
    }
}
