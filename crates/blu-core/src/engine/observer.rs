//! Zero-cost per-subframe observation hooks.
//!
//! [`SubframeObserver`] is the engine's telemetry seam: every hook
//! has a no-op default body, the engine is generic over the observer
//! type, and the null observer monomorphizes to nothing — callers
//! that do not observe pay nothing. Callers that do observe get a
//! strictly ordered stream of engine events: stage entries, TxOP
//! grants, decoded sub-frames, inference verdicts and state changes.
//!
//! The hooks are deliberately *read-mostly*: an observer may carry
//! mutable state of its own (the robust loop's fault tap feeds an
//! estimator and a drift monitor), but nothing an observer does can
//! change what the engine computes — the engine never reads observer
//! state. That one-way contract is what lets the differential tests
//! pin the engine bit-identical with and without observers attached.

use crate::blueprint::fleetcache::FleetCacheEvent;
use crate::blueprint::infer::InferenceVerdict;
use crate::engine::context::OrchestratorState;
use crate::engine::stages::StageKind;
use blu_phy::outcome::RbObservation;
use blu_sim::time::SubframeIndex;

/// One decoded UL sub-frame, as seen by an observer.
#[derive(Debug)]
pub struct SubframeView<'a> {
    /// Absolute trace sub-frame index.
    pub sf: SubframeIndex,
    /// Per-RB observations of this sub-frame (scheduled RBs only).
    pub observations: &'a [RbObservation],
    /// Bits credited to each client this sub-frame.
    pub delivered: &'a [f64],
}

/// One streaming-pipeline event, fired through
/// [`SubframeObserver::on_stream`] by the streaming arm of the
/// robust orchestrator. The variants mirror the `blu_stream_*`
/// Prometheus counters the daemon exports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamEvent {
    /// An incremental refine ran against the observation window.
    /// `installed` is whether its blueprint passed the confidence
    /// gate and replaced the serving blueprint.
    Refine {
        /// Whether the refined blueprint was installed.
        installed: bool,
    },
    /// The drift-monitor fallback arm tripped: a full §3.7
    /// re-measurement was scheduled despite streaming refines.
    FallbackRemeasure,
    /// Churn-driven topology events crossed during the last segment
    /// were applied to the cell's books.
    ChurnApplied {
        /// Topology events applied.
        count: u64,
    },
    /// Window occupancy after the last segment's ingest.
    WindowOccupancy {
        /// Retained sub-frames.
        occupied: u64,
        /// Ring capacity.
        capacity: u64,
    },
}

/// Observer of the engine's per-subframe sequencing. Every hook
/// defaults to a no-op, so implementors override only what they tap.
pub trait SubframeObserver {
    /// A pipeline stage is about to run.
    fn on_stage(&mut self, _kind: StageKind) {}

    /// A TxOP's grant went out (`grant_sf` is the grant sub-frame).
    fn on_txop_start(&mut self, _txop: u64, _grant_sf: SubframeIndex) {}

    /// One UL sub-frame was decoded.
    fn on_subframe(&mut self, _view: &SubframeView<'_>) {}

    /// An inference attempt finished (`completed = false` means the
    /// deadline budget ran out — a best-so-far blueprint).
    fn on_infer(&mut self, _verdict: InferenceVerdict, _completed: bool) {}

    /// The fleet blueprint cache resolved an inference lookup (only
    /// fired when a cache handle is attached to the cell context).
    fn on_fleet_cache(&mut self, _event: FleetCacheEvent) {}

    /// The cell's state machine entered a new state.
    fn on_state_change(&mut self, _at_subframe: u64, _state: OrchestratorState) {}

    /// A streaming-pipeline event (only fired when the robust loop
    /// runs with streaming enabled).
    fn on_stream(&mut self, _event: StreamEvent) {}
}

/// The do-nothing observer: the default for callers that only want
/// the report.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SubframeObserver for NullObserver {}

/// Watchdog heartbeat source: counts engine events as liveness beats.
///
/// The fleet supervisor taps one of these into each cell's stage
/// pipeline per step; a step that produces zero beats did no engine
/// work (no stage entered, no sub-frame decoded, no inference ran)
/// and counts as a *silent* step toward the stall watchdog. The
/// counter is read-only telemetry — per the module contract it never
/// feeds back into what the engine computes.
#[derive(Debug, Default, Clone, Copy)]
pub struct HeartbeatCounter {
    beats: u64,
}

impl HeartbeatCounter {
    /// Beats accumulated since construction (or the last
    /// [`Self::reset`]).
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Zero the counter (one watchdog window per supervised step).
    pub fn reset(&mut self) {
        self.beats = 0;
    }
}

impl SubframeObserver for HeartbeatCounter {
    fn on_stage(&mut self, _kind: StageKind) {
        self.beats += 1;
    }
    fn on_subframe(&mut self, _view: &SubframeView<'_>) {
        self.beats += 1;
    }
    fn on_infer(&mut self, _verdict: InferenceVerdict, _completed: bool) {
        self.beats += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        stages: usize,
        txops: usize,
        subframes: usize,
    }

    impl SubframeObserver for Counter {
        fn on_stage(&mut self, _kind: StageKind) {
            self.stages += 1;
        }
        fn on_txop_start(&mut self, _txop: u64, _sf: SubframeIndex) {
            self.txops += 1;
        }
        fn on_subframe(&mut self, _view: &SubframeView<'_>) {
            self.subframes += 1;
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        // Compiles and runs: the trait is object-safe and the null
        // observer can be driven through a dyn reference.
        let mut null = NullObserver;
        let obs: &mut dyn SubframeObserver = &mut null;
        obs.on_stage(StageKind::Measure);
        obs.on_txop_start(0, SubframeIndex(0));
    }

    #[test]
    fn custom_observer_receives_events() {
        let mut c = Counter::default();
        c.on_stage(StageKind::Transmit);
        c.on_txop_start(3, SubframeIndex(12));
        assert_eq!((c.stages, c.txops, c.subframes), (1, 1, 0));
    }
}
