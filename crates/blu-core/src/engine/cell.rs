//! The per-cell sub-frame engine.
//!
//! [`CellEngine`] owns the paper's per-subframe sequencing — CCA from
//! the access trace, grant construction, DMRS pilot classification,
//! ZF (or NOMA-SIC) decode, HARQ soft-combining, and the PF/estimator
//! update — exactly once. The former `Emulator::run` and
//! `Emulator::run_contended` loops are the **same loop** here,
//! parameterized by [`AccessMode`]: back-to-back TxOPs replay the
//! trace directly, while contended TxOPs win the channel through
//! Cat-4 LBT first and follow the wall clock. Every sub-frame is also
//! streamed to a [`SubframeObserver`], which is how the robust
//! orchestrator taps the engine for estimator feeding and drift
//! detection without owning a loop of its own.
//!
//! The engine borrows its [`EmulationConfig`] (via [`Cow`]) so
//! segmented callers — the robust loop runs hundreds of short
//! segments per trace — never clone the config on the hot path.

use crate::emulator::{EmulationConfig, EmulationReport, TrafficModel};
use crate::engine::observer::{SubframeObserver, SubframeView};
use crate::error::BluError;
use crate::measure::OutcomeEstimator;
use crate::metrics::UplinkMetrics;
use crate::sched::{mimo_penalty, MatrixRates, PfAverager, SchedInput, UlScheduler};
use blu_phy::laa::{Lbt, LbtConfig};
use blu_phy::mcs::{Cqi, McsTable};
use blu_phy::mimo::zf_sinrs;
use blu_phy::outcome::{classify_rb, DecodeOutcome, RbObservation};
use blu_sim::clientset::ClientSet;
use blu_sim::medium::ActivityTimeline;
use blu_sim::power::Db;
use blu_sim::rng::DetRng;
use blu_sim::time::{Micros, SubframeIndex, SUBFRAME_US};
use blu_traces::schema::TestbedTrace;
use std::borrow::Cow;
use std::collections::HashMap;

/// In-flight HARQ processes of one TxOP burst, keyed by (client, RB).
pub(crate) type HarqState = HashMap<(usize, usize), blu_phy::harq::HarqProcess>;

/// How the engine acquires TxOPs for a segment.
pub enum AccessMode<'m> {
    /// Idealized back-to-back TxOPs: the trace is replayed directly
    /// and traffic/HARQ/finite-buffer coupling are active.
    BackToBack,
    /// Cat-4 listen-before-talk against the union activity of the
    /// WiFi nodes the eNB can sense. Sub-frame indices follow the
    /// wall clock, so throughput is honest per wall-clock second.
    Contended {
        /// Sensed neighbour activity the eNB defers to.
        busy: &'m ActivityTimeline,
        /// Contention RNG (backoff draws).
        lbt_rng: DetRng,
    },
}

/// Deterministic per-(client, RB, block) frequency-selectivity jitter
/// in dB, zero-mean uniform in ±`amp`.
fn rb_jitter(seed: u64, ue: usize, rb: usize, block: u64, amp: f64) -> f64 {
    if amp == 0.0 {
        return 0.0;
    }
    let key = (ue as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((rb as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(block.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(seed);
    let mut rng = DetRng::seed_from_u64(key);
    rng.range_f64(-amp, amp)
}

/// The per-cell sub-frame engine: owns PF state and drives a
/// scheduler over a trace segment.
pub struct CellEngine<'a> {
    trace: &'a TestbedTrace,
    config: Cow<'a, EmulationConfig>,
    /// TxOPs this segment runs (defaults to `config.n_txops`).
    n_txops: u64,
    /// Trace sub-frame the segment starts at (defaults to
    /// `config.start_subframe`).
    start_subframe: u64,
    mcs: McsTable,
    averager: PfAverager,
    /// Per-client buffered bits (finite-buffer mode only).
    queues: Vec<f64>,
    /// Arrival RNG (finite-buffer mode only).
    traffic_rng: DetRng,
}

impl<'a> CellEngine<'a> {
    /// Create an engine that owns its config; validates the trace
    /// against the cell.
    pub fn new(trace: &'a TestbedTrace, config: EmulationConfig) -> Result<Self, BluError> {
        Self::build(trace, Cow::Owned(config))
    }

    /// Create an engine that **borrows** its config — the zero-clone
    /// constructor for segmented callers.
    pub fn with_config(
        trace: &'a TestbedTrace,
        config: &'a EmulationConfig,
    ) -> Result<Self, BluError> {
        Self::build(trace, Cow::Borrowed(config))
    }

    fn build(trace: &'a TestbedTrace, config: Cow<'a, EmulationConfig>) -> Result<Self, BluError> {
        trace.validate().map_err(BluError::InvalidTrace)?;
        config.cell.validate()?;
        if trace.csi.n_antennas < config.cell.m_antennas {
            return Err(BluError::InvalidConfig(format!(
                "trace CSI has {} antennas but the cell needs {}",
                trace.csi.n_antennas, config.cell.m_antennas
            )));
        }
        let n = trace.ground_truth.n_clients;
        Ok(CellEngine {
            trace,
            averager: PfAverager::new(n, config.pf_alpha),
            mcs: McsTable::release10(),
            queues: vec![0.0; n],
            traffic_rng: DetRng::seed_from_u64(config.seed ^ 0x007A_FF1C),
            n_txops: config.n_txops,
            start_subframe: config.start_subframe,
            config,
        })
    }

    /// Override the segment window (TxOP count and starting
    /// sub-frame) without touching the shared config.
    pub fn segment(mut self, n_txops: u64, start_subframe: u64) -> Self {
        self.n_txops = n_txops;
        self.start_subframe = start_subframe;
        self
    }

    /// The PF throughput averages accumulated so far (one per
    /// client).
    pub fn pf_averages(&self) -> &[f64] {
        &self.averager.avg
    }

    /// Seed the PF averages — used by segmented runs to carry
    /// fairness state from one segment into the next. Ignores a slice
    /// of the wrong length.
    pub fn seed_pf_averages(&mut self, avg: &[f64]) {
        if avg.len() == self.averager.avg.len() {
            self.averager.avg.copy_from_slice(avg);
        }
    }

    /// Advance the traffic model by one sub-frame (1 ms): new arrivals
    /// land in the queues. No-op when backlogged.
    fn traffic_tick(&mut self) {
        if let TrafficModel::Poisson {
            bursts_per_sec,
            burst_bits,
        } = self.config.traffic
        {
            let p_arrival = (bursts_per_sec / 1_000.0).min(1.0);
            for q in self.queues.iter_mut() {
                if self.traffic_rng.chance(p_arrival) {
                    *q += burst_bits;
                }
            }
        }
    }

    /// Whether a client currently has data to send.
    fn has_data(&self, ue: usize) -> bool {
        matches!(self.config.traffic, TrafficModel::Backlogged) || self.queues[ue] > 0.0
    }

    /// Drain a client's queue by delivered bits.
    fn drain(&mut self, ue: usize, bits: f64) {
        if !matches!(self.config.traffic, TrafficModel::Backlogged) {
            self.queues[ue] = (self.queues[ue] - bits).max(0.0);
        }
    }

    /// Scalar channel power gain of a client at a sub-frame (average
    /// over the eNB antennas, mean ≈ 1).
    fn channel_gain(&self, ue: usize, sf: SubframeIndex) -> f64 {
        let h = self.trace.csi.channel(ue, sf);
        let m = self.config.cell.m_antennas;
        h.iter().take(m).map(|c| c.norm_sq()).sum::<f64>() / m as f64
    }

    /// True single-stream SINR (dB) of a client on an RB at a
    /// sub-frame.
    fn true_sinr_db(&self, ue: usize, rb: usize, sf: SubframeIndex) -> f64 {
        let block = sf.0 / self.trace.csi.coherence_subframes;
        self.trace.mean_snr_db[ue]
            + 10.0 * self.channel_gain(ue, sf).max(1e-9).log10()
            + rb_jitter(self.config.seed, ue, rb, block, self.config.rb_jitter_db)
    }

    /// Build the scheduler's grant-time rate matrix at a sub-frame.
    /// Clients with empty buffers get rate 0 (footnote-1 coupling:
    /// the scheduler simply never grants them).
    fn rate_matrix(&self, sf: SubframeIndex) -> MatrixRates {
        let n = self.trace.ground_truth.n_clients;
        let n_rbs = self.config.cell.numerology.n_rbs;
        MatrixRates::build(n, n_rbs, |ue, rb| {
            if !self.has_data(ue) {
                return 0.0;
            }
            let est = self.true_sinr_db(ue, rb, sf) - self.config.mcs_margin_db;
            self.mcs
                .rate_for_sinr(Db(est), &self.config.cell.numerology)
        })
    }

    /// Grant-time MCS for a client on an RB given the group size the
    /// scheduler built (applies the expected ZF penalty).
    fn grant_cqi(&self, ue: usize, rb: usize, sf: SubframeIndex, group_size: usize) -> Cqi {
        let m = self.config.cell.m_antennas;
        let expected_streams = group_size.min(m);
        let pen = mimo_penalty(expected_streams, m).max(1e-3);
        let est = self.true_sinr_db(ue, rb, sf) - self.config.mcs_margin_db + 10.0 * pen.log10();
        self.mcs.cqi_for_sinr(Db(est))
    }

    /// Decode one RB at one sub-frame: who transmitted, ZF SINRs,
    /// per-client outcomes. `harq` holds the burst's in-flight
    /// processes keyed by (client, RB); pass `None` to disable.
    fn decode_rb(
        &self,
        rb: usize,
        sf: SubframeIndex,
        group: ClientSet,
        accessible: ClientSet,
        grant_sf: SubframeIndex,
        mut harq: Option<&mut HarqState>,
    ) -> RbObservation {
        let m = self.config.cell.m_antennas;
        // The cyclic-shift budget must accommodate the whole group
        // (guaranteed by CellConfig::validate's f·M ≤ 8 cap).
        debug_assert!(
            blu_phy::pilot::PilotAssignment::for_group(group).is_some(),
            "group exceeds orthogonal pilot budget"
        );
        let transmitting = group.intersection(accessible);
        // DMRS pilot detection: cyclic shifts keep over-scheduled
        // pilots orthogonal, so each pilot's SINR is its single-stream
        // SNR (no inter-stream interference); detection fails only in
        // a very deep fade (below the −10 dB correlation floor).
        let pilots = blu_phy::pilot::detect_pilots(transmitting, |ue| {
            Db(self.trace.mean_snr_db[ue] + 10.0 * self.channel_gain(ue, sf).max(1e-9).log10())
        });
        let transmitting = pilots.detected;
        if transmitting.len() > m {
            // SISO NOMA: a 2-stream pile-up may still be separable by
            // successive interference cancellation.
            if self.config.noma_sic && m == 1 && transmitting.len() == 2 {
                return self.decode_rb_noma(rb, sf, group, transmitting, grant_sf);
            }
            return classify_rb(group, transmitting, m, |_| None);
        }
        // Zero-forcing decode of ≤ M streams.
        let members: Vec<usize> = transmitting.iter().collect();
        let block = sf.0 / self.trace.csi.coherence_subframes;
        let channels: Vec<Vec<blu_sim::fading::Complex>> = members
            .iter()
            .map(|&ue| self.trace.csi.channel(ue, sf)[..m].to_vec())
            .collect();
        let powers: Vec<f64> = members
            .iter()
            .map(|&ue| {
                let jit = rb_jitter(self.config.seed, ue, rb, block, self.config.rb_jitter_db);
                10f64.powf((self.trace.mean_snr_db[ue] + jit) / 10.0)
            })
            .collect();
        let sinrs = zf_sinrs(&channels, &powers, 1.0);
        let group_size = group.len();
        // Pre-compute per-transmitter decode results (HARQ mutates
        // state, so this cannot live in the classify closure).
        let mut results: Vec<(usize, Option<f64>)> = Vec::with_capacity(members.len());
        for (idx, &ue) in members.iter().enumerate() {
            let cqi = self.grant_cqi(ue, rb, grant_sf, group_size);
            let realized_linear = match &sinrs {
                Some(s) => s[idx].max(0.0),
                None => 0.0, // rank-deficient channel: no usable energy
            };
            let bits = self.mcs.bits_per_rb(cqi, &self.config.cell.numerology);
            let decoded = if !cqi.is_usable() {
                false
            } else if self
                .mcs
                .decodes(cqi, Db(10.0 * realized_linear.max(1e-12).log10()))
            {
                // Clean first-shot decode; drop any stale process.
                if let Some(h) = harq.as_deref_mut() {
                    h.remove(&(ue, rb));
                }
                true
            } else if let Some(h) = harq.as_deref_mut() {
                // Fading loss: soft-combine with the burst's pending
                // process (or open one).
                use blu_phy::harq::{HarqOutcome, HarqProcess};
                match h.get_mut(&(ue, rb)) {
                    Some(p) => match p.receive_retransmission(realized_linear, &self.mcs) {
                        HarqOutcome::Decoded => {
                            h.remove(&(ue, rb));
                            true
                        }
                        HarqOutcome::Exhausted => {
                            h.remove(&(ue, rb));
                            false
                        }
                        HarqOutcome::Pending => false,
                    },
                    None => {
                        h.insert(
                            (ue, rb),
                            HarqProcess::new(cqi, realized_linear, self.config.harq_max_retx),
                        );
                        false
                    }
                }
            } else {
                false // fading loss, HARQ disabled
            };
            results.push((ue, if decoded { Some(bits) } else { None }));
        }
        classify_rb(group, transmitting, m, |ue| {
            results
                .iter()
                .find(|&&(u, _)| u == ue)
                .and_then(|&(_, r)| r)
        })
    }

    /// SIC decode of exactly two superposed SISO streams: outcomes are
    /// `Success` for decoded streams and `Collision` for the rest.
    fn decode_rb_noma(
        &self,
        rb: usize,
        sf: SubframeIndex,
        group: ClientSet,
        transmitting: ClientSet,
        grant_sf: SubframeIndex,
    ) -> RbObservation {
        let members: Vec<usize> = transmitting.iter().collect();
        let block = sf.0 / self.trace.csi.coherence_subframes;
        let powers: Vec<f64> = members
            .iter()
            .map(|&ue| {
                let jit = rb_jitter(self.config.seed, ue, rb, block, self.config.rb_jitter_db);
                10f64.powf((self.trace.mean_snr_db[ue] + jit) / 10.0)
                    * self.channel_gain(ue, sf).max(1e-9)
            })
            .collect();
        let group_size = group.len();
        let decoded = blu_phy::noma::sic_decode(&powers, 1.0, |idx, sinr| {
            let ue = members[idx];
            let cqi = self.grant_cqi(ue, rb, grant_sf, group_size);
            cqi.is_usable() && self.mcs.decodes(cqi, Db(10.0 * sinr.max(1e-12).log10()))
        });
        let outcomes = group
            .iter()
            .map(|ue| {
                let outcome = if !transmitting.contains(ue) {
                    DecodeOutcome::Blocked
                } else if let Some(idx) = members.iter().position(|&u| u == ue) {
                    if decoded.contains(&idx) {
                        let cqi = self.grant_cqi(ue, rb, grant_sf, group_size);
                        DecodeOutcome::Success {
                            bits: self.mcs.bits_per_rb(cqi, &self.config.cell.numerology),
                        }
                    } else {
                        DecodeOutcome::Collision
                    }
                } else {
                    DecodeOutcome::Collision
                };
                (ue, outcome)
            })
            .collect();
        RbObservation {
            scheduled: group,
            outcomes,
        }
    }

    /// Run one segment of the cell's sub-frame loop: CCA → grant →
    /// pilot classification → ZF decode → PF/estimator update, for
    /// `n_txops` TxOPs.
    ///
    /// `estimator`, when provided, receives every sub-frame's
    /// observations (how the orchestrator keeps measuring during the
    /// speculative phase). `observer` is called once per stage event;
    /// pass [`NullObserver`](crate::engine::NullObserver) to observe
    /// nothing at zero cost.
    ///
    /// The [`AccessMode`] branches preserve the historical loop
    /// semantics exactly: finite-buffer traffic arrivals, HARQ
    /// soft-combining, queue-capped transport blocks, full-utilization
    /// accounting and queue draining are back-to-back concerns, while
    /// the contended mode charges LBT waits to the wall clock and
    /// credits raw decoded bits.
    pub fn run_segment<O: SubframeObserver + ?Sized>(
        &mut self,
        scheduler: &mut dyn UlScheduler,
        mut estimator: Option<&mut OutcomeEstimator>,
        mode: AccessMode<'_>,
        observer: &mut O,
    ) -> EmulationReport {
        let n = self.trace.ground_truth.n_clients;
        let n_rbs = self.config.cell.numerology.n_rbs;
        let mut metrics = UplinkMetrics::new(n);
        let mut lbt_state = match mode {
            AccessMode::Contended { busy, lbt_rng } => {
                Some((Lbt::new(LbtConfig::default(), lbt_rng), busy))
            }
            AccessMode::BackToBack => None,
        };
        let contended = lbt_state.is_some();
        let mut now = Micros::ZERO;
        let mut sf = SubframeIndex(self.start_subframe);
        for txop in 0..self.n_txops {
            if let Some((lbt, busy)) = lbt_state.as_mut() {
                // Win the channel, then align to the next sub-frame
                // boundary (LTE transmissions start on boundaries; the
                // reservation-signal gap is charged to the TxOP).
                let acquired = lbt.acquire(busy, now);
                sf = SubframeIndex(acquired.as_u64().div_ceil(SUBFRAME_US));
            } else {
                // DL part of the TxOP (grants go out here); traffic
                // keeps arriving while the eNB transmits.
                for _ in 0..self.config.cell.txop.dl_subframes {
                    self.traffic_tick();
                }
            }
            sf = sf.advance(self.config.cell.txop.dl_subframes);
            let grant_sf = sf;
            observer.on_txop_start(txop, grant_sf);
            // One schedule per TxOP, reused over the UL burst (the
            // paper's 3-sub-frame grants).
            let rates = self.rate_matrix(grant_sf);
            let input = SchedInput {
                n_clients: n,
                n_rbs,
                m_antennas: self.config.cell.m_antennas,
                k_max: self.config.cell.max_ues_per_subframe,
                max_group: self.config.cell.max_group_size(),
                rates: &rates,
                avg_tput: &self.averager.avg,
            };
            let schedule = scheduler.schedule(&input);
            let mut harq: Option<HarqState> = if !contended && self.config.harq_max_retx > 0 {
                Some(HashMap::new())
            } else {
                None
            };
            for _ in 0..self.config.cell.txop.ul_subframes {
                if !contended {
                    self.traffic_tick();
                }
                let accessible = self.trace.access.at(sf);
                let mut delivered = vec![0.0; n];
                // Transport blocks only carry real payload: cap each
                // client's deliverable bits at its queue contents
                // (backlogged mode: unlimited). Contended runs credit
                // raw decoded bits and skip the finite-buffer cap.
                let mut sendable: Vec<f64> = if contended {
                    Vec::new()
                } else {
                    (0..n)
                        .map(|ue| {
                            if matches!(self.config.traffic, TrafficModel::Backlogged) {
                                f64::INFINITY
                            } else {
                                self.queues[ue]
                            }
                        })
                        .collect()
                };
                let mut observations = Vec::with_capacity(n_rbs);
                let mut all_rbs_utilized = true;
                for rb in 0..n_rbs {
                    let group = schedule.group(rb);
                    if group.is_empty() {
                        all_rbs_utilized = false;
                        continue;
                    }
                    metrics.rbs_scheduled += 1;
                    let obs = self.decode_rb(rb, sf, group, accessible, grant_sf, harq.as_mut());
                    let bits = obs.delivered_bits();
                    if bits > 0.0 {
                        metrics.rbs_utilized += 1;
                    } else {
                        all_rbs_utilized = false;
                        if obs.collided() {
                            metrics.rbs_collided += 1;
                        } else if obs.transmitters().is_empty() {
                            metrics.rbs_blocked += 1;
                        } else {
                            metrics.rbs_faded += 1;
                        }
                    }
                    if contended {
                        for &(ue, outcome) in &obs.outcomes {
                            if let DecodeOutcome::Success { bits } = outcome {
                                delivered[ue] += bits;
                                metrics.bits_per_client[ue] += bits;
                            }
                        }
                        metrics.bits_delivered += bits;
                    } else {
                        let mut credited_on_rb = 0.0;
                        for &(ue, outcome) in &obs.outcomes {
                            if let DecodeOutcome::Success { bits } = outcome {
                                let credited = bits.min(sendable[ue]);
                                sendable[ue] -= credited;
                                delivered[ue] += credited;
                                metrics.bits_per_client[ue] += credited;
                                credited_on_rb += credited;
                            }
                        }
                        metrics.bits_delivered += credited_on_rb;
                    }
                    observations.push(obs);
                }
                metrics.subframes += 1;
                if !contended && all_rbs_utilized && !observations.is_empty() {
                    metrics.fully_utilized_subframes += 1;
                }
                if let Some(est) = estimator.as_deref_mut() {
                    est.record_subframe(&observations);
                }
                observer.on_subframe(&SubframeView {
                    sf,
                    observations: &observations,
                    delivered: &delivered,
                });
                if !contended {
                    for (ue, &bits) in delivered.iter().enumerate() {
                        if bits > 0.0 {
                            self.drain(ue, bits);
                        }
                    }
                }
                self.averager.update(&delivered);
                sf = sf.next();
            }
            if let Some((lbt, _)) = lbt_state.as_mut() {
                now = sf.start();
                lbt.reset_cw();
            }
        }
        EmulationReport {
            scheduler: scheduler.name(),
            metrics,
            wall_clock: contended.then_some(now),
        }
    }
}
