//! The per-cell sub-frame engine.
//!
//! [`CellEngine`] owns the paper's per-subframe sequencing — CCA from
//! the access trace, grant construction, DMRS pilot classification,
//! ZF (or NOMA-SIC) decode, HARQ soft-combining, and the PF/estimator
//! update — exactly once. The former `Emulator::run` and
//! `Emulator::run_contended` loops are the **same loop** here,
//! parameterized by [`AccessMode`]: back-to-back TxOPs replay the
//! trace directly, while contended TxOPs win the channel through
//! Cat-4 LBT first and follow the wall clock. Every sub-frame is also
//! streamed to a [`SubframeObserver`], which is how the robust
//! orchestrator taps the engine for estimator feeding and drift
//! detection without owning a loop of its own.
//!
//! The engine borrows its [`EmulationConfig`] (via [`Cow`]) so
//! segmented callers — the robust loop runs hundreds of short
//! segments per trace — never clone the config on the hot path.

use crate::emulator::{EmulationConfig, EmulationReport, TrafficModel};
use crate::engine::hot::{BlockCache, CellHotState, EngineArena, RbScratch};
use crate::engine::observer::{SubframeObserver, SubframeView};
use crate::error::BluError;
use crate::measure::OutcomeEstimator;
use crate::metrics::UplinkMetrics;
use crate::sched::{mimo_penalty, MatrixRates, PfAverager, SchedInput, UlScheduler};
use blu_phy::laa::{Lbt, LbtConfig};
use blu_phy::mcs::{Cqi, McsTable};
use blu_phy::mimo::zf_sinrs_into;
use blu_phy::outcome::{classify_rb_into, DecodeOutcome, RbObservation};
use blu_sim::clientset::ClientSet;
use blu_sim::medium::ActivityTimeline;
use blu_sim::power::Db;
use blu_sim::rng::DetRng;
use blu_sim::time::{Micros, SubframeIndex, SUBFRAME_US};
use blu_traces::schema::TestbedTrace;
use std::borrow::Cow;

/// How the engine acquires TxOPs for a segment.
pub enum AccessMode<'m> {
    /// Idealized back-to-back TxOPs: the trace is replayed directly
    /// and traffic/HARQ/finite-buffer coupling are active.
    BackToBack,
    /// Cat-4 listen-before-talk against the union activity of the
    /// WiFi nodes the eNB can sense. Sub-frame indices follow the
    /// wall clock, so throughput is honest per wall-clock second.
    Contended {
        /// Sensed neighbour activity the eNB defers to.
        busy: &'m ActivityTimeline,
        /// Contention RNG (backoff draws).
        lbt_rng: DetRng,
    },
}

/// Deterministic per-(client, RB, block) frequency-selectivity jitter
/// in dB, zero-mean uniform in ±`amp`.
fn rb_jitter(seed: u64, ue: usize, rb: usize, block: u64, amp: f64) -> f64 {
    if amp == 0.0 {
        return 0.0;
    }
    let key = (ue as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((rb as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(block.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(seed);
    let mut rng = DetRng::seed_from_u64(key);
    rng.range_f64(-amp, amp)
}

/// The per-cell sub-frame engine: owns PF state and drives a
/// scheduler over a trace segment.
pub struct CellEngine<'a> {
    trace: &'a TestbedTrace,
    config: Cow<'a, EmulationConfig>,
    /// TxOPs this segment runs (defaults to `config.n_txops`).
    n_txops: u64,
    /// Trace sub-frame the segment starts at (defaults to
    /// `config.start_subframe`).
    start_subframe: u64,
    mcs: McsTable,
    /// Per-CQI decode floors in linear SINR, exact against `decodes`
    /// fed the `10·log10(max(·, 1e-12))` conversion (see
    /// [`McsTable::linear_decode_floors`]) — the hot decode compares
    /// in the linear domain and skips a `log10` per member.
    dec_floor_mw: Vec<f64>,
    averager: PfAverager,
    /// Per-client buffered bits (finite-buffer mode only).
    queues: Vec<f64>,
    /// Arrival RNG (finite-buffer mode only).
    traffic_rng: DetRng,
    /// SoA hot state: coherence-block caches and every per-subframe
    /// buffer the loop recycles (see [`crate::engine::hot`]).
    hot: CellHotState,
}

impl<'a> CellEngine<'a> {
    /// Create an engine that owns its config; validates the trace
    /// against the cell.
    pub fn new(trace: &'a TestbedTrace, config: EmulationConfig) -> Result<Self, BluError> {
        Self::build(trace, Cow::Owned(config))
    }

    /// Create an engine that **borrows** its config — the zero-clone
    /// constructor for segmented callers.
    pub fn with_config(
        trace: &'a TestbedTrace,
        config: &'a EmulationConfig,
    ) -> Result<Self, BluError> {
        Self::build(trace, Cow::Borrowed(config))
    }

    fn build(trace: &'a TestbedTrace, config: Cow<'a, EmulationConfig>) -> Result<Self, BluError> {
        trace.validate().map_err(BluError::InvalidTrace)?;
        config.cell.validate()?;
        if trace.csi.n_antennas < config.cell.m_antennas {
            return Err(BluError::InvalidConfig(format!(
                "trace CSI has {} antennas but the cell needs {}",
                trace.csi.n_antennas, config.cell.m_antennas
            )));
        }
        let n = trace.ground_truth.n_clients;
        let mcs = McsTable::release10();
        let dec_floor_mw = mcs.linear_decode_floors();
        Ok(CellEngine {
            trace,
            averager: PfAverager::new(n, config.pf_alpha),
            mcs,
            dec_floor_mw,
            queues: vec![0.0; n],
            traffic_rng: DetRng::seed_from_u64(config.seed ^ 0x007A_FF1C),
            n_txops: config.n_txops,
            start_subframe: config.start_subframe,
            hot: CellHotState::default(),
            config,
        })
    }

    /// Install hot-state buffers recycled from a fleet arena. The
    /// block caches are invalidated (they belong to whatever cell used
    /// the arena last) but every buffer keeps its capacity.
    pub(crate) fn adopt_hot(&mut self, mut hot: CellHotState) {
        hot.invalidate();
        self.hot = hot;
    }

    /// Hand the hot-state buffers back (to be returned to an arena).
    pub(crate) fn take_hot(&mut self) -> CellHotState {
        std::mem::take(&mut self.hot)
    }

    /// Adopt the recycled hot-state buffers of a fleet shard's
    /// [`EngineArena`]: the arena is emptied into this engine, block
    /// caches invalidated (they belong to whatever cell ran last),
    /// buffer capacities kept. Pair with
    /// [`CellEngine::yield_arena`] after the segment so the next cell
    /// on the shard inherits the buffers.
    pub fn adopt_arena(&mut self, arena: &mut EngineArena) {
        self.adopt_hot(std::mem::take(&mut arena.hot));
    }

    /// Return the hot-state buffers to a fleet shard's arena.
    pub fn yield_arena(&mut self, arena: &mut EngineArena) {
        arena.hot = self.take_hot();
    }

    /// Override the segment window (TxOP count and starting
    /// sub-frame) without touching the shared config.
    pub fn segment(mut self, n_txops: u64, start_subframe: u64) -> Self {
        self.n_txops = n_txops;
        self.start_subframe = start_subframe;
        self
    }

    /// The PF throughput averages accumulated so far (one per
    /// client).
    pub fn pf_averages(&self) -> &[f64] {
        &self.averager.avg
    }

    /// Seed the PF averages — used by segmented runs to carry
    /// fairness state from one segment into the next. Ignores a slice
    /// of the wrong length.
    pub fn seed_pf_averages(&mut self, avg: &[f64]) {
        if avg.len() == self.averager.avg.len() {
            self.averager.avg.copy_from_slice(avg);
        }
    }

    /// Advance the traffic model by one sub-frame (1 ms): new arrivals
    /// land in the queues. No-op when backlogged.
    fn traffic_tick(&mut self) {
        if let TrafficModel::Poisson {
            bursts_per_sec,
            burst_bits,
        } = self.config.traffic
        {
            let p_arrival = (bursts_per_sec / 1_000.0).min(1.0);
            for q in self.queues.iter_mut() {
                if self.traffic_rng.chance(p_arrival) {
                    *q += burst_bits;
                }
            }
        }
    }

    /// Whether a client currently has data to send.
    fn has_data(&self, ue: usize) -> bool {
        matches!(self.config.traffic, TrafficModel::Backlogged) || self.queues[ue] > 0.0
    }

    /// Drain a client's queue by delivered bits.
    fn drain(&mut self, ue: usize, bits: f64) {
        if !matches!(self.config.traffic, TrafficModel::Backlogged) {
            self.queues[ue] = (self.queues[ue] - bits).max(0.0);
        }
    }

    /// Scalar channel power gain of a client at a sub-frame (average
    /// over the eNB antennas, mean ≈ 1).
    fn channel_gain(&self, ue: usize, sf: SubframeIndex) -> f64 {
        let h = self.trace.csi.channel(ue, sf);
        let m = self.config.cell.m_antennas;
        h.iter().take(m).map(|c| c.norm_sq()).sum::<f64>() / m as f64
    }

    /// True single-stream SINR (dB) of a client on an RB at a
    /// sub-frame.
    fn true_sinr_db(&self, ue: usize, rb: usize, sf: SubframeIndex) -> f64 {
        let block = sf.0 / self.trace.csi.coherence_subframes;
        self.trace.mean_snr_db[ue]
            + 10.0 * self.channel_gain(ue, sf).max(1e-9).log10()
            + rb_jitter(self.config.seed, ue, rb, block, self.config.rb_jitter_db)
    }

    /// Locate the SoA block cache covering a sub-frame, filling a
    /// slot on miss. Returns the slot *index* so the decode path can
    /// borrow the current and the grant block simultaneously; two
    /// slots suffice because those are the only blocks live at once.
    fn block_slot(&self, s: &mut RbScratch, sf: SubframeIndex) -> usize {
        let raw = sf.0 / self.trace.csi.coherence_subframes;
        if s.blocks[0].block == raw {
            s.mru = 0;
            return 0;
        }
        if s.blocks[1].block == raw {
            s.mru = 1;
            return 1;
        }
        let slot = 1 - s.mru;
        self.fill_block(&mut s.blocks[slot], &s.pen_db, raw, sf);
        s.mru = slot;
        slot
    }

    /// Recompute one block's SoA lanes. Every expression replays the
    /// retired per-call path's float operations in the same order —
    /// `(mean + 10·log10(gain.max(1e-9))) + jitter` then `− margin` —
    /// so cached values are bit-identical to what the loop used to
    /// compute inline (the engine-differential goldens pin this). The
    /// grant-time CQI/bits lanes fold the per-stream-count ZF penalty
    /// (`pen_db`, from [`RbScratch::ensure_pen_db`]) into the table
    /// lookup once per block instead of once per decoded member.
    fn fill_block(
        &self,
        cache: &mut BlockCache,
        pen_db: &[f64],
        raw_block: u64,
        sf: SubframeIndex,
    ) {
        let n = self.trace.ground_truth.n_clients;
        let n_rbs = self.config.cell.numerology.n_rbs;
        let m = self.config.cell.m_antennas;
        debug_assert_eq!(pen_db.len(), m + 1, "ensure_pen_db must run first");
        cache.block = raw_block;
        cache.pilot_ok = ClientSet::EMPTY;
        cache.power_mw.clear();
        cache.est_db.clear();
        cache.rate.clear();
        cache.cqi.clear();
        cache.bits.clear();
        for ue in 0..n {
            let gain = self.channel_gain(ue, sf);
            let snr_base = self.trace.mean_snr_db[ue] + 10.0 * gain.max(1e-9).log10();
            if snr_base >= blu_phy::pilot::PILOT_DETECT_SINR_DB {
                cache.pilot_ok.insert(ue);
            }
            for rb in 0..n_rbs {
                let jit = rb_jitter(
                    self.config.seed,
                    ue,
                    rb,
                    raw_block,
                    self.config.rb_jitter_db,
                );
                cache
                    .power_mw
                    .push(10f64.powf((self.trace.mean_snr_db[ue] + jit) / 10.0));
                let est = snr_base + jit - self.config.mcs_margin_db;
                cache.est_db.push(est);
                cache.rate.push(
                    self.mcs
                        .rate_for_sinr(Db(est), &self.config.cell.numerology),
                );
                for &pen in &pen_db[1..=m] {
                    let cqi = self.mcs.cqi_for_sinr(Db(est + pen));
                    cache.cqi.push(cqi);
                    cache
                        .bits
                        .push(self.mcs.bits_per_rb(cqi, &self.config.cell.numerology));
                }
            }
        }
    }

    /// Grant-time MCS for a client on an RB given the group size the
    /// scheduler built (applies the expected ZF penalty).
    fn grant_cqi(&self, ue: usize, rb: usize, sf: SubframeIndex, group_size: usize) -> Cqi {
        let m = self.config.cell.m_antennas;
        let expected_streams = group_size.min(m);
        let pen = mimo_penalty(expected_streams, m).max(1e-3);
        let est = self.true_sinr_db(ue, rb, sf) - self.config.mcs_margin_db + 10.0 * pen.log10();
        self.mcs.cqi_for_sinr(Db(est))
    }

    /// Decode one RB at one sub-frame into a recycled observation:
    /// who transmitted, batched ZF SINRs from the arena kernel,
    /// per-client outcomes. With `use_harq`, the burst's in-flight
    /// processes (keyed by (client, RB)) live in the scratch and
    /// soft-combine across retransmissions.
    #[allow(clippy::too_many_arguments)]
    fn decode_rb_into(
        &self,
        s: &mut RbScratch,
        rb: usize,
        sf: SubframeIndex,
        group: ClientSet,
        accessible: ClientSet,
        grant_sf: SubframeIndex,
        use_harq: bool,
        out: &mut RbObservation,
    ) {
        let m = self.config.cell.m_antennas;
        let n_rbs = self.config.cell.numerology.n_rbs;
        // The cyclic-shift budget must accommodate the whole group
        // (guaranteed by CellConfig::validate's f·M ≤ 8 cap).
        debug_assert!(
            blu_phy::pilot::PilotAssignment::for_group(group).is_some(),
            "group exceeds orthogonal pilot budget"
        );
        let transmitting = group.intersection(accessible);
        let slot_sf = self.block_slot(s, sf);
        let slot_grant = self.block_slot(s, grant_sf);
        // DMRS pilot detection: cyclic shifts keep over-scheduled
        // pilots orthogonal, so each pilot's SINR is its single-stream
        // SNR (no inter-stream interference); detection fails only in
        // a very deep fade (below the −10 dB correlation floor). The
        // floor comparison is block-constant, so it collapses to an
        // intersection with the cached detectable set.
        let pilots = blu_phy::pilot::detect_pilots_cached(transmitting, s.blocks[slot_sf].pilot_ok);
        let transmitting = pilots.detected;
        if transmitting.len() > m {
            // SISO NOMA: a 2-stream pile-up may still be separable by
            // successive interference cancellation (rare path — kept
            // on the reference implementation).
            if self.config.noma_sic && m == 1 && transmitting.len() == 2 {
                *out = self.decode_rb_noma(rb, sf, group, transmitting, grant_sf);
                return;
            }
            classify_rb_into(group, transmitting, m, |_| None, out);
            return;
        }
        // Zero-forcing decode of ≤ M streams through the batched
        // arena kernel (bit-identical to the `zf_sinrs` reference).
        let RbScratch {
            blocks,
            members,
            powers,
            zf,
            zf_out,
            results,
            harq,
            ..
        } = s;
        members.clear();
        members.extend(transmitting.iter());
        let decode_block = &blocks[slot_sf];
        powers.clear();
        for &ue in members.iter() {
            powers.push(decode_block.power_mw[ue * n_rbs + rb]);
        }
        let trace = self.trace;
        let separable = zf_sinrs_into(
            |i| &trace.csi.channel(members[i], sf)[..m],
            members.len(),
            m,
            powers,
            1.0,
            zf,
            zf_out,
        );
        let group_size = group.len();
        let expected_streams = group_size.min(m);
        let grant_block = &blocks[slot_grant];
        // Pre-compute per-transmitter decode results (HARQ mutates
        // state, so this cannot live in the classify closure). The
        // grant MCS comes straight from the block cache's CQI/bits
        // lanes — the penalty for `expected_streams` was folded in at
        // block-fill time.
        results.clear();
        for (idx, &ue) in members.iter().enumerate() {
            let lane = (ue * n_rbs + rb) * m + (expected_streams - 1);
            let cqi = grant_block.cqi[lane];
            let realized_linear = if separable {
                zf_out[idx].max(0.0)
            } else {
                0.0 // rank-deficient channel: no usable energy
            };
            let bits = grant_block.bits[lane];
            let decoded = if !cqi.is_usable() {
                false
            } else if realized_linear >= self.dec_floor_mw[usize::from(cqi.0) - 1] {
                // Clean first-shot decode; drop any stale process.
                if use_harq {
                    *harq.slot_mut(ue, rb) = None;
                }
                true
            } else if use_harq {
                // Fading loss: soft-combine with the burst's pending
                // process (or open one).
                use blu_phy::harq::{HarqOutcome, HarqProcess};
                let slot = harq.slot_mut(ue, rb);
                match slot {
                    Some(p) => {
                        let outcome = p.receive_retransmission(realized_linear, &self.mcs);
                        match outcome {
                            HarqOutcome::Decoded => {
                                *slot = None;
                                true
                            }
                            HarqOutcome::Exhausted => {
                                *slot = None;
                                false
                            }
                            HarqOutcome::Pending => false,
                        }
                    }
                    None => {
                        *slot = Some(HarqProcess::new(
                            cqi,
                            realized_linear,
                            self.config.harq_max_retx,
                        ));
                        false
                    }
                }
            } else {
                false // fading loss, HARQ disabled
            };
            results.push((ue, if decoded { Some(bits) } else { None }));
        }
        classify_rb_into(
            group,
            transmitting,
            m,
            |ue| {
                results
                    .iter()
                    .find(|&&(u, _)| u == ue)
                    .and_then(|&(_, r)| r)
            },
            out,
        );
    }

    /// SIC decode of exactly two superposed SISO streams: outcomes are
    /// `Success` for decoded streams and `Collision` for the rest.
    fn decode_rb_noma(
        &self,
        rb: usize,
        sf: SubframeIndex,
        group: ClientSet,
        transmitting: ClientSet,
        grant_sf: SubframeIndex,
    ) -> RbObservation {
        let members: Vec<usize> = transmitting.iter().collect();
        let block = sf.0 / self.trace.csi.coherence_subframes;
        let powers: Vec<f64> = members
            .iter()
            .map(|&ue| {
                let jit = rb_jitter(self.config.seed, ue, rb, block, self.config.rb_jitter_db);
                10f64.powf((self.trace.mean_snr_db[ue] + jit) / 10.0)
                    * self.channel_gain(ue, sf).max(1e-9)
            })
            .collect();
        let group_size = group.len();
        let decoded = blu_phy::noma::sic_decode(&powers, 1.0, |idx, sinr| {
            let ue = members[idx];
            let cqi = self.grant_cqi(ue, rb, grant_sf, group_size);
            cqi.is_usable() && self.mcs.decodes(cqi, Db(10.0 * sinr.max(1e-12).log10()))
        });
        let outcomes = group
            .iter()
            .map(|ue| {
                let outcome = if !transmitting.contains(ue) {
                    DecodeOutcome::Blocked
                } else if let Some(idx) = members.iter().position(|&u| u == ue) {
                    if decoded.contains(&idx) {
                        let cqi = self.grant_cqi(ue, rb, grant_sf, group_size);
                        DecodeOutcome::Success {
                            bits: self.mcs.bits_per_rb(cqi, &self.config.cell.numerology),
                        }
                    } else {
                        DecodeOutcome::Collision
                    }
                } else {
                    DecodeOutcome::Collision
                };
                (ue, outcome)
            })
            .collect();
        RbObservation {
            scheduled: group,
            outcomes,
        }
    }

    /// Run one segment of the cell's sub-frame loop: CCA → grant →
    /// pilot classification → ZF decode → PF/estimator update, for
    /// `n_txops` TxOPs.
    ///
    /// `estimator`, when provided, receives every sub-frame's
    /// observations (how the orchestrator keeps measuring during the
    /// speculative phase). `observer` is called once per stage event;
    /// pass [`NullObserver`](crate::engine::NullObserver) to observe
    /// nothing at zero cost.
    ///
    /// The [`AccessMode`] branches preserve the historical loop
    /// semantics exactly: finite-buffer traffic arrivals, HARQ
    /// soft-combining, queue-capped transport blocks, full-utilization
    /// accounting and queue draining are back-to-back concerns, while
    /// the contended mode charges LBT waits to the wall clock and
    /// credits raw decoded bits.
    pub fn run_segment<O: SubframeObserver + ?Sized>(
        &mut self,
        scheduler: &mut dyn UlScheduler,
        mut estimator: Option<&mut OutcomeEstimator>,
        mode: AccessMode<'_>,
        observer: &mut O,
    ) -> EmulationReport {
        let n = self.trace.ground_truth.n_clients;
        let n_rbs = self.config.cell.numerology.n_rbs;
        let mut metrics = UplinkMetrics::new(n);
        // The SoA hot state moves out of `self` for the segment so the
        // loop can borrow its lanes while mutating the engine's own
        // state (queues, averager, RNGs).
        let mut hot = std::mem::take(&mut self.hot);
        hot.rb.ensure_pen_db(self.config.cell.m_antennas);
        hot.rb.harq.ensure(n, n_rbs);
        let mut lbt_state = match mode {
            AccessMode::Contended { busy, lbt_rng } => {
                Some((Lbt::new(LbtConfig::default(), lbt_rng), busy))
            }
            AccessMode::BackToBack => None,
        };
        let contended = lbt_state.is_some();
        let use_harq = !contended && self.config.harq_max_retx > 0;
        let mut now = Micros::ZERO;
        let mut sf = SubframeIndex(self.start_subframe);
        for txop in 0..self.n_txops {
            if let Some((lbt, busy)) = lbt_state.as_mut() {
                // Win the channel, then align to the next sub-frame
                // boundary (LTE transmissions start on boundaries; the
                // reservation-signal gap is charged to the TxOP).
                let acquired = lbt.acquire(busy, now);
                sf = SubframeIndex(acquired.as_u64().div_ceil(SUBFRAME_US));
            } else {
                // DL part of the TxOP (grants go out here); traffic
                // keeps arriving while the eNB transmits.
                for _ in 0..self.config.cell.txop.dl_subframes {
                    self.traffic_tick();
                }
            }
            sf = sf.advance(self.config.cell.txop.dl_subframes);
            let grant_sf = sf;
            observer.on_txop_start(txop, grant_sf);
            // One schedule per TxOP, reused over the UL burst (the
            // paper's 3-sub-frame grants). Grant-time rates come from
            // the grant block's cached SoA lane, gated per TxOP by
            // queue occupancy (footnote-1 coupling: clients with empty
            // buffers get rate 0 and are simply never granted).
            let slot_grant = self.block_slot(&mut hot.rb, grant_sf);
            let rates = {
                let grant_block = &hot.rb.blocks[slot_grant];
                MatrixRates::build(n, n_rbs, |ue, rb| {
                    if self.has_data(ue) {
                        grant_block.rate[ue * n_rbs + rb]
                    } else {
                        0.0
                    }
                })
            };
            let input = SchedInput {
                n_clients: n,
                n_rbs,
                m_antennas: self.config.cell.m_antennas,
                k_max: self.config.cell.max_ues_per_subframe,
                max_group: self.config.cell.max_group_size(),
                rates: &rates,
                avg_tput: &self.averager.avg,
            };
            let schedule = scheduler.schedule(&input);
            hot.rb.harq.clear();
            for _ in 0..self.config.cell.txop.ul_subframes {
                if !contended {
                    self.traffic_tick();
                }
                let accessible = self.trace.access.at(sf);
                hot.delivered.clear();
                hot.delivered.resize(n, 0.0);
                // Transport blocks only carry real payload: cap each
                // client's deliverable bits at its queue contents
                // (backlogged mode: unlimited). Contended runs credit
                // raw decoded bits and skip the finite-buffer cap.
                hot.sendable.clear();
                if !contended {
                    for ue in 0..n {
                        hot.sendable.push(
                            if matches!(self.config.traffic, TrafficModel::Backlogged) {
                                f64::INFINITY
                            } else {
                                self.queues[ue]
                            },
                        );
                    }
                }
                hot.n_obs = 0;
                let mut all_rbs_utilized = true;
                for rb in 0..n_rbs {
                    let group = schedule.group(rb);
                    if group.is_empty() {
                        all_rbs_utilized = false;
                        continue;
                    }
                    metrics.rbs_scheduled += 1;
                    let obs_i = hot.next_obs_index();
                    self.decode_rb_into(
                        &mut hot.rb,
                        rb,
                        sf,
                        group,
                        accessible,
                        grant_sf,
                        use_harq,
                        &mut hot.observations[obs_i],
                    );
                    let obs = &hot.observations[obs_i];
                    // Single pass over the outcomes: the raw
                    // delivered-bits sum (same ascending-client add
                    // order as `RbObservation::delivered_bits` — the
                    // skipped non-`Success` terms contribute exact
                    // zeros) fused with per-client crediting.
                    let mut bits = 0.0;
                    if contended {
                        for &(ue, outcome) in &obs.outcomes {
                            if let DecodeOutcome::Success { bits: b } = outcome {
                                bits += b;
                                hot.delivered[ue] += b;
                                metrics.bits_per_client[ue] += b;
                            }
                        }
                        metrics.bits_delivered += bits;
                    } else {
                        let mut credited_on_rb = 0.0;
                        for &(ue, outcome) in &obs.outcomes {
                            if let DecodeOutcome::Success { bits: b } = outcome {
                                bits += b;
                                let credited = b.min(hot.sendable[ue]);
                                hot.sendable[ue] -= credited;
                                hot.delivered[ue] += credited;
                                metrics.bits_per_client[ue] += credited;
                                credited_on_rb += credited;
                            }
                        }
                        metrics.bits_delivered += credited_on_rb;
                    }
                    if bits > 0.0 {
                        metrics.rbs_utilized += 1;
                    } else {
                        all_rbs_utilized = false;
                        if obs.collided() {
                            metrics.rbs_collided += 1;
                        } else if obs.transmitters().is_empty() {
                            metrics.rbs_blocked += 1;
                        } else {
                            metrics.rbs_faded += 1;
                        }
                    }
                }
                metrics.subframes += 1;
                if !contended && all_rbs_utilized && hot.n_obs > 0 {
                    metrics.fully_utilized_subframes += 1;
                }
                if let Some(est) = estimator.as_deref_mut() {
                    est.record_subframe(&hot.observations[..hot.n_obs]);
                }
                observer.on_subframe(&SubframeView {
                    sf,
                    observations: &hot.observations[..hot.n_obs],
                    delivered: &hot.delivered,
                });
                if !contended {
                    for ue in 0..n {
                        let bits = hot.delivered[ue];
                        if bits > 0.0 {
                            self.drain(ue, bits);
                        }
                    }
                }
                self.averager.update(&hot.delivered);
                sf = sf.next();
            }
            if let Some((lbt, _)) = lbt_state.as_mut() {
                now = sf.start();
                lbt.reset_cw();
            }
        }
        self.hot = hot;
        EmulationReport {
            scheduler: scheduler.name(),
            metrics,
            wall_clock: contended.then_some(now),
        }
    }
}
