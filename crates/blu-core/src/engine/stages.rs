//! The typed stage pipeline: measure → infer → generate → schedule →
//! transmit.
//!
//! Each [`Stage`] reads and writes the shared
//! [`CellContext`]; [`run_pipeline`] drives an ordered slice of
//! stages, announcing each one to the observer and stopping early
//! when a stage [`Halt`](StageFlow::Halt)s (trace exhausted). The
//! **stage ordering contract** is structural: [`StageKind`] derives
//! `Ord` in pipeline order and `run_pipeline` asserts that kinds
//! never decrease, so a composition that would run `Transmit` before
//! `Measure` is rejected at the first call, not silently tolerated.
//!
//! The stages carry *mechanism*; *policy* stays with the caller.
//! `run_blu` composes all five stages once over a fresh snapshot; the
//! robust driver composes `[Measure, Infer]` or `[Generate, Schedule,
//! Transmit]` per state-machine arm and keeps the drift/probation/
//! breaker decisions for itself.

use crate::blueprint::constraints::ConstraintSystem;
use crate::blueprint::fleetcache::{FleetCacheEvent, TopologySignature};
use crate::blueprint::infer::InferenceVerdict;
use crate::blueprint::InferenceResult;
use crate::engine::cell::{AccessMode, CellEngine};
use crate::engine::context::{
    CellContext, CellSnapshot, OrchestratorState, SchedulerSpec, SegmentPlan,
};
use crate::engine::observer::{StreamEvent, SubframeObserver, SubframeView};
use crate::error::BluError;
use crate::joint::TopologyAccess;
use crate::measure::{measurement_schedule, MeasurementPlan, OutcomeEstimator};
use crate::runtime::panic_message;
use crate::sched::{PfScheduler, SpeculativeScheduler};
use blu_sim::clientset::ClientSet;
use blu_sim::faults::{FaultScript, ObservationChannel};
use blu_sim::time::SubframeIndex;
use blu_traces::schema::TestbedTrace;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The pipeline stages, in their one legal order (`Ord` derives the
/// ordering contract enforced by [`run_pipeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageKind {
    /// Run an Algorithm-1 measurement plan against the trace.
    Measure,
    /// Blue-print a topology from the accumulated statistics.
    Infer,
    /// Decide which scheduler the blueprint (or its absence) earns.
    Generate,
    /// Pick the transmit segment's window within the trace.
    Schedule,
    /// Drive the [`CellEngine`] sub-frame loop over the segment.
    Transmit,
}

/// What a stage tells the pipeline to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageFlow {
    /// Proceed to the next stage.
    Continue,
    /// Stop the pipeline (the trace is exhausted; `snap.done` is
    /// set by the halting stage).
    Halt,
}

/// One typed step of the cell pipeline.
pub trait Stage {
    /// Where this stage sits in the ordering contract.
    fn kind(&self) -> StageKind;
    /// Execute against the shared context.
    fn run(
        &mut self,
        ctx: &mut CellContext<'_, '_>,
        observer: &mut dyn SubframeObserver,
    ) -> Result<StageFlow, BluError>;
}

/// Drive an ordered stage composition over a context. A composition
/// whose stages are not in non-decreasing [`StageKind`] order is
/// rejected with [`BluError::StageInvariant`] at the first offending
/// stage — a typed error rather than a panic, so a fleet running many
/// compositions degrades per cell instead of aborting the join.
pub fn run_pipeline(
    ctx: &mut CellContext<'_, '_>,
    stages: &mut [&mut dyn Stage],
    observer: &mut dyn SubframeObserver,
) -> Result<StageFlow, BluError> {
    let mut prev: Option<StageKind> = None;
    for stage in stages.iter_mut() {
        let kind = stage.kind();
        if let Some(p) = prev {
            if kind < p {
                return Err(BluError::StageInvariant(format!(
                    "stage pipeline out of order: {kind:?} cannot follow {p:?}"
                )));
            }
        }
        prev = Some(kind);
        observer.on_stage(kind);
        if stage.run(ctx, observer)? == StageFlow::Halt {
            return Ok(StageFlow::Halt);
        }
    }
    Ok(StageFlow::Continue)
}

/// Execute one measurement plan against the trace starting at
/// sub-frame `start`, feeding the estimator. With `channel` set, each
/// sub-frame's outcome passes through the observation-fault channel
/// first (misclassification/drops per the script); without it the
/// outcome is recorded directly. This is the **only** measurement
/// loop in the workspace — `run_measurement_phase` and
/// [`MeasureStage`] both execute through it.
pub(crate) fn run_measure_plan(
    trace: &TestbedTrace,
    plan: &MeasurementPlan,
    start: u64,
    est: &mut OutcomeEstimator,
    mut channel: Option<(&mut ObservationChannel, &FaultScript)>,
) {
    for (i, &scheduled) in plan.subframes.iter().enumerate() {
        let sf = start + i as u64;
        let accessible = trace.access.at(SubframeIndex(sf));
        match channel.as_mut() {
            Some((chan, script)) => {
                let obs_state = script.obs_state_at(sf);
                if let Some((obs, acc)) =
                    chan.corrupt(obs_state, scheduled, accessible.intersection(scheduled))
                {
                    est.stats_mut().record(obs, acc);
                }
            }
            None => {
                est.stats_mut()
                    .record(scheduled, accessible.intersection(scheduled));
            }
        }
    }
}

/// How [`MeasureStage`] reacts when the plan does not fit in the
/// remaining trace, and whether outcomes pass the fault channel.
#[derive(Debug, Clone, Copy)]
pub enum MeasureFidelity {
    /// Clean observation path; a plan that overruns the trace is a
    /// typed [`BluError::TraceTooShort`] (the vanilla orchestrator's
    /// contract — wrapped measurement would bias the statistics).
    Strict {
        /// Context string for the error ("measurement phase", …).
        what: &'static str,
    },
    /// Outcomes pass the scripted observation-fault channel; an
    /// overrunning plan simply ends the run (`done`) — there is no
    /// more air to measure anyway.
    FaultChannel,
}

/// Run an Algorithm-1 plan at the snapshot cursor and advance it.
#[derive(Debug, Clone, Copy)]
pub struct MeasureStage {
    /// Samples per client pair (`T`).
    pub t_samples: u64,
    /// Overflow/fault-channel behaviour.
    pub fidelity: MeasureFidelity,
}

impl Stage for MeasureStage {
    fn kind(&self) -> StageKind {
        StageKind::Measure
    }

    fn run(
        &mut self,
        ctx: &mut CellContext<'_, '_>,
        _observer: &mut dyn SubframeObserver,
    ) -> Result<StageFlow, BluError> {
        let plan = measurement_schedule(ctx.geom.n, ctx.geom.k_max, self.t_samples)?;
        if ctx.snap.cursor + plan.t_max() > ctx.geom.trace_len {
            match self.fidelity {
                MeasureFidelity::Strict { what } => {
                    return Err(BluError::TraceTooShort {
                        what,
                        needed: plan.t_max(),
                        available: ctx.geom.trace_len,
                    });
                }
                MeasureFidelity::FaultChannel => {
                    ctx.snap.done = true;
                    return Ok(StageFlow::Halt);
                }
            }
        }
        let cursor = ctx.snap.cursor;
        let CellSnapshot {
            ref mut est,
            ref mut chan,
            ..
        } = *ctx.snap;
        let channel = match self.fidelity {
            MeasureFidelity::Strict { .. } => None,
            MeasureFidelity::FaultChannel => {
                let script = ctx.script.ok_or_else(|| {
                    BluError::StageInvariant(
                        "fault-channel measurement requires a fault script".into(),
                    )
                })?;
                Some((chan, script))
            }
        };
        run_measure_plan(ctx.trace, &plan, cursor, est, channel);
        ctx.snap.cursor += plan.t_max();
        ctx.snap.measurement_subframes += plan.t_max();
        Ok(StageFlow::Continue)
    }
}

/// Verdict gating for [`InferStage`]: confidence floor and the
/// fallback probation a failed inference earns.
#[derive(Debug, Clone, Copy)]
pub struct InferGate {
    /// Minimum blueprint confidence (`1 − residual fraction`) to
    /// speculate on.
    pub confidence_floor: f64,
    /// TxOPs of PF fallback a failed inference sentences the cell to.
    pub fallback_probation_txops: u64,
}

/// Blue-print a topology from the snapshot's accumulated statistics.
///
/// Ungated (`gate: None`), the stage runs the backend directly on the
/// measured constraint system and installs the result as the
/// blueprint — the vanilla orchestrator's unconditional path. Gated,
/// it runs under the full resilience guards (scripted poisoning +
/// quarantine, stall repetition, panic containment, breaker
/// bookkeeping) and routes the verdict into
/// Confident/Fallback exactly as the robust loop always has.
#[derive(Debug, Clone, Copy)]
pub struct InferStage {
    /// `Some` enables verdict gating + the resilience guards.
    pub gate: Option<InferGate>,
}

impl InferStage {
    /// Run inference under the resilience guards: scripted poisoning
    /// is injected and quarantined, scripted stalls repeat the solve,
    /// and a panic (scripted or genuine) is contained at this
    /// boundary.
    fn guarded_blueprint(
        &self,
        ctx: &mut CellContext<'_, '_>,
    ) -> Result<(InferenceResult, Vec<FleetCacheEvent>), BluError> {
        let rt = ctx
            .script
            .map(|s| s.runtime_state_at(ctx.snap.cursor))
            .unwrap_or_default();
        let mut sys = ConstraintSystem::from_measurements(ctx.snap.est.stats());
        if rt.poison_rate > 0.0 {
            for t in sys.individual.iter_mut().chain(sys.pair.iter_mut()) {
                if ctx.snap.poison_rng.chance(rt.poison_rate) {
                    *t = f64::NAN;
                }
            }
            for tr in sys.triples.iter_mut() {
                if ctx.snap.poison_rng.chance(rt.poison_rate) {
                    tr.target = f64::NAN;
                }
            }
        }
        ctx.snap.quarantined_constraints += sys.sanitize() as u64;

        let reps = rt.stall_factor.max(1);
        let inject_panic = rt.panic;
        let backend = ctx.backend;
        let icfg = ctx.inference;
        let cache = ctx.fleet_cache;
        let t0 = std::time::Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected inference panic");
            }
            let mut events = Vec::new();
            let mut solve_once = || match cache {
                Some(c) => {
                    // Signature recomputed at every solve from the
                    // sanitized system actually being solved — never
                    // captured once and reused — so a lookup after
                    // churn-mutated statistics can only key on the
                    // post-churn books. (Poisoned-then-quarantined
                    // cells likewise key on what the solver saw.)
                    let sig = TopologySignature::new(&sys, icfg, backend);
                    let (result, ev) =
                        c.get_or_solve_infallible(&sig, || backend.infer(&sys, icfg));
                    events.push(ev);
                    result
                }
                None => backend.infer(&sys, icfg),
            };
            let mut result = solve_once();
            // A scripted stall models a slow solver by repeating the
            // (deterministic) solve; the last result is returned.
            // Under the cache the repeats are hits on the entry the
            // first solve just published — same result, no extra work.
            for _ in 1..reps {
                result = solve_once();
            }
            (result, events)
        }))
        .map_err(|p| BluError::Panicked(panic_message(p.as_ref())));
        ctx.snap.inference_micros += t0.elapsed().as_micros() as u64;
        outcome
    }
}

impl Stage for InferStage {
    fn kind(&self) -> StageKind {
        StageKind::Infer
    }

    fn run(
        &mut self,
        ctx: &mut CellContext<'_, '_>,
        observer: &mut dyn SubframeObserver,
    ) -> Result<StageFlow, BluError> {
        let Some(gate) = self.gate else {
            // Unconditional path: the measured constraint system goes
            // straight to the backend and the result is the blueprint.
            let sys = ConstraintSystem::from_measurements(ctx.snap.est.stats());
            let result = match ctx.fleet_cache {
                Some(cache) => {
                    let sig = TopologySignature::new(&sys, ctx.inference, ctx.backend);
                    let (result, event) = cache
                        .get_or_solve_infallible(&sig, || ctx.backend.infer(&sys, ctx.inference));
                    observer.on_fleet_cache(event);
                    result
                }
                None => ctx.backend.infer(&sys, ctx.inference),
            };
            observer.on_infer(result.verdict, result.completed);
            ctx.snap.blueprint = Some(result);
            return Ok(StageFlow::Continue);
        };
        match self.guarded_blueprint(ctx) {
            Ok((result, cache_events)) => {
                for event in cache_events {
                    observer.on_fleet_cache(event);
                }
                if !result.completed {
                    ctx.snap.deadline_misses += 1;
                }
                observer.on_infer(result.verdict, result.completed);
                ctx.snap.verdicts.push(result.verdict);
                let usable = result.verdict != InferenceVerdict::Degraded
                    && result.confidence() >= gate.confidence_floor;
                if usable {
                    ctx.snap.breaker.record_success(ctx.snap.cursor);
                    ctx.snap.blueprint = Some(result);
                    ctx.snap.drift.reset();
                    ctx.snap.enter(OrchestratorState::Confident);
                } else {
                    ctx.snap.breaker.record_failure(ctx.snap.cursor);
                    ctx.snap.blueprint = None;
                    ctx.snap.probation_left = gate.fallback_probation_txops;
                    ctx.snap.enter(OrchestratorState::Fallback);
                }
            }
            Err(e) => {
                if matches!(e, BluError::Panicked(_)) {
                    ctx.snap.inference_panics += 1;
                }
                observer.on_infer(InferenceVerdict::Degraded, false);
                ctx.snap.verdicts.push(InferenceVerdict::Degraded);
                ctx.snap.breaker.record_failure(ctx.snap.cursor);
                ctx.snap.blueprint = None;
                ctx.snap.probation_left = gate.fallback_probation_txops;
                ctx.snap.enter(OrchestratorState::Fallback);
            }
        }
        observer.on_state_change(ctx.snap.cursor, ctx.snap.state);
        Ok(StageFlow::Continue)
    }
}

/// Incremental streaming inference: fold the sliding observation
/// window's counters into a warm-started repair of the blueprint in
/// force, between transmit segments, under a bounded step deadline.
///
/// This is the streaming half of the split [`InferStage`]: where the
/// full stage re-measures and solves from scratch (§3.7), this stage
/// reads only the snapshot's [`StreamState`] window — whose counters
/// drift with ground truth as observations age out — and runs a
/// single budgeted repair seeded from the current blueprint. A
/// refined blueprint that passes the confidence gate replaces the one
/// in force and resets the drift monitor; one that fails the gate is
/// discarded and the cell keeps serving the old blueprint, leaving
/// the drift monitor armed as the full-re-measurement fallback. The
/// stage never consults the fleet cache (warm starts are cell-local)
/// and never moves the state machine — streaming refines happen
/// *inside* Confident.
///
/// [`StreamState`]: crate::engine::context::StreamState
#[derive(Debug, Clone, Copy)]
pub struct StreamInferStage {
    /// Confidence floor a refined blueprint must clear to install
    /// (same semantics as [`InferGate::confidence_floor`]).
    pub confidence_floor: f64,
    /// Step budget for the incremental repair (the PR 4 anytime
    /// deadline, in solver steps).
    pub refine_deadline_steps: u64,
}

impl Stage for StreamInferStage {
    fn kind(&self) -> StageKind {
        StageKind::Infer
    }

    fn run(
        &mut self,
        ctx: &mut CellContext<'_, '_>,
        observer: &mut dyn SubframeObserver,
    ) -> Result<StageFlow, BluError> {
        let Some(stream) = ctx.snap.stream.as_ref() else {
            return Err(BluError::StageInvariant(
                "streaming infer requires stream state in the snapshot".into(),
            ));
        };
        if stream.window.is_empty() {
            return Ok(StageFlow::Continue);
        }
        let mut sys = ConstraintSystem::from_measurements(stream.window.stats());
        ctx.snap.quarantined_constraints += sys.sanitize() as u64;
        let start = match &ctx.snap.blueprint {
            Some(result) => {
                crate::blueprint::constraints::TransformedTopology::from_topology(&result.topology)
            }
            None => Default::default(),
        };
        let cfg = crate::blueprint::InferenceConfig {
            deadline: crate::runtime::deadline::Deadline::Steps(self.refine_deadline_steps.max(1)),
            ..*ctx.inference
        };
        let backend = ctx.backend;
        let t0 = std::time::Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut scratch = crate::blueprint::InferScratch::default();
            let mut result =
                crate::blueprint::infer::refine_topology_with(&sys, &cfg, start, &mut scratch);
            // A warm start that did not converge is stuck in the old
            // blueprint's basin (a churn event moved the truth): fall
            // back to the restart portfolio over the same window
            // statistics. Solver time only — streaming never spends
            // measurement sub-frames.
            if result.verdict != InferenceVerdict::Converged {
                let full = backend.infer_with(&sys, &cfg, &mut scratch);
                if full.violation < result.violation {
                    result = full;
                }
            }
            result
        }));
        ctx.snap.inference_micros += t0.elapsed().as_micros() as u64;
        let stream = ctx.snap.stream.as_mut().expect("checked above");
        stream.refines += 1;
        match outcome {
            Ok(result) => {
                if !result.completed {
                    ctx.snap.deadline_misses += 1;
                }
                observer.on_infer(result.verdict, result.completed);
                ctx.snap.verdicts.push(result.verdict);
                let installed = result.verdict != InferenceVerdict::Degraded
                    && result.confidence() >= self.confidence_floor;
                if installed {
                    stream.refines_installed += 1;
                    ctx.snap.blueprint = Some(result);
                    ctx.snap.drift.reset();
                }
                observer.on_stream(StreamEvent::Refine { installed });
            }
            Err(_) => {
                // A refine panic is contained at this boundary: the
                // cell keeps serving the blueprint in force and the
                // drift monitor stays armed.
                ctx.snap.inference_panics += 1;
                observer.on_infer(InferenceVerdict::Degraded, false);
                observer.on_stream(StreamEvent::Refine { installed: false });
            }
        }
        Ok(StageFlow::Continue)
    }
}

/// Decide the scheduler from the blueprint in force: a blueprint
/// earns speculation, its absence earns plain PF.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenerateStage;

impl Stage for GenerateStage {
    fn kind(&self) -> StageKind {
        StageKind::Generate
    }

    fn run(
        &mut self,
        ctx: &mut CellContext<'_, '_>,
        _observer: &mut dyn SubframeObserver,
    ) -> Result<StageFlow, BluError> {
        ctx.spec = if ctx.snap.blueprint.is_some() {
            SchedulerSpec::Speculative
        } else {
            SchedulerSpec::Pf
        };
        Ok(StageFlow::Continue)
    }
}

/// How [`ScheduleStage`] windows the transmit segment.
#[derive(Debug, Clone, Copy)]
pub enum SchedulePolicy {
    /// One segment spanning the configured run
    /// (`emulation.n_txops` TxOPs from `emulation.start_subframe`) —
    /// the vanilla orchestrator's speculative phase.
    FullRun,
    /// Bounded segments from the snapshot cursor, clipped to the
    /// remaining trace; an empty window ends the run.
    Windowed {
        /// Segment length between drift checks.
        check_interval_txops: u64,
    },
}

/// Pick the transmit segment's window within the trace.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleStage {
    /// Windowing policy.
    pub policy: SchedulePolicy,
}

impl Stage for ScheduleStage {
    fn kind(&self) -> StageKind {
        StageKind::Schedule
    }

    fn run(
        &mut self,
        ctx: &mut CellContext<'_, '_>,
        _observer: &mut dyn SubframeObserver,
    ) -> Result<StageFlow, BluError> {
        ctx.segment = match self.policy {
            SchedulePolicy::FullRun => Some(SegmentPlan {
                txops: ctx.emulation.n_txops,
                start_subframe: ctx.emulation.start_subframe,
            }),
            SchedulePolicy::Windowed {
                check_interval_txops,
            } => {
                let room = (ctx.geom.trace_len - ctx.snap.cursor) / ctx.geom.per_txop;
                let txops = check_interval_txops.min(room);
                if txops == 0 {
                    ctx.snap.done = true;
                    return Ok(StageFlow::Halt);
                }
                Some(SegmentPlan {
                    txops,
                    start_subframe: ctx.snap.cursor,
                })
            }
        };
        Ok(StageFlow::Continue)
    }
}

/// What [`TransmitStage`] feeds per decoded sub-frame.
#[derive(Debug, Clone, Copy)]
pub enum TransmitFeed {
    /// Nothing — the segment report is the only output.
    None,
    /// Feed the snapshot's estimator directly with every sub-frame's
    /// pilot-classified observations (the vanilla orchestrator's warm
    /// phase-2 estimator, §3.7).
    Estimator,
    /// Feed estimator **and** drift monitor through the scripted
    /// observation-fault channel (the robust loop's per-subframe
    /// tap).
    FaultTap,
}

/// Drive the [`CellEngine`] over the planned segment with the chosen
/// scheduler, carrying PF state across segments and merging metrics
/// into the snapshot.
#[derive(Debug, Clone, Copy)]
pub struct TransmitStage {
    /// Per-subframe feeding mode.
    pub feed: TransmitFeed,
}

/// The robust loop's per-subframe fault tap, implemented as an
/// engine observer: every decoded UL sub-frame's true CCA outcome is
/// passed through the observation-fault channel, recorded into the
/// estimator, and — when a blueprint is in force — scored against its
/// predicted access probabilities by the drift monitor. Only UL
/// sub-frames are observable (the eNB transmits during DL), which is
/// exactly the set the engine reports.
struct DriftTap<'x> {
    trace: &'x TestbedTrace,
    script: &'x FaultScript,
    chan: &'x mut ObservationChannel,
    est: &'x mut OutcomeEstimator,
    drift: &'x mut crate::engine::context::DriftMonitor,
    blueprint: Option<&'x InferenceResult>,
    /// Streaming ingest: when the run carries stream state, every
    /// surviving observation is also admitted into the sliding
    /// window (retiring the oldest), so the streaming refine always
    /// sees the freshest bounded history.
    window: Option<&'x mut crate::blueprint::ObservationWindow>,
    n: usize,
    inner: &'x mut dyn SubframeObserver,
}

impl SubframeObserver for DriftTap<'_> {
    fn on_stage(&mut self, kind: StageKind) {
        self.inner.on_stage(kind);
    }

    fn on_txop_start(&mut self, txop: u64, grant_sf: SubframeIndex) {
        self.inner.on_txop_start(txop, grant_sf);
    }

    fn on_subframe(&mut self, view: &SubframeView<'_>) {
        let sf = view.sf.0;
        let accessible = self.trace.access.at(view.sf);
        let obs_state = self.script.obs_state_at(sf);
        let all = ClientSet::all(self.n);
        if let Some((obs, acc)) = self.chan.corrupt(obs_state, all, accessible) {
            self.est.stats_mut().record(obs, acc);
            if let Some(window) = self.window.as_mut() {
                window.admit(obs, acc);
            }
            if let Some(result) = self.blueprint {
                for ue in obs.iter() {
                    self.drift
                        .observe(ue, acc.contains(ue), result.topology.p_individual(ue));
                }
            }
        }
        self.inner.on_subframe(view);
    }

    fn on_infer(&mut self, verdict: InferenceVerdict, completed: bool) {
        self.inner.on_infer(verdict, completed);
    }

    fn on_fleet_cache(&mut self, event: crate::blueprint::fleetcache::FleetCacheEvent) {
        self.inner.on_fleet_cache(event);
    }

    fn on_state_change(&mut self, at_subframe: u64, state: OrchestratorState) {
        self.inner.on_state_change(at_subframe, state);
    }

    fn on_stream(&mut self, event: StreamEvent) {
        self.inner.on_stream(event);
    }
}

impl Stage for TransmitStage {
    fn kind(&self) -> StageKind {
        StageKind::Transmit
    }

    fn run(
        &mut self,
        ctx: &mut CellContext<'_, '_>,
        observer: &mut dyn SubframeObserver,
    ) -> Result<StageFlow, BluError> {
        let plan = ctx.segment.ok_or_else(|| {
            BluError::StageInvariant("schedule stage must plan a segment before transmit".into())
        })?;
        if ctx.spec == SchedulerSpec::Speculative && ctx.snap.blueprint.is_none() {
            return Err(BluError::StageInvariant(
                "speculative transmit requires a blueprint in force".into(),
            ));
        }
        let mut engine = CellEngine::with_config(ctx.trace, ctx.emulation)?
            .segment(plan.txops, plan.start_subframe);
        if let Some(arena) = ctx.arena.as_mut() {
            engine.adopt_arena(arena);
        }
        if let Some(avg) = &ctx.snap.pf_avg {
            engine.seed_pf_averages(avg);
        }
        let spec = ctx.spec;
        let report = {
            // Split borrows: the scheduler reads the blueprint while
            // the feed mutates estimator/channel/drift — disjoint
            // snapshot fields.
            let CellSnapshot {
                ref mut est,
                ref mut chan,
                ref mut drift,
                ref blueprint,
                ref mut stream,
                ..
            } = *ctx.snap;
            let run = |engine: &mut CellEngine<'_>,
                       estimator: Option<&mut OutcomeEstimator>,
                       observer: &mut dyn SubframeObserver| {
                match spec {
                    SchedulerSpec::Speculative => {
                        // Checked above: Speculative implies a blueprint.
                        let result = blueprint.as_ref().expect("checked before engine build");
                        let access = TopologyAccess::new(&result.topology);
                        let mut sched = SpeculativeScheduler::new(&access);
                        engine.run_segment(&mut sched, estimator, AccessMode::BackToBack, observer)
                    }
                    SchedulerSpec::Pf => engine.run_segment(
                        &mut PfScheduler,
                        estimator,
                        AccessMode::BackToBack,
                        observer,
                    ),
                }
            };
            match self.feed {
                TransmitFeed::None => run(&mut engine, None, observer),
                TransmitFeed::Estimator => run(&mut engine, Some(est), observer),
                TransmitFeed::FaultTap => {
                    let script = ctx.script.ok_or_else(|| {
                        BluError::StageInvariant(
                            "fault-tap transmit requires a fault script".into(),
                        )
                    })?;
                    let mut tap = DriftTap {
                        trace: ctx.trace,
                        script,
                        chan,
                        est,
                        drift,
                        blueprint: blueprint.as_ref(),
                        window: stream.as_mut().map(|s| &mut s.window),
                        n: ctx.geom.n,
                        inner: observer,
                    };
                    run(&mut engine, None, &mut tap)
                }
            }
        };
        if let Some(arena) = ctx.arena.as_mut() {
            engine.yield_arena(arena);
        }
        ctx.snap.pf_avg = Some(engine.pf_averages().to_vec());
        ctx.snap.metrics.merge(&report.metrics);
        ctx.snap.cursor += plan.txops * ctx.geom.per_txop;
        match spec {
            SchedulerSpec::Speculative => ctx.snap.speculative_txops += plan.txops,
            SchedulerSpec::Pf => ctx.snap.fallback_txops += plan.txops,
        }
        ctx.last_report = Some(report);
        Ok(StageFlow::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::InferenceConfig;
    use crate::emulator::EmulationConfig;
    use crate::engine::CellSnapshot;
    use crate::runtime::breaker::BreakerConfig;
    use blu_phy::cell::CellConfig;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};
    use blu_traces::schema::TestbedTrace;

    #[test]
    fn stage_kinds_order_matches_pipeline() {
        assert!(StageKind::Measure < StageKind::Infer);
        assert!(StageKind::Infer < StageKind::Generate);
        assert!(StageKind::Generate < StageKind::Schedule);
        assert!(StageKind::Schedule < StageKind::Transmit);
    }

    fn quick_trace() -> TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(10),
                ..CaptureConfig::testbed_default()
            },
            11,
        )
    }

    fn quick_ctx<'t, 's>(
        trace: &'t TestbedTrace,
        emulation: &'t EmulationConfig,
        inference: &'t InferenceConfig,
        backend: &'t crate::blueprint::InferenceBackend,
        snap: &'s mut CellSnapshot,
    ) -> CellContext<'t, 's> {
        CellContext::new(trace, None, emulation, inference, backend, snap)
    }

    #[test]
    fn out_of_order_composition_is_a_typed_error() {
        let trace = quick_trace();
        let emulation = EmulationConfig::new(CellConfig::testbed_siso());
        let inference = InferenceConfig::default();
        let backend = crate::blueprint::InferenceBackend::default();
        let mut snap = CellSnapshot::fresh(
            trace.ground_truth.n_clients,
            trace.access.len() as u64,
            0,
            0.0,
            BreakerConfig::default(),
        );
        let mut ctx = quick_ctx(&trace, &emulation, &inference, &backend, &mut snap);
        // Generate before Measure is out of order; the pipeline must
        // reject it as a value, not an abort.
        let mut generate = GenerateStage;
        let mut measure = MeasureStage {
            t_samples: 5,
            fidelity: MeasureFidelity::Strict { what: "test" },
        };
        let err = run_pipeline(
            &mut ctx,
            &mut [&mut generate, &mut measure],
            &mut crate::engine::NullObserver,
        )
        .expect_err("out-of-order composition must fail");
        assert!(
            matches!(&err, BluError::StageInvariant(msg) if msg.contains("out of order")),
            "{err:?}"
        );
    }

    #[test]
    fn transmit_without_planned_segment_is_a_typed_error() {
        let trace = quick_trace();
        let emulation = EmulationConfig::new(CellConfig::testbed_siso());
        let inference = InferenceConfig::default();
        let backend = crate::blueprint::InferenceBackend::default();
        let mut snap = CellSnapshot::fresh(
            trace.ground_truth.n_clients,
            trace.access.len() as u64,
            0,
            0.0,
            BreakerConfig::default(),
        );
        let mut ctx = quick_ctx(&trace, &emulation, &inference, &backend, &mut snap);
        let mut transmit = TransmitStage {
            feed: TransmitFeed::None,
        };
        let err = run_pipeline(
            &mut ctx,
            &mut [&mut transmit],
            &mut crate::engine::NullObserver,
        )
        .expect_err("transmit with no planned segment must fail");
        assert!(
            matches!(&err, BluError::StageInvariant(msg) if msg.contains("segment")),
            "{err:?}"
        );
    }
}
