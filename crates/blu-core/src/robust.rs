//! Degraded-mode BLU orchestration: the robust loop that survives a
//! changing, fault-ridden environment — and a failing process.
//!
//! The vanilla orchestrator ([`crate::orchestrator`]) assumes the
//! interference field is stationary for the whole run. This module
//! drops that assumption: it drives the two-phase loop against a
//! [`FaultyCapture`] in which hidden terminals appear, disappear and
//! drift mid-run and the observation path itself lies (pilot
//! misclassification, dropped reports — [`blu_sim::faults`]).
//!
//! The loop is a five-state machine:
//!
//! ```text
//!        ┌───────────── Measuring ◄────────────┐
//!        ▼                                     │ (probation over
//!   [infer verdict]                            │  AND breaker allows)
//!    │confident │degraded/low-confidence       │
//!    ▼          ▼                              │
//! Confident   Fallback ────────────────────────┘
//!    │(drift EWMA over threshold)
//!    ▼
//! Drifting → Remeasuring (shortened phase, estimator decayed, §3.7)
//! ```
//!
//! * **Measuring / Remeasuring** — run the Algorithm-1 plan against
//!   the trace, feeding the estimator through the observation-fault
//!   channel. Re-measurements are shorter (`remeasure_t_samples`) and
//!   the estimator is first *decayed* so fresh post-drift samples
//!   outweigh stale history (staleness windowing).
//! * **Confident** — speculative scheduling on the inferred
//!   blue-print, in segments of `check_interval_txops`; after each
//!   segment every client's observed CCA outcome updates a per-client
//!   mispredict EWMA against the blue-print's predicted access
//!   probability.
//! * **Drifting** — the EWMA crossed `drift_threshold`: the
//!   blue-print no longer describes the air. Recorded for
//!   observability, then immediately re-measure.
//! * **Fallback** — the inference verdict was
//!   [`InferenceVerdict::Degraded`] (or confidence fell below
//!   `confidence_floor`, or inference itself panicked): scheduling
//!   proceeds with plain proportional fair, which needs no topology
//!   knowledge, until a probation period expires **and** the per-cell
//!   [`CircuitBreaker`] allows a retry — repeated failures back off
//!   exponentially instead of burning a re-measurement phase on every
//!   probation cycle.
//!
//! ## Resilience runtime (see [`crate::runtime`])
//!
//! Every inference call runs guarded: scripted runtime faults
//! ([`blu_sim::faults::FaultKind::InferenceStall`], `InferencePanic`,
//! `StatPoison`) stall it, panic it, or corrupt its constraint
//! targets; poisoned targets are quarantined by
//! [`ConstraintSystem::sanitize`] before the solver sees them, and a
//! panic is contained at the call boundary as
//! [`BluError::Panicked`] — it routes to fallback like any other
//! failed inference and never crosses the cell boundary.
//!
//! The whole mutable loop state lives in a serializable
//! [`RobustSnapshot`]; with a [`CheckpointPolicy`] configured, the
//! loop atomically persists it on an interval and at clean shutdown,
//! and a later run can resume **bit-identically** from the snapshot
//! (all RNG streams — observation channel, poison source, breaker
//! jitter — are part of it).
//!
//! PF fairness state is carried across segments
//! ([`Emulator::seed_pf_averages`]), and measurement overhead is
//! charged against throughput in
//! [`RobustRunReport::effective_throughput_mbps`] — the number a
//! deployment would actually see.

use crate::blueprint::constraints::ConstraintSystem;
use crate::blueprint::infer::InferenceVerdict;
use crate::blueprint::{InferenceBackend, InferenceResult};
use crate::emulator::Emulator;
use crate::error::BluError;
use crate::joint::TopologyAccess;
use crate::measure::{measurement_schedule, OutcomeEstimator};
use crate::metrics::UplinkMetrics;
use crate::orchestrator::BluConfig;
use crate::runtime::breaker::{BreakerConfig, BreakerPoll, BreakerTransition, CircuitBreaker};
use crate::runtime::checkpoint::{load_robust_checkpoint, save_robust_checkpoint};
use crate::runtime::panic_message;
use crate::sched::{PfScheduler, SpeculativeScheduler};
use blu_sim::clientset::ClientSet;
use blu_sim::faults::ObservationChannel;
use blu_sim::rng::DetRng;
use blu_sim::time::SubframeIndex;
use blu_traces::faults::FaultyCapture;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Where the robust orchestrator currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrchestratorState {
    /// Initial full-length measurement phase.
    Measuring,
    /// Speculating on a blue-print whose drift score is below
    /// threshold.
    Confident,
    /// Drift detected; about to re-measure.
    Drifting,
    /// Shortened re-measurement phase (§3.7).
    Remeasuring,
    /// Blue-print unusable — scheduling with plain PF.
    Fallback,
}

impl std::fmt::Display for OrchestratorState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OrchestratorState::Measuring => "measuring",
            OrchestratorState::Confident => "confident",
            OrchestratorState::Drifting => "drifting",
            OrchestratorState::Remeasuring => "re-measuring",
            OrchestratorState::Fallback => "fallback",
        })
    }
}

/// Per-client mispredict tracker: an EWMA of the signed difference
/// between each observed CCA outcome (1 = accessed) and the
/// blue-print's predicted access probability. Under a correct
/// blue-print every per-client EWMA hovers around zero; a terminal
/// appearing, disappearing or drifting pulls its victims' EWMAs away
/// in either direction, so the score is the **maximum absolute**
/// per-client deviation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftMonitor {
    alpha: f64,
    dev: Vec<f64>,
    samples: u64,
}

impl DriftMonitor {
    /// New monitor over `n` clients with EWMA weight `alpha`.
    pub fn new(alpha: f64, n: usize) -> Self {
        DriftMonitor {
            alpha: alpha.clamp(0.0, 1.0),
            dev: vec![0.0; n],
            samples: 0,
        }
    }

    /// Feed one observed outcome for client `ue` against the
    /// blue-print's predicted access probability.
    pub fn observe(&mut self, ue: usize, accessed: bool, predicted: f64) {
        if ue >= self.dev.len() {
            return;
        }
        let p = if predicted.is_finite() {
            predicted.clamp(0.0, 1.0)
        } else {
            0.5
        };
        let x = if accessed { 1.0 } else { 0.0 };
        self.dev[ue] += self.alpha * ((x - p) - self.dev[ue]);
        self.samples += 1;
    }

    /// Current drift score: the largest per-client |EWMA| deviation.
    pub fn score(&self) -> f64 {
        self.dev.iter().fold(0.0_f64, |m, d| m.max(d.abs()))
    }

    /// Observations consumed since the last reset.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Forget everything (called after re-blue-printing).
    pub fn reset(&mut self) {
        self.dev.iter_mut().for_each(|d| *d = 0.0);
        self.samples = 0;
    }
}

/// Where and how often the loop persists its state.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory holding the per-cell snapshot files
    /// (`cell-<index>.json`).
    pub dir: PathBuf,
    /// Save whenever the cursor has advanced this many sub-frames
    /// since the last save (0 = only at clean shutdown). A final
    /// save always happens when the run completes.
    pub every_subframes: u64,
    /// Resume from an existing snapshot in `dir` if one is present
    /// (a fresh run starts when the file is absent).
    pub resume: bool,
}

/// Configuration of the robust loop.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// The underlying two-phase configuration (cell, `T`, inference).
    pub blu: BluConfig,
    /// Minimum blue-print confidence (`1 − residual fraction`) to
    /// speculate on; below it the loop falls back to PF.
    pub confidence_floor: f64,
    /// Drift-score threshold that triggers re-measurement.
    pub drift_threshold: f64,
    /// EWMA weight of the drift monitor.
    pub drift_alpha: f64,
    /// Ignore the drift score until this many outcomes were seen
    /// (EWMA warm-up).
    pub min_drift_samples: u64,
    /// `T` for shortened re-measurement phases (§3.7 — the estimator
    /// stays warm, so far fewer fresh samples suffice).
    pub remeasure_t_samples: u64,
    /// Speculative/fallback segment length between drift checks.
    pub check_interval_txops: u64,
    /// TxOPs spent in PF fallback before measurement is retried.
    pub fallback_probation_txops: u64,
    /// Estimator count-retention factor applied before each
    /// re-measurement (see [`OutcomeEstimator::decay`]).
    pub estimator_keep: f64,
    /// Seed of the observation-fault channel RNG (the poison and
    /// breaker-jitter streams are derived from it).
    pub seed: u64,
    /// Inference engine used at every (re-)blue-printing point.
    pub backend: InferenceBackend,
    /// Per-cell circuit breaker gating re-measurement retries after
    /// failed inferences.
    pub breaker: BreakerConfig,
    /// Optional checkpoint/restore policy (None = never persist).
    pub checkpoint: Option<CheckpointPolicy>,
}

impl RobustConfig {
    /// Defaults tuned for the testbed-scale scenarios of the paper.
    pub fn new(blu: BluConfig) -> Self {
        RobustConfig {
            blu,
            confidence_floor: 0.35,
            drift_threshold: 0.35,
            drift_alpha: 0.01,
            min_drift_samples: 1_000,
            remeasure_t_samples: 15,
            check_interval_txops: 25,
            fallback_probation_txops: 50,
            estimator_keep: 0.25,
            seed: 0xD1F7,
            backend: InferenceBackend::Gradient,
            breaker: BreakerConfig::default(),
            checkpoint: None,
        }
    }

    /// Up-front validation of every knob that would otherwise fail
    /// deep inside the loop (or silently wedge it).
    pub fn validate(&self) -> Result<(), BluError> {
        if self.check_interval_txops == 0 {
            return Err(BluError::InvalidConfig(
                "check_interval_txops must be positive".into(),
            ));
        }
        self.blu.inference.validate()?;
        if let InferenceBackend::Mcmc { config, .. } = &self.backend {
            config.validate()?;
        }
        self.breaker.validate()?;
        Ok(())
    }
}

/// One state-machine transition, for post-mortem inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateTransition {
    /// Trace sub-frame at which the state was entered.
    pub at_subframe: u64,
    /// The state entered.
    pub state: OrchestratorState,
}

/// Everything a robust run produces.
#[derive(Debug, Clone)]
pub struct RobustRunReport {
    /// Merged scheduling-phase metrics (speculative + fallback
    /// segments; measurement sub-frames carry no counted payload).
    pub metrics: UplinkMetrics,
    /// Total sub-frames spent measuring (initial + re-measurements).
    pub measurement_subframes: u64,
    /// Number of re-measurement phases triggered.
    pub n_remeasurements: u32,
    /// TxOPs spent speculating on a blue-print.
    pub speculative_txops: u64,
    /// TxOPs spent in PF fallback.
    pub fallback_txops: u64,
    /// The full state history, in order.
    pub transitions: Vec<StateTransition>,
    /// Verdict of every inference attempt, in order (a contained
    /// panic is recorded as [`InferenceVerdict::Degraded`]).
    pub verdicts: Vec<InferenceVerdict>,
    /// Confidence of the last blue-print in force (0 when none).
    pub final_confidence: f64,
    /// Largest drift score observed across the run.
    pub peak_drift: f64,
    /// Wall-clock microseconds spent inside blueprint inference
    /// across the whole run (initial + every re-measurement).
    /// Timing only — excluded from the determinism contract.
    pub inference_micros: u64,
    /// Circuit-breaker state changes, in order.
    pub breaker_transitions: Vec<BreakerTransition>,
    /// Inference panics contained at the guarded call boundary.
    pub inference_panics: u32,
    /// Inference calls that ran out of their deadline budget
    /// (returned a best-so-far blueprint with `completed = false`).
    pub deadline_misses: u32,
    /// Constraint targets quarantined by
    /// [`ConstraintSystem::sanitize`] before inference.
    pub quarantined_constraints: u64,
}

impl RobustRunReport {
    /// Throughput with measurement overhead charged: delivered bits
    /// over *all* elapsed sub-frames, scheduled or measuring. This is
    /// the honest number for comparing a re-measuring loop against a
    /// never-measuring baseline.
    pub fn effective_throughput_mbps(&self) -> f64 {
        let total = self.metrics.subframes + self.measurement_subframes;
        if total == 0 {
            0.0
        } else {
            self.metrics.bits_delivered / (total as f64 * 1_000.0)
        }
    }

    /// The state the run ended in.
    pub fn final_state(&self) -> OrchestratorState {
        self.transitions
            .last()
            .map(|t| t.state)
            .unwrap_or(OrchestratorState::Measuring)
    }
}

/// The complete mutable state of one cell's robust loop — everything
/// that must survive a process restart for the resumed run to be
/// bit-identical to an uninterrupted one. Persisted via
/// [`crate::runtime::checkpoint`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustSnapshot {
    /// Clients in the capture (resume-mismatch guard).
    pub n_clients: u64,
    /// Sub-frames in the capture (resume-mismatch guard).
    pub trace_len: u64,
    /// `RobustConfig::seed` the run started with (resume-mismatch
    /// guard: a different seed means different RNG streams).
    pub config_seed: u64,
    /// Trace cursor, in sub-frames.
    pub cursor: u64,
    /// Current machine state.
    pub state: OrchestratorState,
    /// Whether the run has consumed the trace.
    pub done: bool,
    /// Accumulated access statistics.
    pub est: OutcomeEstimator,
    /// Observation-fault channel (carries its RNG).
    pub chan: ObservationChannel,
    /// RNG stream feeding scripted constraint poisoning.
    pub poison_rng: DetRng,
    /// Drift monitor EWMAs.
    pub drift: DriftMonitor,
    /// Per-cell circuit breaker (state, backoff, jitter RNG,
    /// transition history).
    pub breaker: CircuitBreaker,
    /// Merged scheduling metrics so far.
    pub metrics: UplinkMetrics,
    /// State history so far.
    pub transitions: Vec<StateTransition>,
    /// Inference verdicts so far.
    pub verdicts: Vec<InferenceVerdict>,
    /// Blue-print currently in force.
    pub blueprint: Option<InferenceResult>,
    /// PF average-rate state carried across emulator segments.
    pub pf_avg: Option<Vec<f64>>,
    /// Sub-frames spent measuring so far.
    pub measurement_subframes: u64,
    /// Re-measurement phases so far.
    pub n_remeasurements: u32,
    /// TxOPs spent speculating so far.
    pub speculative_txops: u64,
    /// TxOPs spent in PF fallback so far.
    pub fallback_txops: u64,
    /// TxOPs of fallback probation remaining.
    pub probation_left: u64,
    /// Largest drift score seen so far.
    pub peak_drift: f64,
    /// Wall-clock inference time so far (timing only — excluded from
    /// the determinism contract and therefore from snapshot
    /// equality-based determinism tests).
    pub inference_micros: u64,
    /// Contained inference panics so far.
    pub inference_panics: u32,
    /// Deadline-bounded inferences that returned incomplete so far.
    pub deadline_misses: u32,
    /// Constraint targets quarantined so far.
    pub quarantined_constraints: u64,
}

/// One cell's robust loop, decomposed into resumable steps. Public
/// API stays [`run_blu_robust`]/[`run_robust_fleet`]; the driver
/// exists so checkpointing can interleave with stepping and so tests
/// can kill and resume a run mid-flight.
pub(crate) struct RobustDriver<'a> {
    capture: &'a FaultyCapture,
    config: &'a RobustConfig,
    n: usize,
    trace_len: u64,
    per_txop: u64,
    dl: u64,
    ul: u64,
    k_max: usize,
    pub(crate) snap: RobustSnapshot,
}

impl<'a> RobustDriver<'a> {
    /// Start a fresh run.
    pub(crate) fn new(
        capture: &'a FaultyCapture,
        config: &'a RobustConfig,
    ) -> Result<Self, BluError> {
        let trace = &capture.trace;
        trace.validate().map_err(BluError::InvalidTrace)?;
        config.validate()?;
        let n = trace.ground_truth.n_clients;
        let trace_len = trace.access.len() as u64;
        let k_max = config.blu.emulation.cell.max_ues_per_subframe;

        // The initial measurement phase must fit; later phases that
        // run off the end of the trace simply end the run in whatever
        // state it was in (there is no more air to schedule anyway).
        {
            let plan = measurement_schedule(n, k_max, config.blu.t_samples)?;
            if plan.t_max() > trace_len {
                return Err(BluError::TraceTooShort {
                    what: "robust initial measurement phase",
                    needed: plan.t_max(),
                    available: trace_len,
                });
            }
        }

        let snap = RobustSnapshot {
            n_clients: n as u64,
            trace_len,
            config_seed: config.seed,
            cursor: 0,
            state: OrchestratorState::Measuring,
            done: false,
            est: OutcomeEstimator::new(n),
            chan: ObservationChannel::new(DetRng::seed_from_u64(config.seed ^ 0x0B5E_7ACE)),
            poison_rng: DetRng::seed_from_u64(config.seed ^ 0x7015_0A11),
            drift: DriftMonitor::new(config.drift_alpha, n),
            breaker: CircuitBreaker::new(config.breaker, config.seed),
            metrics: UplinkMetrics::new(n),
            transitions: vec![StateTransition {
                at_subframe: 0,
                state: OrchestratorState::Measuring,
            }],
            verdicts: Vec::new(),
            blueprint: None,
            pf_avg: None,
            measurement_subframes: 0,
            n_remeasurements: 0,
            speculative_txops: 0,
            fallback_txops: 0,
            probation_left: 0,
            peak_drift: 0.0,
            inference_micros: 0,
            inference_panics: 0,
            deadline_misses: 0,
            quarantined_constraints: 0,
        };
        Ok(RobustDriver::with_snapshot(capture, config, snap))
    }

    /// Continue from a restored snapshot, guarding against resuming
    /// against the wrong capture or a reconfigured run.
    pub(crate) fn resume(
        capture: &'a FaultyCapture,
        config: &'a RobustConfig,
        snap: RobustSnapshot,
    ) -> Result<Self, BluError> {
        let trace = &capture.trace;
        trace.validate().map_err(BluError::InvalidTrace)?;
        config.validate()?;
        let n = trace.ground_truth.n_clients as u64;
        let trace_len = trace.access.len() as u64;
        if snap.n_clients != n || snap.trace_len != trace_len {
            return Err(BluError::Checkpoint(format!(
                "snapshot was taken against a different capture \
                 ({} clients / {} sub-frames, run has {} / {})",
                snap.n_clients, snap.trace_len, n, trace_len
            )));
        }
        if snap.config_seed != config.seed {
            return Err(BluError::Checkpoint(format!(
                "snapshot seed {:#x} does not match configured seed {:#x}",
                snap.config_seed, config.seed
            )));
        }
        Ok(RobustDriver::with_snapshot(capture, config, snap))
    }

    fn with_snapshot(
        capture: &'a FaultyCapture,
        config: &'a RobustConfig,
        snap: RobustSnapshot,
    ) -> Self {
        let n = capture.trace.ground_truth.n_clients;
        RobustDriver {
            capture,
            config,
            n,
            trace_len: capture.trace.access.len() as u64,
            per_txop: config.blu.emulation.cell.txop.total_subframes(),
            dl: config.blu.emulation.cell.txop.dl_subframes,
            ul: config.blu.emulation.cell.txop.ul_subframes,
            k_max: config.blu.emulation.cell.max_ues_per_subframe,
            snap,
        }
    }

    fn enter(&mut self, next: OrchestratorState) {
        self.snap.state = next;
        self.snap.transitions.push(StateTransition {
            at_subframe: self.snap.cursor,
            state: next,
        });
    }

    /// Run inference under the resilience guards: scripted poisoning
    /// is injected and quarantined, scripted stalls repeat the solve,
    /// and a panic (scripted or genuine) is contained at this
    /// boundary.
    fn guarded_blueprint(&mut self) -> Result<InferenceResult, BluError> {
        let rt = self.capture.script.runtime_state_at(self.snap.cursor);
        let mut sys = ConstraintSystem::from_measurements(self.snap.est.stats());
        if rt.poison_rate > 0.0 {
            for t in sys.individual.iter_mut().chain(sys.pair.iter_mut()) {
                if self.snap.poison_rng.chance(rt.poison_rate) {
                    *t = f64::NAN;
                }
            }
            for tr in sys.triples.iter_mut() {
                if self.snap.poison_rng.chance(rt.poison_rate) {
                    tr.target = f64::NAN;
                }
            }
        }
        self.snap.quarantined_constraints += sys.sanitize() as u64;

        let reps = rt.stall_factor.max(1);
        let inject_panic = rt.panic;
        let backend = &self.config.backend;
        let icfg = &self.config.blu.inference;
        let t0 = std::time::Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected inference panic");
            }
            let mut result = backend.infer(&sys, icfg);
            // A scripted stall models a slow solver by repeating the
            // (deterministic) solve; the last result is returned.
            for _ in 1..reps {
                result = backend.infer(&sys, icfg);
            }
            result
        }))
        .map_err(|p| BluError::Panicked(panic_message(p.as_ref())));
        self.snap.inference_micros += t0.elapsed().as_micros() as u64;
        outcome
    }

    /// Execute one state-machine arm. Returns `Ok(false)` once the
    /// trace is exhausted (the run is complete).
    pub(crate) fn step(&mut self) -> Result<bool, BluError> {
        if self.snap.done {
            return Ok(false);
        }
        match self.snap.state {
            OrchestratorState::Measuring | OrchestratorState::Remeasuring => {
                let t = if self.snap.state == OrchestratorState::Measuring {
                    self.config.blu.t_samples
                } else {
                    self.config.remeasure_t_samples
                };
                let plan = measurement_schedule(self.n, self.k_max, t)?;
                if self.snap.cursor + plan.t_max() > self.trace_len {
                    self.snap.done = true;
                    return Ok(false);
                }
                let trace = &self.capture.trace;
                for (i, &scheduled) in plan.subframes.iter().enumerate() {
                    let sf = self.snap.cursor + i as u64;
                    let accessible = trace.access.at(SubframeIndex(sf));
                    let obs_state = self.capture.script.obs_state_at(sf);
                    if let Some((obs, acc)) = self.snap.chan.corrupt(
                        obs_state,
                        scheduled,
                        accessible.intersection(scheduled),
                    ) {
                        self.snap.est.stats_mut().record(obs, acc);
                    }
                }
                self.snap.cursor += plan.t_max();
                self.snap.measurement_subframes += plan.t_max();

                match self.guarded_blueprint() {
                    Ok(result) => {
                        if !result.completed {
                            self.snap.deadline_misses += 1;
                        }
                        self.snap.verdicts.push(result.verdict);
                        let usable = result.verdict != InferenceVerdict::Degraded
                            && result.confidence() >= self.config.confidence_floor;
                        if usable {
                            self.snap.breaker.record_success(self.snap.cursor);
                            self.snap.blueprint = Some(result);
                            self.snap.drift.reset();
                            self.enter(OrchestratorState::Confident);
                        } else {
                            self.snap.breaker.record_failure(self.snap.cursor);
                            self.snap.blueprint = None;
                            self.snap.probation_left = self.config.fallback_probation_txops;
                            self.enter(OrchestratorState::Fallback);
                        }
                    }
                    Err(e) => {
                        if matches!(e, BluError::Panicked(_)) {
                            self.snap.inference_panics += 1;
                        }
                        self.snap.verdicts.push(InferenceVerdict::Degraded);
                        self.snap.breaker.record_failure(self.snap.cursor);
                        self.snap.blueprint = None;
                        self.snap.probation_left = self.config.fallback_probation_txops;
                        self.enter(OrchestratorState::Fallback);
                    }
                }
            }
            OrchestratorState::Confident | OrchestratorState::Fallback => {
                let room = (self.trace_len - self.snap.cursor) / self.per_txop;
                let txops = self.config.check_interval_txops.min(room);
                if txops == 0 {
                    self.snap.done = true;
                    return Ok(false);
                }
                let trace = &self.capture.trace;
                let mut cfg = self.config.blu.emulation.clone();
                cfg.n_txops = txops;
                cfg.start_subframe = self.snap.cursor;
                let mut emu = Emulator::new(trace, cfg)?;
                if let Some(avg) = &self.snap.pf_avg {
                    emu.seed_pf_averages(avg);
                }
                let seg = if self.snap.state == OrchestratorState::Confident {
                    let result = self
                        .snap
                        .blueprint
                        .as_ref()
                        .expect("Confident implies a blueprint");
                    let access = TopologyAccess::new(&result.topology);
                    let mut sched = SpeculativeScheduler::new(&access);
                    emu.run(&mut sched, None)
                } else {
                    emu.run(&mut PfScheduler, None)
                };
                self.snap.pf_avg = Some(emu.pf_averages().to_vec());
                self.snap.metrics.merge(&seg.metrics);

                // Observed CCA outcomes keep feeding the estimator
                // (warm re-measurements, §3.7) and — when a blue-print
                // is in force — the drift monitor. Only UL sub-frames
                // are observable: the eNB transmits during DL.
                for t_i in 0..txops {
                    for u in 0..self.ul {
                        let sf = self.snap.cursor + t_i * self.per_txop + self.dl + u;
                        let accessible = trace.access.at(SubframeIndex(sf));
                        let obs_state = self.capture.script.obs_state_at(sf);
                        let all = ClientSet::all(self.n);
                        if let Some((obs, acc)) = self.snap.chan.corrupt(obs_state, all, accessible)
                        {
                            self.snap.est.stats_mut().record(obs, acc);
                            if let Some(result) = &self.snap.blueprint {
                                for ue in obs.iter() {
                                    self.snap.drift.observe(
                                        ue,
                                        acc.contains(ue),
                                        result.topology.p_individual(ue),
                                    );
                                }
                            }
                        }
                    }
                }
                self.snap.cursor += txops * self.per_txop;

                if self.snap.state == OrchestratorState::Confident {
                    self.snap.speculative_txops += txops;
                    self.snap.peak_drift = self.snap.peak_drift.max(self.snap.drift.score());
                    if self.snap.drift.samples() >= self.config.min_drift_samples
                        && self.snap.drift.score() > self.config.drift_threshold
                    {
                        self.enter(OrchestratorState::Drifting);
                    }
                } else {
                    self.snap.fallback_txops += txops;
                    self.snap.probation_left = self.snap.probation_left.saturating_sub(txops);
                    if self.snap.probation_left == 0 {
                        // Probation over — but a tripped breaker gates
                        // the (expensive) re-measurement retry behind
                        // its backoff: stay in fallback without a
                        // transition until the breaker half-opens.
                        match self.snap.breaker.poll(self.snap.cursor) {
                            BreakerPoll::Wait(wait_subframes) => {
                                self.snap.probation_left = (wait_subframes / self.per_txop).max(1);
                            }
                            BreakerPoll::Allow => {
                                self.snap.est.decay(self.config.estimator_keep);
                                self.snap.n_remeasurements += 1;
                                self.enter(OrchestratorState::Remeasuring);
                            }
                        }
                    }
                }
            }
            OrchestratorState::Drifting => {
                // Transitional: decay stale statistics and go
                // straight into the shortened re-measurement.
                self.snap.est.decay(self.config.estimator_keep);
                self.snap.n_remeasurements += 1;
                self.enter(OrchestratorState::Remeasuring);
            }
        }
        Ok(true)
    }

    /// Finish: fold the snapshot into the public report.
    pub(crate) fn into_report(self) -> RobustRunReport {
        let snap = self.snap;
        RobustRunReport {
            metrics: snap.metrics,
            measurement_subframes: snap.measurement_subframes,
            n_remeasurements: snap.n_remeasurements,
            speculative_txops: snap.speculative_txops,
            fallback_txops: snap.fallback_txops,
            transitions: snap.transitions,
            verdicts: snap.verdicts,
            final_confidence: snap
                .blueprint
                .as_ref()
                .map(|r| r.confidence())
                .unwrap_or(0.0),
            peak_drift: snap.peak_drift,
            inference_micros: snap.inference_micros,
            breaker_transitions: snap.breaker.transitions().to_vec(),
            inference_panics: snap.inference_panics,
            deadline_misses: snap.deadline_misses,
            quarantined_constraints: snap.quarantined_constraints,
        }
    }
}

/// Run the robust loop over a fault-scripted capture until the trace
/// is exhausted.
///
/// Injected faults never panic this function: an inference failure on
/// corrupted statistics surfaces as a [`InferenceVerdict::Degraded`]
/// verdict, an injected (or genuine) inference panic is contained as
/// [`BluError::Panicked`] and both route into PF fallback behind the
/// circuit breaker; a trace too short for even one measurement phase
/// is a typed [`BluError`]. With [`RobustConfig::checkpoint`] set the
/// loop persists (and optionally resumes) its state as cell 0.
pub fn run_blu_robust(
    capture: &FaultyCapture,
    config: &RobustConfig,
) -> Result<RobustRunReport, BluError> {
    run_blu_robust_cell(capture, config, 0)
}

/// [`run_blu_robust`] with an explicit cell index, which names the
/// checkpoint file (`cell-<index>.json`) when a
/// [`CheckpointPolicy`] is configured. Fleet entry points call this
/// with each capture's position.
pub fn run_blu_robust_cell(
    capture: &FaultyCapture,
    config: &RobustConfig,
    cell: usize,
) -> Result<RobustRunReport, BluError> {
    let ckpt_path = config
        .checkpoint
        .as_ref()
        .map(|p| p.dir.join(format!("cell-{cell}.json")));
    let mut driver = match (&config.checkpoint, &ckpt_path) {
        (Some(policy), Some(path)) if policy.resume && path.exists() => {
            let snap = load_robust_checkpoint(path)?;
            RobustDriver::resume(capture, config, snap)?
        }
        _ => RobustDriver::new(capture, config)?,
    };
    let mut last_saved = driver.snap.cursor;
    loop {
        let more = driver.step()?;
        if let (Some(policy), Some(path)) = (&config.checkpoint, &ckpt_path) {
            let interval_due = policy.every_subframes > 0
                && driver.snap.cursor.saturating_sub(last_saved) >= policy.every_subframes;
            // Clean shutdown always persists, so a later `--resume`
            // returns the completed run instead of recomputing it.
            if interval_due || !more {
                save_robust_checkpoint(path, &driver.snap)?;
                last_saved = driver.snap.cursor;
            }
        }
        if !more {
            break;
        }
    }
    Ok(driver.into_report())
}

/// Run the robust loop over a fleet of captures (one per cell) in
/// parallel across the worker pool.
///
/// Each cell's run is an independent pure function of its capture and
/// the shared config, and the rayon shim joins workers in spawn
/// order, so the reports come back **in input order** and — apart
/// from the wall-clock [`RobustRunReport::inference_micros`] field —
/// identical to [`run_robust_fleet_sequential`].
///
/// **Isolation contract:** any panic inside a cell's run is contained
/// inside that cell's worker closure (the rayon shim would otherwise
/// abort the whole join) and surfaces as that cell's
/// [`BluError::Panicked`]; the other cells' reports are exactly what
/// they would have been without the faulty neighbour.
pub fn run_robust_fleet(
    captures: &[FaultyCapture],
    config: &RobustConfig,
) -> Vec<Result<RobustRunReport, BluError>> {
    use rayon::prelude::*;
    let indexed: Vec<(usize, &FaultyCapture)> = captures.iter().enumerate().collect();
    indexed
        .par_iter()
        .map(|&(cell, cap)| {
            catch_unwind(AssertUnwindSafe(|| run_blu_robust_cell(cap, config, cell)))
                .unwrap_or_else(|p| Err(BluError::Panicked(panic_message(p.as_ref()))))
        })
        .collect()
}

/// Sequential reference for [`run_robust_fleet`] — kept alive for
/// differential testing and single-thread profiling.
pub fn run_robust_fleet_sequential(
    captures: &[FaultyCapture],
    config: &RobustConfig,
) -> Vec<Result<RobustRunReport, BluError>> {
    captures
        .iter()
        .enumerate()
        .map(|(cell, cap)| {
            catch_unwind(AssertUnwindSafe(|| run_blu_robust_cell(cap, config, cell)))
                .unwrap_or_else(|p| Err(BluError::Panicked(panic_message(p.as_ref()))))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::breaker::BreakerState;
    use crate::runtime::checkpoint::{RobustCheckpoint, CHECKPOINT_VERSION};
    use blu_phy::cell::CellConfig;
    use blu_sim::clientset::ClientSet;
    use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
    use blu_sim::time::Micros;
    use blu_traces::capture::CaptureConfig;
    use blu_traces::faults::capture_with_faults;

    fn capture(script: FaultScript, secs: u64, seed: u64) -> FaultyCapture {
        capture_with_faults(
            &CaptureConfig {
                duration: Micros::from_secs(secs),
                q_range: (0.25, 0.55),
                ..CaptureConfig::testbed_default()
            },
            &script,
            seed,
        )
        .unwrap()
    }

    fn quick_config() -> RobustConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let emu = crate::emulator::EmulationConfig::new(cell);
        RobustConfig::new(BluConfig::new(emu))
    }

    /// Reports compared field by field, excluding wall-clock timing.
    fn assert_reports_identical(a: &RobustRunReport, b: &RobustRunReport) {
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.measurement_subframes, b.measurement_subframes);
        assert_eq!(a.n_remeasurements, b.n_remeasurements);
        assert_eq!(a.speculative_txops, b.speculative_txops);
        assert_eq!(a.fallback_txops, b.fallback_txops);
        assert_eq!(a.final_confidence.to_bits(), b.final_confidence.to_bits());
        assert_eq!(a.peak_drift.to_bits(), b.peak_drift.to_bits());
        assert_eq!(a.breaker_transitions, b.breaker_transitions);
        assert_eq!(a.inference_panics, b.inference_panics);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.quarantined_constraints, b.quarantined_constraints);
    }

    #[test]
    fn clean_run_stays_confident() {
        let cap = capture(FaultScript::none(), 60, 11);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert_eq!(report.final_state(), OrchestratorState::Confident);
        assert_eq!(report.n_remeasurements, 0);
        assert_eq!(report.fallback_txops, 0);
        assert!(report.speculative_txops > 0);
        assert!(report.metrics.bits_delivered > 0.0);
        assert!(report.final_confidence > 0.5);
        // The resilience layer is invisible on the clean path.
        assert!(report.breaker_transitions.is_empty());
        assert_eq!(report.inference_panics, 0);
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.quarantined_constraints, 0);
    }

    #[test]
    fn appearance_triggers_drift_and_remeasure() {
        // A strong new terminal blankets four clients mid-run.
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 20_000,
            kind: FaultKind::HtAppear {
                q: 0.6,
                edges: ClientSet::from_iter([0, 1, 2, 3]),
            },
        }]);
        let cap = capture(script, 90, 12);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(
            report.n_remeasurements >= 1,
            "appearance went undetected: peak drift {}",
            report.peak_drift
        );
        assert!(report.peak_drift > 0.35);
        assert!(report
            .transitions
            .iter()
            .any(|t| t.state == OrchestratorState::Drifting));
        // After re-measuring the loop should have found its footing
        // again rather than dying in fallback.
        assert_eq!(report.final_state(), OrchestratorState::Confident);
    }

    #[test]
    fn clean_run_never_spuriously_remeasures() {
        let cap = capture(FaultScript::none(), 90, 13);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert_eq!(
            report.n_remeasurements, 0,
            "false drift alarm (peak {})",
            report.peak_drift
        );
    }

    #[test]
    fn misclassification_does_not_panic_and_still_delivers() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::MisclassifyRate { rate: 0.05 },
        }]);
        let cap = capture(script, 60, 14);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(report.metrics.bits_delivered > 0.0);
        assert!(!report.verdicts.is_empty());
    }

    #[test]
    fn heavy_observation_faults_route_to_fallback_not_panic() {
        // Half the outcomes flipped and half the reports dropped: the
        // statistics are garbage; the loop must keep scheduling.
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 0,
                kind: FaultKind::MisclassifyRate { rate: 0.5 },
            },
            FaultEvent {
                at_subframe: 0,
                kind: FaultKind::DropRate { rate: 0.5 },
            },
        ]);
        let cap = capture(script, 60, 15);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(report.metrics.bits_delivered > 0.0);
        // Either the inference survived the noise or fallback ran —
        // both are acceptable; a panic is not.
        assert!(report.fallback_txops > 0 || report.speculative_txops > 0);
    }

    #[test]
    fn deterministic() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 15_000,
            kind: FaultKind::QDrift { ht: 0, q: 0.9 },
        }]);
        let cap = capture(script, 60, 16);
        let cfg = quick_config();
        let a = run_blu_robust(&cap, &cfg).unwrap();
        let b = run_blu_robust(&cap, &cfg).unwrap();
        assert_reports_identical(&a, &b);
    }

    #[test]
    fn too_short_trace_is_a_typed_error() {
        let cap = capture(FaultScript::none(), 1, 17);
        let mut cfg = quick_config();
        cfg.blu.t_samples = 5_000;
        match run_blu_robust(&cap, &cfg) {
            Err(BluError::TraceTooShort { .. }) => {}
            other => panic!("expected TraceTooShort, got {other:?}"),
        }
    }

    #[test]
    fn effective_throughput_charges_measurement() {
        let cap = capture(FaultScript::none(), 60, 18);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(report.effective_throughput_mbps() <= report.metrics.throughput_mbps());
        assert!(report.effective_throughput_mbps() > 0.0);
    }

    #[test]
    fn fleet_matches_sequential_reference() {
        let caps: Vec<FaultyCapture> = (0..3)
            .map(|s| capture(FaultScript::none(), 60, 20 + s))
            .collect();
        let cfg = quick_config();
        let par = run_robust_fleet(&caps, &cfg);
        let seq = run_robust_fleet_sequential(&caps, &cfg);
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            // Everything but wall-clock timing must be identical.
            assert_reports_identical(a, b);
        }
    }

    #[test]
    fn mcmc_backend_completes_and_reports_timing() {
        use crate::blueprint::McmcConfig;
        let cap = capture(FaultScript::none(), 60, 19);
        let mut cfg = quick_config();
        cfg.backend = InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: 3_000,
                ..Default::default()
            },
            seed: 7,
        };
        let report = run_blu_robust(&cap, &cfg).unwrap();
        assert!(report.metrics.bits_delivered > 0.0);
        assert!(!report.verdicts.is_empty());
        assert!(report.inference_micros > 0);
    }

    #[test]
    fn degenerate_mcmc_backend_is_rejected_up_front() {
        use crate::blueprint::McmcConfig;
        let cap = capture(FaultScript::none(), 60, 19);
        let mut cfg = quick_config();
        cfg.backend = InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: 0,
                ..Default::default()
            },
            seed: 7,
        };
        assert!(matches!(
            run_blu_robust(&cap, &cfg),
            Err(BluError::InvalidConfig(_))
        ));
    }

    // ------------------------------------------------------------------
    // Resilience runtime: panic isolation, circuit breaking, poison
    // quarantine, checkpoint/restore.
    // ------------------------------------------------------------------

    fn panic_script() -> FaultScript {
        FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::InferencePanic { active: true },
        }])
    }

    #[test]
    fn injected_panic_is_contained_and_breaker_opens() {
        let cap = capture(panic_script(), 60, 30);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        // Every inference attempt panicked, was contained, and routed
        // to PF fallback.
        assert!(report.inference_panics >= 1);
        assert_eq!(report.speculative_txops, 0);
        assert!(report.fallback_txops > 0);
        assert!(report.metrics.bits_delivered > 0.0, "PF kept scheduling");
        assert_eq!(report.final_state(), OrchestratorState::Fallback);
        assert!(report
            .verdicts
            .iter()
            .all(|v| *v == InferenceVerdict::Degraded));
        // Threshold is 2: the second failure must have tripped the
        // breaker open.
        assert!(report
            .breaker_transitions
            .iter()
            .any(|t| t.to == BreakerState::Open));
    }

    #[test]
    fn breaker_backoff_spaces_out_retries() {
        // With vs without the breaker gating retries, the same
        // always-panicking run must attempt fewer inferences.
        let cap = capture(panic_script(), 120, 31);
        let gated = quick_config();
        let mut ungated = quick_config();
        // An effectively-never-tripping breaker reproduces the bare
        // probation cycle.
        ungated.breaker.failure_threshold = u32::MAX;
        let with_breaker = run_blu_robust(&cap, &gated).unwrap();
        let without = run_blu_robust(&cap, &ungated).unwrap();
        assert!(
            with_breaker.verdicts.len() < without.verdicts.len(),
            "breaker must reduce re-measurement probes: {} vs {}",
            with_breaker.verdicts.len(),
            without.verdicts.len()
        );
        assert!(without.breaker_transitions.is_empty());
    }

    #[test]
    fn stat_poison_is_quarantined_not_fatal() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::StatPoison { rate: 1.0 },
        }]);
        let cap = capture(script, 60, 32);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(
            report.quarantined_constraints > 0,
            "poisoned targets must be counted"
        );
        assert_eq!(report.inference_panics, 0, "NaNs must never panic");
        assert!(report.metrics.bits_delivered > 0.0);
    }

    #[test]
    fn inference_stall_changes_timing_not_results() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::InferenceStall { factor: 3 },
        }]);
        let clean = capture(FaultScript::none(), 60, 33);
        let stalled = capture(script, 60, 33);
        let cfg = quick_config();
        let a = run_blu_robust(&clean, &cfg).unwrap();
        let b = run_blu_robust(&stalled, &cfg).unwrap();
        // The stall repeats a deterministic solve: results identical.
        assert_reports_identical(&a, &b);
    }

    /// The fleet acceptance criterion: 8 cells, 2 of them faulty (one
    /// panicking, one panicking *and* 10× stalled). The fleet must
    /// complete, the healthy six must be byte-identical to a
    /// fault-free run, and the faulty two must sit in PF fallback
    /// behind an open breaker — no panic crosses the batch boundary.
    #[test]
    fn fleet_isolates_faulty_cells() {
        let faulty_script = |stall: bool| {
            let mut events = vec![FaultEvent {
                at_subframe: 0,
                kind: FaultKind::InferencePanic { active: true },
            }];
            if stall {
                events.push(FaultEvent {
                    at_subframe: 0,
                    kind: FaultKind::InferenceStall { factor: 10 },
                });
            }
            FaultScript::new(events)
        };
        let clean_caps: Vec<FaultyCapture> = (0..8)
            .map(|s| capture(FaultScript::none(), 45, 40 + s))
            .collect();
        let faulty_caps: Vec<FaultyCapture> = (0..8)
            .map(|s| {
                let script = match s {
                    2 => faulty_script(false),
                    5 => faulty_script(true),
                    _ => FaultScript::none(),
                };
                capture(script, 45, 40 + s)
            })
            .collect();
        // Runtime faults must not perturb the captured air itself.
        for (a, b) in clean_caps.iter().zip(&faulty_caps) {
            assert_eq!(a.trace.access.len(), b.trace.access.len());
        }
        let cfg = quick_config();
        let clean = run_robust_fleet(&clean_caps, &cfg);
        let mixed = run_robust_fleet(&faulty_caps, &cfg);
        assert_eq!(mixed.len(), 8, "fleet must complete");
        for i in 0..8 {
            let m = mixed[i].as_ref().unwrap();
            if i == 2 || i == 5 {
                assert!(m.inference_panics >= 1, "cell {i} must contain panics");
                assert_eq!(m.speculative_txops, 0);
                assert_eq!(m.final_state(), OrchestratorState::Fallback);
                assert!(
                    m.breaker_transitions
                        .iter()
                        .any(|t| t.to == BreakerState::Open),
                    "cell {i} breaker must have opened"
                );
            } else {
                assert_reports_identical(m, clean[i].as_ref().unwrap());
            }
        }
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 20_000,
            kind: FaultKind::HtAppear {
                q: 0.6,
                edges: ClientSet::from_iter([0, 1, 2, 3]),
            },
        }]);
        let cap = capture(script, 90, 50);
        let cfg = quick_config();

        // Uninterrupted reference run.
        let mut full = RobustDriver::new(&cap, &cfg).unwrap();
        while full.step().unwrap() {}
        let full_report = full.into_report();

        // "Crash" after a few steps: snapshot, drop the driver,
        // restore from the serialized bytes, continue.
        let mut first = RobustDriver::new(&cap, &cfg).unwrap();
        for _ in 0..3 {
            assert!(first.step().unwrap());
        }
        let dir = std::env::temp_dir().join(format!("blu-ckpt-resume-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &first.snap).unwrap();
        drop(first);

        let snap = load_robust_checkpoint(&path).unwrap();
        let mut resumed = RobustDriver::resume(&cap, &cfg, snap).unwrap();
        while resumed.step().unwrap() {}
        let resumed_report = resumed.into_report();

        assert_reports_identical(&full_report, &resumed_report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointing_run_matches_plain_run_and_resumes_completed() {
        let cap = capture(FaultScript::none(), 60, 51);
        let plain_cfg = quick_config();
        let plain = run_blu_robust(&cap, &plain_cfg).unwrap();

        let dir = std::env::temp_dir().join(format!("blu-ckpt-full-{}", std::process::id()));
        let mut ckpt_cfg = quick_config();
        ckpt_cfg.checkpoint = Some(CheckpointPolicy {
            dir: dir.clone(),
            every_subframes: 5_000,
            resume: false,
        });
        let checkpointed = run_blu_robust(&cap, &ckpt_cfg).unwrap();
        assert_reports_identical(&plain, &checkpointed);
        assert!(dir.join("cell-0.json").exists(), "clean shutdown persists");

        // Resuming the completed run replays nothing and returns the
        // identical report.
        let mut resume_cfg = ckpt_cfg.clone();
        resume_cfg.checkpoint.as_mut().unwrap().resume = true;
        let resumed = run_blu_robust(&cap, &resume_cfg).unwrap();
        assert_reports_identical(&plain, &resumed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_capture_and_seed() {
        let cap = capture(FaultScript::none(), 60, 52);
        let other = capture(FaultScript::none(), 90, 53);
        let cfg = quick_config();
        let driver = RobustDriver::new(&cap, &cfg).unwrap();
        let snap = driver.snap.clone();

        match RobustDriver::resume(&other, &cfg, snap.clone()) {
            Err(BluError::Checkpoint(msg)) => assert!(msg.contains("different capture")),
            Err(e) => panic!("expected Checkpoint error, got {e:?}"),
            Ok(_) => panic!("resume against the wrong capture must fail"),
        }
        let mut reseeded = quick_config();
        reseeded.seed ^= 1;
        match RobustDriver::resume(&cap, &reseeded, snap) {
            Err(BluError::Checkpoint(msg)) => assert!(msg.contains("seed")),
            Err(e) => panic!("expected Checkpoint error, got {e:?}"),
            Ok(_) => panic!("resume with a reseeded config must fail"),
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint format stability (satellite d).
    // ------------------------------------------------------------------

    /// A deterministic snapshot: the fresh pre-step state contains no
    /// wall-clock fields, so its serialization is a pure function of
    /// the capture and config.
    fn fresh_snapshot() -> RobustSnapshot {
        let cap = capture(FaultScript::none(), 60, 60);
        let cfg = quick_config();
        RobustDriver::new(&cap, &cfg).unwrap().snap
    }

    #[test]
    fn checkpoint_round_trips_through_disk() {
        let snap = fresh_snapshot();
        let dir = std::env::temp_dir().join(format!("blu-ckpt-rt-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &snap).unwrap();
        let thawed = load_robust_checkpoint(&path).unwrap();
        assert_eq!(thawed, snap);
        // A second save over the same path must stay atomic-valid.
        save_robust_checkpoint(&path, &thawed).unwrap();
        assert_eq!(load_robust_checkpoint(&path).unwrap(), snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Golden-file pin: the v1 on-disk schema. If this test fails the
    /// format changed — bump [`CHECKPOINT_VERSION`] (and regenerate
    /// the golden file with `BLU_REGEN_GOLDEN=1 cargo test -p
    /// blu-core checkpoint_golden`) rather than silently breaking old
    /// snapshots.
    #[test]
    fn checkpoint_golden_file_round_trips() {
        let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/checkpoint_v1.json");
        if std::env::var_os("BLU_REGEN_GOLDEN").is_some() {
            let doc = RobustCheckpoint {
                version: CHECKPOINT_VERSION,
                snapshot: fresh_snapshot(),
            };
            let json = serde_json::to_string_pretty(&doc).unwrap();
            std::fs::create_dir_all(std::path::Path::new(golden_path).parent().unwrap()).unwrap();
            std::fs::write(golden_path, json + "\n").unwrap();
        }
        let golden = &std::fs::read_to_string(golden_path).unwrap();
        let snap: RobustSnapshot = {
            let doc: RobustCheckpoint = serde_json::from_str(golden).unwrap();
            assert_eq!(doc.version, CHECKPOINT_VERSION);
            doc.snapshot
        };
        assert_eq!(snap, fresh_snapshot(), "golden snapshot drifted");
        // Re-serializing reproduces the golden bytes exactly.
        let doc = RobustCheckpoint {
            version: CHECKPOINT_VERSION,
            snapshot: snap,
        };
        assert_eq!(
            serde_json::to_string_pretty(&doc).unwrap().trim_end(),
            golden.trim_end(),
            "serialization of the v1 schema changed"
        );
    }

    #[test]
    fn version_mismatch_is_rejected_before_decode() {
        let snap = fresh_snapshot();
        let dir = std::env::temp_dir().join(format!("blu-ckpt-ver-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &snap).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replacen(
            &format!("\"version\": {CHECKPOINT_VERSION}"),
            "\"version\": 999",
            1,
        );
        assert_ne!(text, bumped, "version field must be present to tamper");
        std::fs::write(&path, bumped).unwrap();
        match load_robust_checkpoint(&path) {
            Err(BluError::CheckpointVersion { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, CHECKPOINT_VERSION);
            }
            other => panic!("expected CheckpointVersion, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_snapshot_is_a_typed_error_and_tmp_is_ignored() {
        let snap = fresh_snapshot();
        let dir = std::env::temp_dir().join(format!("blu-ckpt-torn-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &snap).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();

        // A crash mid-write under the atomic protocol leaves a torn
        // `.tmp` sibling and the previous complete checkpoint intact.
        std::fs::write(path.with_extension("tmp"), &text[..text.len() / 2]).unwrap();
        assert_eq!(load_robust_checkpoint(&path).unwrap(), snap);

        // A genuinely torn target file (pre-atomic-write crash, disk
        // corruption) must surface as a typed error, not a panic.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        match load_robust_checkpoint(&path) {
            Err(BluError::Checkpoint(_)) => {}
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
