//! Degraded-mode BLU orchestration: the robust loop that survives a
//! changing, fault-ridden environment.
//!
//! The vanilla orchestrator ([`crate::orchestrator`]) assumes the
//! interference field is stationary for the whole run. This module
//! drops that assumption: it drives the two-phase loop against a
//! [`FaultyCapture`] in which hidden terminals appear, disappear and
//! drift mid-run and the observation path itself lies (pilot
//! misclassification, dropped reports — [`blu_sim::faults`]).
//!
//! The loop is a five-state machine:
//!
//! ```text
//!        ┌───────────── Measuring ◄────────────┐
//!        ▼                                     │ (probation over)
//!   [infer verdict]                            │
//!    │confident │degraded/low-confidence       │
//!    ▼          ▼                              │
//! Confident   Fallback ────────────────────────┘
//!    │(drift EWMA over threshold)
//!    ▼
//! Drifting → Remeasuring (shortened phase, estimator decayed, §3.7)
//! ```
//!
//! * **Measuring / Remeasuring** — run the Algorithm-1 plan against
//!   the trace, feeding the estimator through the observation-fault
//!   channel. Re-measurements are shorter (`remeasure_t_samples`) and
//!   the estimator is first *decayed* so fresh post-drift samples
//!   outweigh stale history (staleness windowing).
//! * **Confident** — speculative scheduling on the inferred
//!   blue-print, in segments of `check_interval_txops`; after each
//!   segment every client's observed CCA outcome updates a per-client
//!   mispredict EWMA against the blue-print's predicted access
//!   probability.
//! * **Drifting** — the EWMA crossed `drift_threshold`: the
//!   blue-print no longer describes the air. Recorded for
//!   observability, then immediately re-measure.
//! * **Fallback** — the inference verdict was
//!   [`InferenceVerdict::Degraded`] (or confidence fell below
//!   `confidence_floor`): scheduling proceeds with plain proportional
//!   fair, which needs no topology knowledge, until a probation
//!   period expires and measurement is retried.
//!
//! PF fairness state is carried across segments
//! ([`Emulator::seed_pf_averages`]), and measurement overhead is
//! charged against throughput in
//! [`RobustRunReport::effective_throughput_mbps`] — the number a
//! deployment would actually see.

use crate::blueprint::infer::InferenceVerdict;
use crate::blueprint::{InferenceBackend, InferenceResult};
use crate::emulator::Emulator;
use crate::error::BluError;
use crate::joint::TopologyAccess;
use crate::measure::{measurement_schedule, OutcomeEstimator};
use crate::metrics::UplinkMetrics;
use crate::orchestrator::{blueprint_with_backend, BluConfig};
use crate::sched::{PfScheduler, SpeculativeScheduler};
use blu_sim::clientset::ClientSet;
use blu_sim::faults::ObservationChannel;
use blu_sim::rng::DetRng;
use blu_sim::time::SubframeIndex;
use blu_traces::faults::FaultyCapture;

/// Where the robust orchestrator currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrchestratorState {
    /// Initial full-length measurement phase.
    Measuring,
    /// Speculating on a blue-print whose drift score is below
    /// threshold.
    Confident,
    /// Drift detected; about to re-measure.
    Drifting,
    /// Shortened re-measurement phase (§3.7).
    Remeasuring,
    /// Blue-print unusable — scheduling with plain PF.
    Fallback,
}

impl std::fmt::Display for OrchestratorState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OrchestratorState::Measuring => "measuring",
            OrchestratorState::Confident => "confident",
            OrchestratorState::Drifting => "drifting",
            OrchestratorState::Remeasuring => "re-measuring",
            OrchestratorState::Fallback => "fallback",
        })
    }
}

/// Per-client mispredict tracker: an EWMA of the signed difference
/// between each observed CCA outcome (1 = accessed) and the
/// blue-print's predicted access probability. Under a correct
/// blue-print every per-client EWMA hovers around zero; a terminal
/// appearing, disappearing or drifting pulls its victims' EWMAs away
/// in either direction, so the score is the **maximum absolute**
/// per-client deviation.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    alpha: f64,
    dev: Vec<f64>,
    samples: u64,
}

impl DriftMonitor {
    /// New monitor over `n` clients with EWMA weight `alpha`.
    pub fn new(alpha: f64, n: usize) -> Self {
        DriftMonitor {
            alpha: alpha.clamp(0.0, 1.0),
            dev: vec![0.0; n],
            samples: 0,
        }
    }

    /// Feed one observed outcome for client `ue` against the
    /// blue-print's predicted access probability.
    pub fn observe(&mut self, ue: usize, accessed: bool, predicted: f64) {
        if ue >= self.dev.len() {
            return;
        }
        let p = if predicted.is_finite() {
            predicted.clamp(0.0, 1.0)
        } else {
            0.5
        };
        let x = if accessed { 1.0 } else { 0.0 };
        self.dev[ue] += self.alpha * ((x - p) - self.dev[ue]);
        self.samples += 1;
    }

    /// Current drift score: the largest per-client |EWMA| deviation.
    pub fn score(&self) -> f64 {
        self.dev.iter().fold(0.0_f64, |m, d| m.max(d.abs()))
    }

    /// Observations consumed since the last reset.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Forget everything (called after re-blue-printing).
    pub fn reset(&mut self) {
        self.dev.iter_mut().for_each(|d| *d = 0.0);
        self.samples = 0;
    }
}

/// Configuration of the robust loop.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// The underlying two-phase configuration (cell, `T`, inference).
    pub blu: BluConfig,
    /// Minimum blue-print confidence (`1 − residual fraction`) to
    /// speculate on; below it the loop falls back to PF.
    pub confidence_floor: f64,
    /// Drift-score threshold that triggers re-measurement.
    pub drift_threshold: f64,
    /// EWMA weight of the drift monitor.
    pub drift_alpha: f64,
    /// Ignore the drift score until this many outcomes were seen
    /// (EWMA warm-up).
    pub min_drift_samples: u64,
    /// `T` for shortened re-measurement phases (§3.7 — the estimator
    /// stays warm, so far fewer fresh samples suffice).
    pub remeasure_t_samples: u64,
    /// Speculative/fallback segment length between drift checks.
    pub check_interval_txops: u64,
    /// TxOPs spent in PF fallback before measurement is retried.
    pub fallback_probation_txops: u64,
    /// Estimator count-retention factor applied before each
    /// re-measurement (see [`OutcomeEstimator::decay`]).
    pub estimator_keep: f64,
    /// Seed of the observation-fault channel RNG.
    pub seed: u64,
    /// Inference engine used at every (re-)blue-printing point.
    pub backend: InferenceBackend,
}

impl RobustConfig {
    /// Defaults tuned for the testbed-scale scenarios of the paper.
    pub fn new(blu: BluConfig) -> Self {
        RobustConfig {
            blu,
            confidence_floor: 0.35,
            drift_threshold: 0.35,
            drift_alpha: 0.01,
            min_drift_samples: 1_000,
            remeasure_t_samples: 15,
            check_interval_txops: 25,
            fallback_probation_txops: 50,
            estimator_keep: 0.25,
            seed: 0xD1F7,
            backend: InferenceBackend::Gradient,
        }
    }
}

/// One state-machine transition, for post-mortem inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateTransition {
    /// Trace sub-frame at which the state was entered.
    pub at_subframe: u64,
    /// The state entered.
    pub state: OrchestratorState,
}

/// Everything a robust run produces.
#[derive(Debug, Clone)]
pub struct RobustRunReport {
    /// Merged scheduling-phase metrics (speculative + fallback
    /// segments; measurement sub-frames carry no counted payload).
    pub metrics: UplinkMetrics,
    /// Total sub-frames spent measuring (initial + re-measurements).
    pub measurement_subframes: u64,
    /// Number of re-measurement phases triggered.
    pub n_remeasurements: u32,
    /// TxOPs spent speculating on a blue-print.
    pub speculative_txops: u64,
    /// TxOPs spent in PF fallback.
    pub fallback_txops: u64,
    /// The full state history, in order.
    pub transitions: Vec<StateTransition>,
    /// Verdict of every inference attempt, in order.
    pub verdicts: Vec<InferenceVerdict>,
    /// Confidence of the last blue-print in force (0 when none).
    pub final_confidence: f64,
    /// Largest drift score observed across the run.
    pub peak_drift: f64,
    /// Wall-clock microseconds spent inside blueprint inference
    /// across the whole run (initial + every re-measurement).
    /// Timing only — excluded from the determinism contract.
    pub inference_micros: u64,
}

impl RobustRunReport {
    /// Throughput with measurement overhead charged: delivered bits
    /// over *all* elapsed sub-frames, scheduled or measuring. This is
    /// the honest number for comparing a re-measuring loop against a
    /// never-measuring baseline.
    pub fn effective_throughput_mbps(&self) -> f64 {
        let total = self.metrics.subframes + self.measurement_subframes;
        if total == 0 {
            0.0
        } else {
            self.metrics.bits_delivered / (total as f64 * 1_000.0)
        }
    }

    /// The state the run ended in.
    pub fn final_state(&self) -> OrchestratorState {
        self.transitions
            .last()
            .map(|t| t.state)
            .unwrap_or(OrchestratorState::Measuring)
    }
}

/// Run the robust loop over a fault-scripted capture until the trace
/// is exhausted.
///
/// Injected faults never panic this function: an inference failure on
/// corrupted statistics surfaces as a [`InferenceVerdict::Degraded`]
/// verdict and routes into PF fallback; a trace too short for even
/// one measurement phase is a typed [`BluError`].
pub fn run_blu_robust(
    capture: &FaultyCapture,
    config: &RobustConfig,
) -> Result<RobustRunReport, BluError> {
    let trace = &capture.trace;
    trace.validate().map_err(BluError::InvalidTrace)?;
    let n = trace.ground_truth.n_clients;
    let trace_len = trace.access.len() as u64;
    let per_txop = config.blu.emulation.cell.txop.total_subframes();
    let dl = config.blu.emulation.cell.txop.dl_subframes;
    let ul = config.blu.emulation.cell.txop.ul_subframes;
    let k_max = config.blu.emulation.cell.max_ues_per_subframe;
    if config.check_interval_txops == 0 {
        return Err(BluError::InvalidConfig(
            "check_interval_txops must be positive".into(),
        ));
    }

    let mut est = OutcomeEstimator::new(n);
    let mut chan = ObservationChannel::new(DetRng::seed_from_u64(config.seed ^ 0x0B5E_7ACE));
    let mut drift = DriftMonitor::new(config.drift_alpha, n);
    let mut metrics = UplinkMetrics::new(n);
    let mut cursor: u64 = 0;
    let mut state = OrchestratorState::Measuring;
    let mut transitions = vec![StateTransition {
        at_subframe: 0,
        state,
    }];
    let mut verdicts: Vec<InferenceVerdict> = Vec::new();
    let mut blueprint: Option<InferenceResult> = None;
    let mut pf_avg: Option<Vec<f64>> = None;
    let mut measurement_subframes = 0u64;
    let mut n_remeasurements = 0u32;
    let mut speculative_txops = 0u64;
    let mut fallback_txops = 0u64;
    let mut probation_left = 0u64;
    let mut peak_drift = 0.0_f64;
    let mut inference_micros = 0u64;

    // The initial measurement phase must fit; later phases that run
    // off the end of the trace simply end the run in whatever state
    // it was in (there is no more air to schedule anyway).
    {
        let plan = measurement_schedule(n, k_max, config.blu.t_samples)?;
        if plan.t_max() > trace_len {
            return Err(BluError::TraceTooShort {
                what: "robust initial measurement phase",
                needed: plan.t_max(),
                available: trace_len,
            });
        }
    }

    let enter = |transitions: &mut Vec<StateTransition>,
                 state: &mut OrchestratorState,
                 next: OrchestratorState,
                 at: u64| {
        *state = next;
        transitions.push(StateTransition {
            at_subframe: at,
            state: next,
        });
    };

    loop {
        match state {
            OrchestratorState::Measuring | OrchestratorState::Remeasuring => {
                let t = if state == OrchestratorState::Measuring {
                    config.blu.t_samples
                } else {
                    config.remeasure_t_samples
                };
                let plan = measurement_schedule(n, k_max, t)?;
                if cursor + plan.t_max() > trace_len {
                    break;
                }
                for (i, &scheduled) in plan.subframes.iter().enumerate() {
                    let sf = cursor + i as u64;
                    let accessible = trace.access.at(SubframeIndex(sf));
                    let obs_state = capture.script.obs_state_at(sf);
                    if let Some((obs, acc)) =
                        chan.corrupt(obs_state, scheduled, accessible.intersection(scheduled))
                    {
                        est.stats_mut().record(obs, acc);
                    }
                }
                cursor += plan.t_max();
                measurement_subframes += plan.t_max();
                let t0 = std::time::Instant::now();
                let result = blueprint_with_backend(&est, &config.blu.inference, &config.backend);
                inference_micros += t0.elapsed().as_micros() as u64;
                verdicts.push(result.verdict);
                let usable = result.verdict != InferenceVerdict::Degraded
                    && result.confidence() >= config.confidence_floor;
                if usable {
                    blueprint = Some(result);
                    drift.reset();
                    enter(
                        &mut transitions,
                        &mut state,
                        OrchestratorState::Confident,
                        cursor,
                    );
                } else {
                    blueprint = None;
                    probation_left = config.fallback_probation_txops;
                    enter(
                        &mut transitions,
                        &mut state,
                        OrchestratorState::Fallback,
                        cursor,
                    );
                }
            }
            OrchestratorState::Confident | OrchestratorState::Fallback => {
                let room = (trace_len - cursor) / per_txop;
                let txops = config.check_interval_txops.min(room);
                if txops == 0 {
                    break;
                }
                let mut cfg = config.blu.emulation.clone();
                cfg.n_txops = txops;
                cfg.start_subframe = cursor;
                let mut emu = Emulator::new(trace, cfg)?;
                if let Some(avg) = &pf_avg {
                    emu.seed_pf_averages(avg);
                }
                let seg = if state == OrchestratorState::Confident {
                    let result = blueprint.as_ref().expect("Confident implies a blueprint");
                    let access = TopologyAccess::new(&result.topology);
                    let mut sched = SpeculativeScheduler::new(&access);
                    emu.run(&mut sched, None)
                } else {
                    emu.run(&mut PfScheduler, None)
                };
                pf_avg = Some(emu.pf_averages().to_vec());
                metrics.merge(&seg.metrics);

                // Observed CCA outcomes keep feeding the estimator
                // (warm re-measurements, §3.7) and — when a blue-print
                // is in force — the drift monitor. Only UL sub-frames
                // are observable: the eNB transmits during DL.
                for t_i in 0..txops {
                    for u in 0..ul {
                        let sf = cursor + t_i * per_txop + dl + u;
                        let accessible = trace.access.at(SubframeIndex(sf));
                        let obs_state = capture.script.obs_state_at(sf);
                        let all = ClientSet::all(n);
                        if let Some((obs, acc)) = chan.corrupt(obs_state, all, accessible) {
                            est.stats_mut().record(obs, acc);
                            if let Some(result) = &blueprint {
                                for ue in obs.iter() {
                                    drift.observe(
                                        ue,
                                        acc.contains(ue),
                                        result.topology.p_individual(ue),
                                    );
                                }
                            }
                        }
                    }
                }
                cursor += txops * per_txop;

                if state == OrchestratorState::Confident {
                    speculative_txops += txops;
                    peak_drift = peak_drift.max(drift.score());
                    if drift.samples() >= config.min_drift_samples
                        && drift.score() > config.drift_threshold
                    {
                        enter(
                            &mut transitions,
                            &mut state,
                            OrchestratorState::Drifting,
                            cursor,
                        );
                    }
                } else {
                    fallback_txops += txops;
                    probation_left = probation_left.saturating_sub(txops);
                    if probation_left == 0 {
                        est.decay(config.estimator_keep);
                        n_remeasurements += 1;
                        enter(
                            &mut transitions,
                            &mut state,
                            OrchestratorState::Remeasuring,
                            cursor,
                        );
                    }
                }
            }
            OrchestratorState::Drifting => {
                // Transitional: decay stale statistics and go
                // straight into the shortened re-measurement.
                est.decay(config.estimator_keep);
                n_remeasurements += 1;
                enter(
                    &mut transitions,
                    &mut state,
                    OrchestratorState::Remeasuring,
                    cursor,
                );
            }
        }
    }

    Ok(RobustRunReport {
        metrics,
        measurement_subframes,
        n_remeasurements,
        speculative_txops,
        fallback_txops,
        transitions,
        verdicts,
        final_confidence: blueprint.as_ref().map(|r| r.confidence()).unwrap_or(0.0),
        peak_drift,
        inference_micros,
    })
}

/// Run the robust loop over a fleet of captures (one per cell) in
/// parallel across the worker pool.
///
/// Each cell's run is an independent pure function of its capture and
/// the shared config, and the rayon shim joins workers in spawn
/// order, so the reports come back **in input order** and — apart
/// from the wall-clock [`RobustRunReport::inference_micros`] field —
/// identical to [`run_robust_fleet_sequential`].
pub fn run_robust_fleet(
    captures: &[FaultyCapture],
    config: &RobustConfig,
) -> Vec<Result<RobustRunReport, BluError>> {
    use rayon::prelude::*;
    captures
        .par_iter()
        .map(|cap| run_blu_robust(cap, config))
        .collect()
}

/// Sequential reference for [`run_robust_fleet`] — kept alive for
/// differential testing and single-thread profiling.
pub fn run_robust_fleet_sequential(
    captures: &[FaultyCapture],
    config: &RobustConfig,
) -> Vec<Result<RobustRunReport, BluError>> {
    captures
        .iter()
        .map(|cap| run_blu_robust(cap, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_phy::cell::CellConfig;
    use blu_sim::clientset::ClientSet;
    use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
    use blu_sim::time::Micros;
    use blu_traces::capture::CaptureConfig;
    use blu_traces::faults::capture_with_faults;

    fn capture(script: FaultScript, secs: u64, seed: u64) -> FaultyCapture {
        capture_with_faults(
            &CaptureConfig {
                duration: Micros::from_secs(secs),
                q_range: (0.25, 0.55),
                ..CaptureConfig::testbed_default()
            },
            &script,
            seed,
        )
        .unwrap()
    }

    fn quick_config() -> RobustConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let emu = crate::emulator::EmulationConfig::new(cell);
        RobustConfig::new(BluConfig::new(emu))
    }

    #[test]
    fn clean_run_stays_confident() {
        let cap = capture(FaultScript::none(), 60, 11);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert_eq!(report.final_state(), OrchestratorState::Confident);
        assert_eq!(report.n_remeasurements, 0);
        assert_eq!(report.fallback_txops, 0);
        assert!(report.speculative_txops > 0);
        assert!(report.metrics.bits_delivered > 0.0);
        assert!(report.final_confidence > 0.5);
    }

    #[test]
    fn appearance_triggers_drift_and_remeasure() {
        // A strong new terminal blankets four clients mid-run.
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 20_000,
            kind: FaultKind::HtAppear {
                q: 0.6,
                edges: ClientSet::from_iter([0, 1, 2, 3]),
            },
        }]);
        let cap = capture(script, 90, 12);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(
            report.n_remeasurements >= 1,
            "appearance went undetected: peak drift {}",
            report.peak_drift
        );
        assert!(report.peak_drift > 0.35);
        assert!(report
            .transitions
            .iter()
            .any(|t| t.state == OrchestratorState::Drifting));
        // After re-measuring the loop should have found its footing
        // again rather than dying in fallback.
        assert_eq!(report.final_state(), OrchestratorState::Confident);
    }

    #[test]
    fn clean_run_never_spuriously_remeasures() {
        let cap = capture(FaultScript::none(), 90, 13);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert_eq!(
            report.n_remeasurements, 0,
            "false drift alarm (peak {})",
            report.peak_drift
        );
    }

    #[test]
    fn misclassification_does_not_panic_and_still_delivers() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::MisclassifyRate { rate: 0.05 },
        }]);
        let cap = capture(script, 60, 14);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(report.metrics.bits_delivered > 0.0);
        assert!(!report.verdicts.is_empty());
    }

    #[test]
    fn heavy_observation_faults_route_to_fallback_not_panic() {
        // Half the outcomes flipped and half the reports dropped: the
        // statistics are garbage; the loop must keep scheduling.
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 0,
                kind: FaultKind::MisclassifyRate { rate: 0.5 },
            },
            FaultEvent {
                at_subframe: 0,
                kind: FaultKind::DropRate { rate: 0.5 },
            },
        ]);
        let cap = capture(script, 60, 15);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(report.metrics.bits_delivered > 0.0);
        // Either the inference survived the noise or fallback ran —
        // both are acceptable; a panic is not.
        assert!(report.fallback_txops > 0 || report.speculative_txops > 0);
    }

    #[test]
    fn deterministic() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 15_000,
            kind: FaultKind::QDrift { ht: 0, q: 0.9 },
        }]);
        let cap = capture(script, 60, 16);
        let cfg = quick_config();
        let a = run_blu_robust(&cap, &cfg).unwrap();
        let b = run_blu_robust(&cap, &cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.verdicts, b.verdicts);
    }

    #[test]
    fn too_short_trace_is_a_typed_error() {
        let cap = capture(FaultScript::none(), 1, 17);
        let mut cfg = quick_config();
        cfg.blu.t_samples = 5_000;
        match run_blu_robust(&cap, &cfg) {
            Err(BluError::TraceTooShort { .. }) => {}
            other => panic!("expected TraceTooShort, got {other:?}"),
        }
    }

    #[test]
    fn effective_throughput_charges_measurement() {
        let cap = capture(FaultScript::none(), 60, 18);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(report.effective_throughput_mbps() <= report.metrics.throughput_mbps());
        assert!(report.effective_throughput_mbps() > 0.0);
    }

    #[test]
    fn fleet_matches_sequential_reference() {
        let caps: Vec<FaultyCapture> = (0..3)
            .map(|s| capture(FaultScript::none(), 60, 20 + s))
            .collect();
        let cfg = quick_config();
        let par = run_robust_fleet(&caps, &cfg);
        let seq = run_robust_fleet_sequential(&caps, &cfg);
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            // Everything but wall-clock timing must be identical.
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.transitions, b.transitions);
            assert_eq!(a.verdicts, b.verdicts);
            assert_eq!(a.measurement_subframes, b.measurement_subframes);
            assert_eq!(a.final_confidence.to_bits(), b.final_confidence.to_bits());
        }
    }

    #[test]
    fn mcmc_backend_completes_and_reports_timing() {
        use crate::blueprint::McmcConfig;
        let cap = capture(FaultScript::none(), 60, 19);
        let mut cfg = quick_config();
        cfg.backend = InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: 3_000,
                ..Default::default()
            },
            seed: 7,
        };
        let report = run_blu_robust(&cap, &cfg).unwrap();
        assert!(report.metrics.bits_delivered > 0.0);
        assert!(!report.verdicts.is_empty());
        assert!(report.inference_micros > 0);
    }
}
