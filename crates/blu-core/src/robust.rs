//! Degraded-mode BLU orchestration: the robust loop that survives a
//! changing, fault-ridden environment — and a failing process.
//!
//! The vanilla orchestrator ([`crate::orchestrator`]) assumes the
//! interference field is stationary for the whole run. This module
//! drops that assumption: it drives the two-phase loop against a
//! [`FaultyCapture`] in which hidden terminals appear, disappear and
//! drift mid-run and the observation path itself lies (pilot
//! misclassification, dropped reports — [`blu_sim::faults`]).
//!
//! The loop is a five-state machine:
//!
//! ```text
//!        ┌───────────── Measuring ◄────────────┐
//!        ▼                                     │ (probation over
//!   [infer verdict]                            │  AND breaker allows)
//!    │confident │degraded/low-confidence       │
//!    ▼          ▼                              │
//! Confident   Fallback ────────────────────────┘
//!    │(drift EWMA over threshold)
//!    ▼
//! Drifting → Remeasuring (shortened phase, estimator decayed, §3.7)
//! ```
//!
//! Every arm is a thin composition of engine stages over the cell's
//! [`CellContext`]:
//!
//! * **Measuring / Remeasuring** — `[MeasureStage, InferStage]` with
//!   the fault-channel fidelity and the verdict gate: the Algorithm-1
//!   plan feeds the estimator through the observation-fault channel,
//!   and inference runs guarded (poison quarantine, stall repetition,
//!   panic containment) with its verdict routed into
//!   Confident/Fallback behind the breaker. Re-measurements are
//!   shorter (`remeasure_t_samples`) and the estimator is first
//!   *decayed* so fresh post-drift samples outweigh stale history.
//! * **Confident / Fallback** — `[GenerateStage, ScheduleStage,
//!   TransmitStage]`: the blueprint (or its absence) picks the
//!   scheduler, the windowed policy clips a `check_interval_txops`
//!   segment to the remaining trace, and the transmit stage drives
//!   the [`CellEngine`](crate::engine::CellEngine) with the
//!   fault-tap observer feeding estimator and drift monitor per
//!   decoded sub-frame. The *policy* that reads the drift score (or
//!   the probation/breaker countdown) afterwards stays here.
//! * **Drifting** — transitional: decay stale statistics, go
//!   straight into the shortened re-measurement.
//!
//! ## Resilience runtime (see [`crate::runtime`])
//!
//! Every inference call runs guarded inside
//! [`InferStage`]: scripted runtime faults
//! ([`blu_sim::faults::FaultKind::InferenceStall`], `InferencePanic`,
//! `StatPoison`) stall it, panic it, or corrupt its constraint
//! targets; poisoned targets are quarantined before the solver sees
//! them, and a panic is contained at the call boundary as
//! [`BluError::Panicked`] — it routes to fallback like any other
//! failed inference and never crosses the cell boundary.
//!
//! The whole mutable loop state lives in a serializable
//! [`RobustSnapshot`] (the engine's
//! [`CellSnapshot`](crate::engine::CellSnapshot), re-exported under
//! its historical name); with a [`CheckpointPolicy`] configured, the
//! loop atomically persists it on an interval and at clean shutdown,
//! and a later run can resume **bit-identically** from the snapshot
//! (all RNG streams — observation channel, poison source, breaker
//! jitter — are part of it).
//!
//! PF fairness state is carried across segments by the transmit
//! stage, and measurement overhead is charged against throughput in
//! [`RobustRunReport::effective_throughput_mbps`] — the number a
//! deployment would actually see.

use crate::blueprint::infer::InferenceVerdict;
use crate::blueprint::InferenceBackend;
use crate::engine::{
    CellContext, CellGeometry, EngineArena, FleetEngine, GenerateStage, InferGate, InferStage,
    MeasureFidelity, MeasureStage, NullObserver, SchedulePolicy, ScheduleStage, StageFlow,
    StreamEvent, StreamInferStage, StreamState, TransmitFeed, TransmitStage,
};
use crate::error::BluError;
use crate::measure::measurement_schedule;
use crate::metrics::UplinkMetrics;
use crate::orchestrator::BluConfig;
use crate::runtime::breaker::{BreakerConfig, BreakerPoll, BreakerTransition};
use crate::runtime::checkpoint::{load_robust_checkpoint, save_robust_checkpoint};
use crate::runtime::panic_message;
use blu_traces::faults::FaultyCapture;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use crate::engine::context::CellSnapshot as RobustSnapshot;
pub use crate::engine::context::{
    CheckpointPolicy, DriftMonitor, OrchestratorState, StateTransition,
};

/// Streaming online-inference knobs: with
/// [`RobustConfig::streaming`] set, the Confident arm carries a
/// sliding [`ObservationWindow`](crate::blueprint::ObservationWindow)
/// fed per decoded sub-frame and folds its deltas into the blueprint
/// with budgeted warm-started refines between segments — full §3.7
/// re-measurement is demoted to the drift-monitor fallback arm.
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Observation-ring capacity, in retained sub-frames.
    pub window: usize,
    /// Minimum window occupancy before incremental refines start
    /// (a thin window under-determines the constraint system).
    pub min_window: usize,
    /// Step budget of each incremental refine (the anytime deadline
    /// of the streaming arm — refines must never stall a segment
    /// boundary).
    pub refine_deadline_steps: u64,
}

impl StreamingConfig {
    /// Defaults tuned against the testbed-scale scenarios: a window
    /// a few segments deep, refines gated on a quarter of it.
    pub fn new(window: usize) -> Self {
        StreamingConfig {
            window,
            min_window: (window / 4).max(1),
            refine_deadline_steps: 400,
        }
    }

    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), BluError> {
        if self.window == 0 {
            return Err(BluError::InvalidConfig(
                "streaming window must be positive".into(),
            ));
        }
        if self.min_window > self.window {
            return Err(BluError::InvalidConfig(
                "streaming min_window cannot exceed the window".into(),
            ));
        }
        if self.refine_deadline_steps == 0 {
            return Err(BluError::InvalidConfig(
                "streaming refine deadline must be positive".into(),
            ));
        }
        Ok(())
    }
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig::new(2_000)
    }
}

/// Convert relative churn-event offsets into an absolute-time
/// [`FaultScript`] starting at `start_subframe`. Every conversion is
/// checked: an offset that would push an event past `u64::MAX` is a
/// typed [`BluError::Overflow`], never a silent wrap that would
/// reorder the script (mirroring the `min_subframes` treatment of the
/// deadline layer).
pub fn compile_churn_script(
    events: &[blu_sim::churn::TopologyEvent],
    start_subframe: u64,
) -> Result<blu_sim::faults::FaultScript, BluError> {
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        let at_subframe =
            start_subframe
                .checked_add(ev.offset_subframes)
                .ok_or(BluError::Overflow {
                    what: "churn event subframe",
                })?;
        out.push(blu_sim::faults::FaultEvent {
            at_subframe,
            kind: ev.kind,
        });
    }
    Ok(blu_sim::faults::FaultScript::new(out))
}

/// Configuration of the robust loop.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// The underlying two-phase configuration (cell, `T`, inference).
    pub blu: BluConfig,
    /// Minimum blue-print confidence (`1 − residual fraction`) to
    /// speculate on; below it the loop falls back to PF.
    pub confidence_floor: f64,
    /// Drift-score threshold that triggers re-measurement.
    pub drift_threshold: f64,
    /// EWMA weight of the drift monitor.
    pub drift_alpha: f64,
    /// Ignore the drift score until this many outcomes were seen
    /// (EWMA warm-up).
    pub min_drift_samples: u64,
    /// `T` for shortened re-measurement phases (§3.7 — the estimator
    /// stays warm, so far fewer fresh samples suffice).
    pub remeasure_t_samples: u64,
    /// Speculative/fallback segment length between drift checks.
    pub check_interval_txops: u64,
    /// TxOPs spent in PF fallback before measurement is retried.
    pub fallback_probation_txops: u64,
    /// Estimator count-retention factor applied before each
    /// re-measurement (see
    /// [`OutcomeEstimator::decay`](crate::measure::OutcomeEstimator::decay)).
    pub estimator_keep: f64,
    /// Seed of the observation-fault channel RNG (the poison and
    /// breaker-jitter streams are derived from it).
    pub seed: u64,
    /// Inference engine used at every (re-)blue-printing point.
    pub backend: InferenceBackend,
    /// Per-cell circuit breaker gating re-measurement retries after
    /// failed inferences.
    pub breaker: BreakerConfig,
    /// Optional checkpoint/restore policy (None = never persist).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Shared fleet blueprint cache consulted at every
    /// (re-)blue-printing point (`None` = cache off, bit-identical to
    /// the pre-cache loop). One `Arc` is shared by every cell of
    /// `run_robust_fleet` and across supervised restarts, so repeated
    /// topology classes and re-measurement storms are solved once.
    pub fleet_cache: Option<std::sync::Arc<crate::blueprint::FleetBlueprintCache>>,
    /// Streaming online inference (`None` = phased reference path,
    /// bit-identical to the pre-streaming loop): the Confident arm
    /// feeds a sliding observation window and refines the blueprint
    /// incrementally between segments, demoting full §3.7
    /// re-measurement to the drift-monitor fallback arm.
    pub streaming: Option<StreamingConfig>,
}

impl RobustConfig {
    /// Defaults tuned for the testbed-scale scenarios of the paper.
    pub fn new(blu: BluConfig) -> Self {
        RobustConfig {
            blu,
            confidence_floor: 0.35,
            drift_threshold: 0.35,
            drift_alpha: 0.01,
            min_drift_samples: 1_000,
            remeasure_t_samples: 15,
            check_interval_txops: 25,
            fallback_probation_txops: 50,
            estimator_keep: 0.25,
            seed: 0xD1F7,
            backend: InferenceBackend::Gradient,
            breaker: BreakerConfig::default(),
            checkpoint: None,
            fleet_cache: None,
            streaming: None,
        }
    }

    /// Up-front validation of every knob that would otherwise fail
    /// deep inside the loop (or silently wedge it).
    pub fn validate(&self) -> Result<(), BluError> {
        if self.check_interval_txops == 0 {
            return Err(BluError::InvalidConfig(
                "check_interval_txops must be positive".into(),
            ));
        }
        self.blu.inference.validate()?;
        if let InferenceBackend::Mcmc { config, .. } = &self.backend {
            config.validate()?;
        }
        self.breaker.validate()?;
        if let Some(streaming) = &self.streaming {
            streaming.validate()?;
        }
        Ok(())
    }
}

/// Everything a robust run produces.
#[derive(Debug, Clone)]
pub struct RobustRunReport {
    /// Merged scheduling-phase metrics (speculative + fallback
    /// segments; measurement sub-frames carry no counted payload).
    pub metrics: UplinkMetrics,
    /// Total sub-frames spent measuring (initial + re-measurements).
    pub measurement_subframes: u64,
    /// Number of re-measurement phases triggered.
    pub n_remeasurements: u32,
    /// TxOPs spent speculating on a blue-print.
    pub speculative_txops: u64,
    /// TxOPs spent in PF fallback.
    pub fallback_txops: u64,
    /// The full state history, in order.
    pub transitions: Vec<StateTransition>,
    /// Verdict of every inference attempt, in order (a contained
    /// panic is recorded as [`InferenceVerdict::Degraded`]).
    pub verdicts: Vec<InferenceVerdict>,
    /// Confidence of the last blue-print in force (0 when none).
    pub final_confidence: f64,
    /// Largest drift score observed across the run.
    pub peak_drift: f64,
    /// Wall-clock microseconds spent inside blueprint inference
    /// across the whole run (initial + every re-measurement).
    /// Timing only — excluded from the determinism contract.
    pub inference_micros: u64,
    /// Circuit-breaker state changes, in order.
    pub breaker_transitions: Vec<BreakerTransition>,
    /// Inference panics contained at the guarded call boundary.
    pub inference_panics: u32,
    /// Inference calls that ran out of their deadline budget
    /// (returned a best-so-far blueprint with `completed = false`).
    pub deadline_misses: u32,
    /// Constraint targets quarantined by
    /// [`ConstraintSystem::sanitize`](crate::blueprint::ConstraintSystem::sanitize)
    /// before inference.
    pub quarantined_constraints: u64,
    /// Incremental streaming refines attempted (0 on phased runs).
    pub stream_refines: u64,
    /// Streaming refines whose blueprint passed the gate and was
    /// installed.
    pub stream_refines_installed: u64,
    /// Full re-measurements scheduled by the demoted drift-monitor
    /// fallback arm while streaming.
    pub stream_fallback_remeasurements: u64,
    /// Churn-driven topology events crossed (and applied) by the
    /// streaming run.
    pub stream_churn_events: u64,
    /// Final observation-window occupancy, in retained sub-frames.
    pub stream_window_occupancy: u64,
}

impl RobustRunReport {
    /// Throughput with measurement overhead charged: delivered bits
    /// over *all* elapsed sub-frames, scheduled or measuring. This is
    /// the honest number for comparing a re-measuring loop against a
    /// never-measuring baseline.
    pub fn effective_throughput_mbps(&self) -> f64 {
        let total = self.metrics.subframes + self.measurement_subframes;
        if total == 0 {
            0.0
        } else {
            self.metrics.bits_delivered / (total as f64 * 1_000.0)
        }
    }

    /// The state the run ended in.
    pub fn final_state(&self) -> OrchestratorState {
        self.transitions
            .last()
            .map(|t| t.state)
            .unwrap_or(OrchestratorState::Measuring)
    }
}

/// One cell's robust loop, decomposed into resumable steps: a thin
/// state-machine driver over the engine's stage pipeline. Public API
/// stays [`run_blu_robust`]/[`run_robust_fleet`]; the driver exists so
/// checkpointing can interleave with stepping and so tests can kill
/// and resume a run mid-flight.
pub(crate) struct RobustDriver<'a> {
    capture: &'a FaultyCapture,
    config: &'a RobustConfig,
    geom: CellGeometry,
    pub(crate) snap: RobustSnapshot,
    /// Recycled engine hot-state buffers, adopted by every transmit
    /// segment this driver runs (and swappable with a fleet shard's
    /// arena so cells sharing a shard share buffers). Not part of the
    /// checkpointable snapshot — it is pure cache.
    pub(crate) arena: EngineArena,
}

impl<'a> RobustDriver<'a> {
    /// Start a fresh run.
    pub(crate) fn new(
        capture: &'a FaultyCapture,
        config: &'a RobustConfig,
    ) -> Result<Self, BluError> {
        let trace = &capture.trace;
        trace.validate().map_err(BluError::InvalidTrace)?;
        config.validate()?;
        let n = trace.ground_truth.n_clients;
        let trace_len = trace.access.len() as u64;
        let k_max = config.blu.emulation.cell.max_ues_per_subframe;

        // The initial measurement phase must fit; later phases that
        // run off the end of the trace simply end the run in whatever
        // state it was in (there is no more air to schedule anyway).
        {
            let plan = measurement_schedule(n, k_max, config.blu.t_samples)?;
            if plan.t_max() > trace_len {
                return Err(BluError::TraceTooShort {
                    what: "robust initial measurement phase",
                    needed: plan.t_max(),
                    available: trace_len,
                });
            }
        }

        let snap = RobustSnapshot::fresh(
            n,
            trace_len,
            config.seed,
            config.drift_alpha,
            config.breaker,
        );
        Ok(RobustDriver::with_snapshot(capture, config, snap))
    }

    /// Continue from a restored snapshot, guarding against resuming
    /// against the wrong capture or a reconfigured run.
    pub(crate) fn resume(
        capture: &'a FaultyCapture,
        config: &'a RobustConfig,
        snap: RobustSnapshot,
    ) -> Result<Self, BluError> {
        let trace = &capture.trace;
        trace.validate().map_err(BluError::InvalidTrace)?;
        config.validate()?;
        let n = trace.ground_truth.n_clients as u64;
        let trace_len = trace.access.len() as u64;
        if snap.n_clients != n || snap.trace_len != trace_len {
            return Err(BluError::Checkpoint(format!(
                "snapshot was taken against a different capture \
                 ({} clients / {} sub-frames, run has {} / {})",
                snap.n_clients, snap.trace_len, n, trace_len
            )));
        }
        if snap.config_seed != config.seed {
            return Err(BluError::Checkpoint(format!(
                "snapshot seed {:#x} does not match configured seed {:#x}",
                snap.config_seed, config.seed
            )));
        }
        Ok(RobustDriver::with_snapshot(capture, config, snap))
    }

    fn with_snapshot(
        capture: &'a FaultyCapture,
        config: &'a RobustConfig,
        snap: RobustSnapshot,
    ) -> Self {
        RobustDriver {
            capture,
            config,
            geom: CellGeometry::derive(&capture.trace, &config.blu.emulation),
            snap,
            arena: EngineArena::new(),
        }
    }

    /// Execute one state-machine arm. Returns `Ok(false)` once the
    /// trace is exhausted (the run is complete).
    pub(crate) fn step(&mut self) -> Result<bool, BluError> {
        self.step_with(&mut NullObserver)
    }

    /// [`Self::step`] with an observer tapped into the stage pipeline
    /// — the supervisor's watchdog heartbeat source.
    pub(crate) fn step_with(
        &mut self,
        observer: &mut dyn crate::engine::SubframeObserver,
    ) -> Result<bool, BluError> {
        step_cell_with(
            self.capture,
            self.config,
            &self.geom,
            &mut self.snap,
            &mut self.arena,
            observer,
        )
    }

    /// Drain one PF-only segment, ignoring the state machine: the arm
    /// the supervisor runs for quarantined or load-shed cells.
    pub(crate) fn step_shed(&mut self) -> Result<bool, BluError> {
        step_cell_shed(self.capture, self.config, &mut self.snap, &mut self.arena)
    }

    /// Finish: fold the snapshot into the public report.
    pub(crate) fn into_report(self) -> RobustRunReport {
        let snap = self.snap;
        let stream = snap.stream.as_ref();
        RobustRunReport {
            stream_refines: stream.map_or(0, |s| s.refines),
            stream_refines_installed: stream.map_or(0, |s| s.refines_installed),
            stream_fallback_remeasurements: stream.map_or(0, |s| s.fallback_remeasurements),
            stream_churn_events: stream.map_or(0, |s| s.churn_events_applied),
            stream_window_occupancy: stream.map_or(0, |s| s.window.occupancy() as u64),
            metrics: snap.metrics,
            measurement_subframes: snap.measurement_subframes,
            n_remeasurements: snap.n_remeasurements,
            speculative_txops: snap.speculative_txops,
            fallback_txops: snap.fallback_txops,
            transitions: snap.transitions,
            verdicts: snap.verdicts,
            final_confidence: snap
                .blueprint
                .as_ref()
                .map(|r| r.confidence())
                .unwrap_or(0.0),
            peak_drift: snap.peak_drift,
            inference_micros: snap.inference_micros,
            breaker_transitions: snap.breaker.transitions().to_vec(),
            inference_panics: snap.inference_panics,
            deadline_misses: snap.deadline_misses,
            quarantined_constraints: snap.quarantined_constraints,
        }
    }
}

/// One state-machine step of the robust loop, over caller-held
/// storage — the body of [`RobustDriver::step_with`], factored free so
/// callers that *own* their capture and config (the `blu serve`
/// daemon's resident cells, which cannot hold a borrowing driver
/// across rounds) step through the identical code path as the batch
/// entry points. Returns `Ok(false)` once the trace is exhausted.
pub(crate) fn step_cell_with(
    capture: &FaultyCapture,
    config: &RobustConfig,
    geom: &CellGeometry,
    snap: &mut RobustSnapshot,
    arena: &mut EngineArena,
    observer: &mut dyn crate::engine::SubframeObserver,
) -> Result<bool, BluError> {
    if snap.done {
        return Ok(false);
    }
    // Streaming runs materialize their window lazily (and exactly
    // once — a resumed snapshot keeps its ring); phased runs never
    // touch the field, keeping their checkpoints byte-identical to
    // the v1 schema.
    if let Some(scfg) = &config.streaming {
        if snap.stream.is_none() {
            snap.stream = Some(StreamState::new(geom.n, scfg.window));
        }
    }
    match snap.state {
        OrchestratorState::Measuring | OrchestratorState::Remeasuring => {
            let t = if snap.state == OrchestratorState::Measuring {
                config.blu.t_samples
            } else {
                config.remeasure_t_samples
            };
            let mut ctx = CellContext::new(
                &capture.trace,
                Some(&capture.script),
                &config.blu.emulation,
                &config.blu.inference,
                &config.backend,
                snap,
            );
            if let Some(cache) = config.fleet_cache.as_deref() {
                ctx = ctx.with_fleet_cache(cache);
            }
            let mut measure = MeasureStage {
                t_samples: t,
                fidelity: MeasureFidelity::FaultChannel,
            };
            let mut infer = InferStage {
                gate: Some(InferGate {
                    confidence_floor: config.confidence_floor,
                    fallback_probation_txops: config.fallback_probation_txops,
                }),
            };
            let flow =
                crate::engine::run_pipeline(&mut ctx, &mut [&mut measure, &mut infer], observer)?;
            if flow == StageFlow::Halt {
                return Ok(false);
            }
        }
        OrchestratorState::Confident | OrchestratorState::Fallback => {
            let was_confident = snap.state == OrchestratorState::Confident;
            let segment_start = snap.cursor;
            let mut ctx = CellContext::new(
                &capture.trace,
                Some(&capture.script),
                &config.blu.emulation,
                &config.blu.inference,
                &config.backend,
                snap,
            )
            .with_arena(arena);
            let mut generate = GenerateStage;
            let mut schedule = ScheduleStage {
                policy: SchedulePolicy::Windowed {
                    check_interval_txops: config.check_interval_txops,
                },
            };
            let mut transmit = TransmitStage {
                feed: TransmitFeed::FaultTap,
            };
            let flow = crate::engine::run_pipeline(
                &mut ctx,
                &mut [&mut generate, &mut schedule, &mut transmit],
                observer,
            )?;
            if flow == StageFlow::Halt {
                return Ok(false);
            }
            let txops = ctx
                .segment
                .expect("windowed transmit planned a segment")
                .txops;
            drop(ctx);

            // Post-segment policy: the stages carried the
            // mechanism; the drift gate and the probation/breaker
            // countdown are the robust loop's own decisions.
            if was_confident {
                // Sampled before any streaming refine can reset the
                // monitor: the peak must record what the segment saw.
                snap.peak_drift = snap.peak_drift.max(snap.drift.score());
            }
            if let Some(scfg) = &config.streaming {
                // Streaming bookkeeping: count the churn-driven
                // topology events the segment crossed (the trace
                // already carries their effects; the counters make
                // them observable) and report window occupancy.
                {
                    let stream = snap.stream.as_mut().expect("initialized at step entry");
                    let applied = capture
                        .script
                        .topology_event_subframes()
                        .iter()
                        .filter(|&&sf| sf > segment_start && sf <= snap.cursor)
                        .count() as u64;
                    if applied > 0 {
                        stream.churn_events_applied += applied;
                        observer.on_stream(StreamEvent::ChurnApplied { count: applied });
                    }
                    observer.on_stream(StreamEvent::WindowOccupancy {
                        occupied: stream.window.occupancy() as u64,
                        capacity: stream.window.capacity() as u64,
                    });
                }
                // Incremental refine: fold the window's deltas into
                // the blueprint in force under the anytime deadline.
                // An installed refine resets the drift monitor, so
                // the (demoted) full-re-measurement gate below only
                // fires when streaming cannot keep up.
                let occupancy = snap.stream.as_ref().map_or(0, |s| s.window.occupancy());
                if was_confident && occupancy >= scfg.min_window {
                    let mut ctx = CellContext::new(
                        &capture.trace,
                        Some(&capture.script),
                        &config.blu.emulation,
                        &config.blu.inference,
                        &config.backend,
                        snap,
                    );
                    let mut refine = StreamInferStage {
                        confidence_floor: config.confidence_floor,
                        refine_deadline_steps: scfg.refine_deadline_steps,
                    };
                    crate::engine::run_pipeline(&mut ctx, &mut [&mut refine], observer)?;
                }
            }
            if was_confident {
                if snap.drift.samples() >= config.min_drift_samples
                    && snap.drift.score() > config.drift_threshold
                {
                    if config.streaming.is_some() {
                        // Demoted §3.7 arm: streaming refines could
                        // not absorb the change — fall back to a full
                        // re-measurement and count it.
                        let stream = snap.stream.as_mut().expect("initialized at step entry");
                        stream.fallback_remeasurements += 1;
                        observer.on_stream(StreamEvent::FallbackRemeasure);
                    }
                    snap.enter(OrchestratorState::Drifting);
                }
            } else {
                snap.probation_left = snap.probation_left.saturating_sub(txops);
                if snap.probation_left == 0 {
                    // Probation over — but a tripped breaker gates
                    // the (expensive) re-measurement retry behind
                    // its backoff: stay in fallback without a
                    // transition until the breaker half-opens.
                    match snap.breaker.poll(snap.cursor) {
                        BreakerPoll::Wait(wait_subframes) => {
                            snap.probation_left = (wait_subframes / geom.per_txop).max(1);
                        }
                        BreakerPoll::Allow => {
                            snap.est.decay(config.estimator_keep);
                            snap.n_remeasurements += 1;
                            snap.enter(OrchestratorState::Remeasuring);
                        }
                    }
                }
            }
        }
        OrchestratorState::Drifting => {
            // Transitional: decay stale statistics and go
            // straight into the shortened re-measurement.
            snap.est.decay(config.estimator_keep);
            snap.n_remeasurements += 1;
            snap.enter(OrchestratorState::Remeasuring);
        }
    }
    Ok(true)
}

/// Drain one PF-only segment, ignoring the state machine: the arm the
/// supervisor (and the daemon's backpressure controller) runs for
/// quarantined or load-shed cells. No blueprint generation, no
/// inference, no drift/probation policy — just a windowed PF segment
/// through the fault tap, so the cell keeps serving traffic (counted
/// as fallback TxOPs) and the cursor provably advances until the
/// trace is exhausted.
pub(crate) fn step_cell_shed(
    capture: &FaultyCapture,
    config: &RobustConfig,
    snap: &mut RobustSnapshot,
    arena: &mut EngineArena,
) -> Result<bool, BluError> {
    if snap.done {
        return Ok(false);
    }
    let mut ctx = CellContext::new(
        &capture.trace,
        Some(&capture.script),
        &config.blu.emulation,
        &config.blu.inference,
        &config.backend,
        snap,
    )
    .with_arena(arena);
    // Leave ctx.spec at its PF default: a blueprint may survive in
    // the snapshot, but a shed cell must not speculate on it.
    let mut schedule = ScheduleStage {
        policy: SchedulePolicy::Windowed {
            check_interval_txops: config.check_interval_txops,
        },
    };
    let mut transmit = TransmitStage {
        feed: TransmitFeed::FaultTap,
    };
    let flow = crate::engine::run_pipeline(
        &mut ctx,
        &mut [&mut schedule, &mut transmit],
        &mut NullObserver,
    )?;
    Ok(flow != StageFlow::Halt)
}

/// Run the robust loop over a fault-scripted capture until the trace
/// is exhausted.
///
/// Injected faults never panic this function: an inference failure on
/// corrupted statistics surfaces as a [`InferenceVerdict::Degraded`]
/// verdict, an injected (or genuine) inference panic is contained as
/// [`BluError::Panicked`] and both route into PF fallback behind the
/// circuit breaker; a trace too short for even one measurement phase
/// is a typed [`BluError`]. With [`RobustConfig::checkpoint`] set the
/// loop persists (and optionally resumes) its state as cell 0.
pub fn run_blu_robust(
    capture: &FaultyCapture,
    config: &RobustConfig,
) -> Result<RobustRunReport, BluError> {
    run_blu_robust_cell(capture, config, 0)
}

/// [`run_blu_robust`] with an explicit cell index, which names the
/// checkpoint file (`cell-<index>.json`) when a
/// [`CheckpointPolicy`] is configured. Fleet entry points call this
/// with each capture's position.
pub fn run_blu_robust_cell(
    capture: &FaultyCapture,
    config: &RobustConfig,
    cell: usize,
) -> Result<RobustRunReport, BluError> {
    run_blu_robust_cell_in(capture, config, cell, &mut EngineArena::new())
}

/// [`run_blu_robust_cell`] with caller-provided recycled engine
/// buffers: the driver runs its transmit segments out of `arena` and
/// hands the buffers back on completion, so a fleet shard's cells
/// share one allocation pool and steady-state segments allocate
/// nothing per sub-frame. On an error path the arena may come back
/// empty (capacities lost, correctness unaffected).
pub fn run_blu_robust_cell_in(
    capture: &FaultyCapture,
    config: &RobustConfig,
    cell: usize,
    arena: &mut EngineArena,
) -> Result<RobustRunReport, BluError> {
    let ckpt_path = config
        .checkpoint
        .as_ref()
        .map(|p| p.dir.join(format!("cell-{cell}.json")));
    let mut driver = match (&config.checkpoint, &ckpt_path) {
        (Some(policy), Some(path)) if policy.resume && path.exists() => {
            let snap = load_robust_checkpoint(path)?;
            RobustDriver::resume(capture, config, snap)?
        }
        _ => RobustDriver::new(capture, config)?,
    };
    std::mem::swap(&mut driver.arena, arena);
    let mut last_saved = driver.snap.cursor;
    loop {
        let more = driver.step()?;
        if let (Some(policy), Some(path)) = (&config.checkpoint, &ckpt_path) {
            let interval_due = policy.every_subframes > 0
                && driver.snap.cursor.saturating_sub(last_saved) >= policy.every_subframes;
            // Clean shutdown always persists, so a later `--resume`
            // returns the completed run instead of recomputing it.
            if interval_due || !more {
                save_robust_checkpoint(path, &driver.snap)?;
                last_saved = driver.snap.cursor;
            }
        }
        if !more {
            break;
        }
    }
    std::mem::swap(&mut driver.arena, arena);
    Ok(driver.into_report())
}

/// Run the robust loop over a fleet of captures (one per cell) in
/// parallel across the sharded [`FleetEngine`].
///
/// Each cell's run is an independent pure function of its capture and
/// the shared config, and the fleet engine joins shards in spawn
/// order, so the reports come back **in input order** and — apart
/// from the wall-clock [`RobustRunReport::inference_micros`] field —
/// identical to [`run_robust_fleet_sequential`].
///
/// **Isolation contract:** any panic inside a cell's run is contained
/// inside that cell's closure (the fleet engine would otherwise
/// abort the whole join) and surfaces as that cell's
/// [`BluError::Panicked`]; the other cells' reports are exactly what
/// they would have been without the faulty neighbour.
pub fn run_robust_fleet(
    captures: &[FaultyCapture],
    config: &RobustConfig,
) -> Vec<Result<RobustRunReport, BluError>> {
    let indexed: Vec<(usize, &FaultyCapture)> = captures.iter().enumerate().collect();
    FleetEngine::run_isolated(indexed, EngineArena::new, |arena, (cell, cap)| {
        run_blu_robust_cell_in(cap, config, cell, arena)
    })
    .into_iter()
    .map(|r| r.and_then(|inner| inner))
    .collect()
}

/// Sequential reference for [`run_robust_fleet`] — kept alive for
/// differential testing and single-thread profiling.
pub fn run_robust_fleet_sequential(
    captures: &[FaultyCapture],
    config: &RobustConfig,
) -> Vec<Result<RobustRunReport, BluError>> {
    captures
        .iter()
        .enumerate()
        .map(|(cell, cap)| {
            catch_unwind(AssertUnwindSafe(|| run_blu_robust_cell(cap, config, cell)))
                .unwrap_or_else(|p| Err(BluError::Panicked(panic_message(p.as_ref()))))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::breaker::BreakerState;
    use crate::runtime::checkpoint::{RobustCheckpoint, CHECKPOINT_VERSION};
    use blu_phy::cell::CellConfig;
    use blu_sim::clientset::ClientSet;
    use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
    use blu_sim::time::Micros;
    use blu_traces::capture::CaptureConfig;
    use blu_traces::faults::capture_with_faults;

    fn capture(script: FaultScript, secs: u64, seed: u64) -> FaultyCapture {
        capture_with_faults(
            &CaptureConfig {
                duration: Micros::from_secs(secs),
                q_range: (0.25, 0.55),
                ..CaptureConfig::testbed_default()
            },
            &script,
            seed,
        )
        .unwrap()
    }

    fn quick_config() -> RobustConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let emu = crate::emulator::EmulationConfig::new(cell);
        RobustConfig::new(BluConfig::new(emu))
    }

    /// Reports compared field by field, excluding wall-clock timing.
    fn assert_reports_identical(a: &RobustRunReport, b: &RobustRunReport) {
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.measurement_subframes, b.measurement_subframes);
        assert_eq!(a.n_remeasurements, b.n_remeasurements);
        assert_eq!(a.speculative_txops, b.speculative_txops);
        assert_eq!(a.fallback_txops, b.fallback_txops);
        assert_eq!(a.final_confidence.to_bits(), b.final_confidence.to_bits());
        assert_eq!(a.peak_drift.to_bits(), b.peak_drift.to_bits());
        assert_eq!(a.breaker_transitions, b.breaker_transitions);
        assert_eq!(a.inference_panics, b.inference_panics);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.quarantined_constraints, b.quarantined_constraints);
        assert_eq!(a.stream_refines, b.stream_refines);
        assert_eq!(a.stream_refines_installed, b.stream_refines_installed);
        assert_eq!(
            a.stream_fallback_remeasurements,
            b.stream_fallback_remeasurements
        );
        assert_eq!(a.stream_churn_events, b.stream_churn_events);
        assert_eq!(a.stream_window_occupancy, b.stream_window_occupancy);
    }

    #[test]
    fn clean_run_stays_confident() {
        let cap = capture(FaultScript::none(), 60, 11);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert_eq!(report.final_state(), OrchestratorState::Confident);
        assert_eq!(report.n_remeasurements, 0);
        assert_eq!(report.fallback_txops, 0);
        assert!(report.speculative_txops > 0);
        assert!(report.metrics.bits_delivered > 0.0);
        assert!(report.final_confidence > 0.5);
        // The resilience layer is invisible on the clean path.
        assert!(report.breaker_transitions.is_empty());
        assert_eq!(report.inference_panics, 0);
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.quarantined_constraints, 0);
    }

    #[test]
    fn appearance_triggers_drift_and_remeasure() {
        // A strong new terminal blankets four clients mid-run.
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 20_000,
            kind: FaultKind::HtAppear {
                q: 0.6,
                edges: ClientSet::from_iter([0, 1, 2, 3]),
            },
        }]);
        let cap = capture(script, 90, 12);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(
            report.n_remeasurements >= 1,
            "appearance went undetected: peak drift {}",
            report.peak_drift
        );
        assert!(report.peak_drift > 0.35);
        assert!(report
            .transitions
            .iter()
            .any(|t| t.state == OrchestratorState::Drifting));
        // After re-measuring the loop should have found its footing
        // again rather than dying in fallback.
        assert_eq!(report.final_state(), OrchestratorState::Confident);
    }

    #[test]
    fn clean_run_never_spuriously_remeasures() {
        let cap = capture(FaultScript::none(), 90, 13);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert_eq!(
            report.n_remeasurements, 0,
            "false drift alarm (peak {})",
            report.peak_drift
        );
    }

    #[test]
    fn misclassification_does_not_panic_and_still_delivers() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::MisclassifyRate { rate: 0.05 },
        }]);
        let cap = capture(script, 60, 14);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(report.metrics.bits_delivered > 0.0);
        assert!(!report.verdicts.is_empty());
    }

    #[test]
    fn heavy_observation_faults_route_to_fallback_not_panic() {
        // Half the outcomes flipped and half the reports dropped: the
        // statistics are garbage; the loop must keep scheduling.
        let script = FaultScript::new(vec![
            FaultEvent {
                at_subframe: 0,
                kind: FaultKind::MisclassifyRate { rate: 0.5 },
            },
            FaultEvent {
                at_subframe: 0,
                kind: FaultKind::DropRate { rate: 0.5 },
            },
        ]);
        let cap = capture(script, 60, 15);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(report.metrics.bits_delivered > 0.0);
        // Either the inference survived the noise or fallback ran —
        // both are acceptable; a panic is not.
        assert!(report.fallback_txops > 0 || report.speculative_txops > 0);
    }

    #[test]
    fn deterministic() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 15_000,
            kind: FaultKind::QDrift { ht: 0, q: 0.9 },
        }]);
        let cap = capture(script, 60, 16);
        let cfg = quick_config();
        let a = run_blu_robust(&cap, &cfg).unwrap();
        let b = run_blu_robust(&cap, &cfg).unwrap();
        assert_reports_identical(&a, &b);
    }

    #[test]
    fn too_short_trace_is_a_typed_error() {
        let cap = capture(FaultScript::none(), 1, 17);
        let mut cfg = quick_config();
        cfg.blu.t_samples = 5_000;
        match run_blu_robust(&cap, &cfg) {
            Err(BluError::TraceTooShort { .. }) => {}
            other => panic!("expected TraceTooShort, got {other:?}"),
        }
    }

    #[test]
    fn effective_throughput_charges_measurement() {
        let cap = capture(FaultScript::none(), 60, 18);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(report.effective_throughput_mbps() <= report.metrics.throughput_mbps());
        assert!(report.effective_throughput_mbps() > 0.0);
    }

    #[test]
    fn fleet_matches_sequential_reference() {
        let caps: Vec<FaultyCapture> = (0..3)
            .map(|s| capture(FaultScript::none(), 60, 20 + s))
            .collect();
        let cfg = quick_config();
        let par = run_robust_fleet(&caps, &cfg);
        let seq = run_robust_fleet_sequential(&caps, &cfg);
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            // Everything but wall-clock timing must be identical.
            assert_reports_identical(a, b);
        }
    }

    #[test]
    fn mcmc_backend_completes_and_reports_timing() {
        use crate::blueprint::McmcConfig;
        let cap = capture(FaultScript::none(), 60, 19);
        let mut cfg = quick_config();
        cfg.backend = InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: 3_000,
                ..Default::default()
            },
            seed: 7,
        };
        let report = run_blu_robust(&cap, &cfg).unwrap();
        assert!(report.metrics.bits_delivered > 0.0);
        assert!(!report.verdicts.is_empty());
        assert!(report.inference_micros > 0);
    }

    #[test]
    fn degenerate_mcmc_backend_is_rejected_up_front() {
        use crate::blueprint::McmcConfig;
        let cap = capture(FaultScript::none(), 60, 19);
        let mut cfg = quick_config();
        cfg.backend = InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: 0,
                ..Default::default()
            },
            seed: 7,
        };
        assert!(matches!(
            run_blu_robust(&cap, &cfg),
            Err(BluError::InvalidConfig(_))
        ));
    }

    // ------------------------------------------------------------------
    // Resilience runtime: panic isolation, circuit breaking, poison
    // quarantine, checkpoint/restore.
    // ------------------------------------------------------------------

    fn panic_script() -> FaultScript {
        FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::InferencePanic { active: true },
        }])
    }

    #[test]
    fn injected_panic_is_contained_and_breaker_opens() {
        let cap = capture(panic_script(), 60, 30);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        // Every inference attempt panicked, was contained, and routed
        // to PF fallback.
        assert!(report.inference_panics >= 1);
        assert_eq!(report.speculative_txops, 0);
        assert!(report.fallback_txops > 0);
        assert!(report.metrics.bits_delivered > 0.0, "PF kept scheduling");
        assert_eq!(report.final_state(), OrchestratorState::Fallback);
        assert!(report
            .verdicts
            .iter()
            .all(|v| *v == InferenceVerdict::Degraded));
        // Threshold is 2: the second failure must have tripped the
        // breaker open.
        assert!(report
            .breaker_transitions
            .iter()
            .any(|t| t.to == BreakerState::Open));
    }

    #[test]
    fn breaker_backoff_spaces_out_retries() {
        // With vs without the breaker gating retries, the same
        // always-panicking run must attempt fewer inferences.
        let cap = capture(panic_script(), 120, 31);
        let gated = quick_config();
        let mut ungated = quick_config();
        // An effectively-never-tripping breaker reproduces the bare
        // probation cycle.
        ungated.breaker.failure_threshold = u32::MAX;
        let with_breaker = run_blu_robust(&cap, &gated).unwrap();
        let without = run_blu_robust(&cap, &ungated).unwrap();
        assert!(
            with_breaker.verdicts.len() < without.verdicts.len(),
            "breaker must reduce re-measurement probes: {} vs {}",
            with_breaker.verdicts.len(),
            without.verdicts.len()
        );
        assert!(without.breaker_transitions.is_empty());
    }

    #[test]
    fn stat_poison_is_quarantined_not_fatal() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::StatPoison { rate: 1.0 },
        }]);
        let cap = capture(script, 60, 32);
        let report = run_blu_robust(&cap, &quick_config()).unwrap();
        assert!(
            report.quarantined_constraints > 0,
            "poisoned targets must be counted"
        );
        assert_eq!(report.inference_panics, 0, "NaNs must never panic");
        assert!(report.metrics.bits_delivered > 0.0);
    }

    #[test]
    fn inference_stall_changes_timing_not_results() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 0,
            kind: FaultKind::InferenceStall { factor: 3 },
        }]);
        let clean = capture(FaultScript::none(), 60, 33);
        let stalled = capture(script, 60, 33);
        let cfg = quick_config();
        let a = run_blu_robust(&clean, &cfg).unwrap();
        let b = run_blu_robust(&stalled, &cfg).unwrap();
        // The stall repeats a deterministic solve: results identical.
        assert_reports_identical(&a, &b);
    }

    /// The fleet acceptance criterion: 8 cells, 2 of them faulty (one
    /// panicking, one panicking *and* 10× stalled). The fleet must
    /// complete, the healthy six must be byte-identical to a
    /// fault-free run, and the faulty two must sit in PF fallback
    /// behind an open breaker — no panic crosses the batch boundary.
    #[test]
    fn fleet_isolates_faulty_cells() {
        let faulty_script = |stall: bool| {
            let mut events = vec![FaultEvent {
                at_subframe: 0,
                kind: FaultKind::InferencePanic { active: true },
            }];
            if stall {
                events.push(FaultEvent {
                    at_subframe: 0,
                    kind: FaultKind::InferenceStall { factor: 10 },
                });
            }
            FaultScript::new(events)
        };
        let clean_caps: Vec<FaultyCapture> = (0..8)
            .map(|s| capture(FaultScript::none(), 45, 40 + s))
            .collect();
        let faulty_caps: Vec<FaultyCapture> = (0..8)
            .map(|s| {
                let script = match s {
                    2 => faulty_script(false),
                    5 => faulty_script(true),
                    _ => FaultScript::none(),
                };
                capture(script, 45, 40 + s)
            })
            .collect();
        // Runtime faults must not perturb the captured air itself.
        for (a, b) in clean_caps.iter().zip(&faulty_caps) {
            assert_eq!(a.trace.access.len(), b.trace.access.len());
        }
        let cfg = quick_config();
        let clean = run_robust_fleet(&clean_caps, &cfg);
        let mixed = run_robust_fleet(&faulty_caps, &cfg);
        assert_eq!(mixed.len(), 8, "fleet must complete");
        for i in 0..8 {
            let m = mixed[i].as_ref().unwrap();
            if i == 2 || i == 5 {
                assert!(m.inference_panics >= 1, "cell {i} must contain panics");
                assert_eq!(m.speculative_txops, 0);
                assert_eq!(m.final_state(), OrchestratorState::Fallback);
                assert!(
                    m.breaker_transitions
                        .iter()
                        .any(|t| t.to == BreakerState::Open),
                    "cell {i} breaker must have opened"
                );
            } else {
                assert_reports_identical(m, clean[i].as_ref().unwrap());
            }
        }
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 20_000,
            kind: FaultKind::HtAppear {
                q: 0.6,
                edges: ClientSet::from_iter([0, 1, 2, 3]),
            },
        }]);
        let cap = capture(script, 90, 50);
        let cfg = quick_config();

        // Uninterrupted reference run.
        let mut full = RobustDriver::new(&cap, &cfg).unwrap();
        while full.step().unwrap() {}
        let full_report = full.into_report();

        // "Crash" after a few steps: snapshot, drop the driver,
        // restore from the serialized bytes, continue.
        let mut first = RobustDriver::new(&cap, &cfg).unwrap();
        for _ in 0..3 {
            assert!(first.step().unwrap());
        }
        let dir = std::env::temp_dir().join(format!("blu-ckpt-resume-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &first.snap).unwrap();
        drop(first);

        let snap = load_robust_checkpoint(&path).unwrap();
        let mut resumed = RobustDriver::resume(&cap, &cfg, snap).unwrap();
        while resumed.step().unwrap() {}
        let resumed_report = resumed.into_report();

        assert_reports_identical(&full_report, &resumed_report);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Kill-and-resume pinned against the pre-refactor golden: the
    /// resumed run of the `robust_ht_appear_seed12` scenario must
    /// reproduce the digest recorded by the standalone-loop
    /// implementation in `tests/data/engine_golden_v1.json` — resume
    /// is not merely self-consistent, it is bit-identical to the
    /// pre-engine numbers.
    #[test]
    fn kill_and_resume_matches_pre_refactor_golden() {
        /// Order-sensitive bit-pattern fold (duplicated from the
        /// engine differential test, which cannot reach the private
        /// driver).
        fn fold_bits(xs: &[f64]) -> u64 {
            xs.iter().fold(0x9E37_79B9_7F4A_7C15u64, |h, x| {
                h.rotate_left(7) ^ x.to_bits()
            })
        }
        fn digest_metrics(m: &UplinkMetrics) -> String {
            format!(
                "sf={} sch={} ut={} col={} blk={} fad={} full={} bits={:016x} pc={:016x}",
                m.subframes,
                m.rbs_scheduled,
                m.rbs_utilized,
                m.rbs_collided,
                m.rbs_blocked,
                m.rbs_faded,
                m.fully_utilized_subframes,
                m.bits_delivered.to_bits(),
                fold_bits(&m.bits_per_client),
            )
        }
        fn digest_robust(r: &RobustRunReport) -> String {
            let trans_fold = r.transitions.iter().fold(0u64, |h, t| {
                h.rotate_left(5) ^ t.at_subframe ^ ((t.state as u64) << 56)
            });
            let verdict_fold = r
                .verdicts
                .iter()
                .fold(0u64, |h, v| h.rotate_left(3) ^ (*v as u64 + 1));
            format!(
                "meas={} remeas={} spec={} fb={} trans={}x{:016x} verdicts={}x{:016x} conf={:016x} \
                 drift={:016x} brk={} panics={} ddl={} quar={} metrics=[{}]",
                r.measurement_subframes,
                r.n_remeasurements,
                r.speculative_txops,
                r.fallback_txops,
                r.transitions.len(),
                trans_fold,
                r.verdicts.len(),
                verdict_fold,
                r.final_confidence.to_bits(),
                r.peak_drift.to_bits(),
                r.breaker_transitions.len(),
                r.inference_panics,
                r.deadline_misses,
                r.quarantined_constraints,
                digest_metrics(&r.metrics),
            )
        }

        // The exact scenario pinned as `robust_ht_appear_seed12`.
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 20_000,
            kind: FaultKind::HtAppear {
                q: 0.6,
                edges: ClientSet::from_iter([0, 1, 2, 3]),
            },
        }]);
        let cap = capture(script, 90, 12);
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut emu = crate::emulator::EmulationConfig::new(cell);
        emu.n_txops = 40;
        let cfg = RobustConfig::new(BluConfig::new(emu));

        // Kill after five steps, resume through serialized bytes.
        let mut first = RobustDriver::new(&cap, &cfg).unwrap();
        for _ in 0..5 {
            assert!(first.step().unwrap());
        }
        let dir = std::env::temp_dir().join(format!("blu-ckpt-golden-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &first.snap).unwrap();
        drop(first);
        let snap = load_robust_checkpoint(&path).unwrap();
        let mut resumed = RobustDriver::resume(&cap, &cfg, snap).unwrap();
        while resumed.step().unwrap() {}
        let report = resumed.into_report();
        std::fs::remove_dir_all(&dir).ok();

        let golden_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/data/engine_golden_v1.json"
        );
        let golden: std::collections::BTreeMap<String, String> =
            serde_json::from_str(&std::fs::read_to_string(golden_path).unwrap()).unwrap();
        assert_eq!(
            &digest_robust(&report),
            golden.get("robust_ht_appear_seed12").unwrap(),
            "kill-and-resume diverged from the pre-refactor robust run"
        );
    }

    #[test]
    fn checkpointing_run_matches_plain_run_and_resumes_completed() {
        let cap = capture(FaultScript::none(), 60, 51);
        let plain_cfg = quick_config();
        let plain = run_blu_robust(&cap, &plain_cfg).unwrap();

        let dir = std::env::temp_dir().join(format!("blu-ckpt-full-{}", std::process::id()));
        let mut ckpt_cfg = quick_config();
        ckpt_cfg.checkpoint = Some(CheckpointPolicy {
            dir: dir.clone(),
            every_subframes: 5_000,
            resume: false,
        });
        let checkpointed = run_blu_robust(&cap, &ckpt_cfg).unwrap();
        assert_reports_identical(&plain, &checkpointed);
        assert!(dir.join("cell-0.json").exists(), "clean shutdown persists");

        // Resuming the completed run replays nothing and returns the
        // identical report.
        let mut resume_cfg = ckpt_cfg.clone();
        resume_cfg.checkpoint.as_mut().unwrap().resume = true;
        let resumed = run_blu_robust(&cap, &resume_cfg).unwrap();
        assert_reports_identical(&plain, &resumed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_capture_and_seed() {
        let cap = capture(FaultScript::none(), 60, 52);
        let other = capture(FaultScript::none(), 90, 53);
        let cfg = quick_config();
        let driver = RobustDriver::new(&cap, &cfg).unwrap();
        let snap = driver.snap.clone();

        match RobustDriver::resume(&other, &cfg, snap.clone()) {
            Err(BluError::Checkpoint(msg)) => assert!(msg.contains("different capture")),
            Err(e) => panic!("expected Checkpoint error, got {e:?}"),
            Ok(_) => panic!("resume against the wrong capture must fail"),
        }
        let mut reseeded = quick_config();
        reseeded.seed ^= 1;
        match RobustDriver::resume(&cap, &reseeded, snap) {
            Err(BluError::Checkpoint(msg)) => assert!(msg.contains("seed")),
            Err(e) => panic!("expected Checkpoint error, got {e:?}"),
            Ok(_) => panic!("resume with a reseeded config must fail"),
        }
    }

    // ------------------------------------------------------------------
    // Streaming online inference under churn.
    // ------------------------------------------------------------------

    fn step_change_script() -> FaultScript {
        FaultScript::new(vec![FaultEvent {
            at_subframe: 20_000,
            kind: FaultKind::HtAppear {
                q: 0.6,
                edges: ClientSet::from_iter([0, 1, 2, 3]),
            },
        }])
    }

    fn initial_measure_subframes(cfg: &RobustConfig, n: usize) -> u64 {
        measurement_schedule(
            n,
            cfg.blu.emulation.cell.max_ues_per_subframe,
            cfg.blu.t_samples,
        )
        .unwrap()
        .t_max()
    }

    #[test]
    fn streaming_absorbs_step_change_within_half_the_remeasure_budget() {
        let cap = capture(step_change_script(), 90, 12);
        let phased_cfg = quick_config();
        let phased = run_blu_robust(&cap, &phased_cfg).unwrap();
        assert!(
            phased.n_remeasurements >= 1,
            "baseline must pay a full re-measurement for the step change"
        );

        let mut stream_cfg = quick_config();
        stream_cfg.streaming = Some(StreamingConfig::new(1_000));
        let streamed = run_blu_robust(&cap, &stream_cfg).unwrap();
        assert!(streamed.stream_refines > 0, "no incremental refines ran");
        assert!(
            streamed.stream_refines_installed > 0,
            "no refined blueprint ever passed the gate"
        );

        // The acceptance criterion: recovery at least as good as the
        // phased loop's, at no more than half its re-measurement
        // sub-frame budget.
        let n = cap.trace.ground_truth.n_clients;
        let initial = initial_measure_subframes(&phased_cfg, n);
        let phased_extra = phased.measurement_subframes - initial;
        let stream_extra = streamed.measurement_subframes - initial;
        assert!(phased_extra > 0);
        assert!(
            stream_extra * 2 <= phased_extra,
            "streaming re-measured {stream_extra} sub-frames vs phased {phased_extra}"
        );
        assert!(
            streamed.effective_throughput_mbps() >= phased.effective_throughput_mbps(),
            "streaming recovery ({}) fell below the phased loop ({})",
            streamed.effective_throughput_mbps(),
            phased.effective_throughput_mbps()
        );
    }

    #[test]
    fn streaming_is_deterministic_and_resumes_bit_identically() {
        let cap = capture(step_change_script(), 90, 12);
        let mut cfg = quick_config();
        cfg.streaming = Some(StreamingConfig::new(1_000));

        let mut full = RobustDriver::new(&cap, &cfg).unwrap();
        while full.step().unwrap() {}
        let full_report = full.into_report();

        // Kill mid-run, persist (the stream state — ring included —
        // rides the checkpoint), resume, and finish identically.
        let mut first = RobustDriver::new(&cap, &cfg).unwrap();
        for _ in 0..6 {
            assert!(first.step().unwrap());
        }
        assert!(
            first.snap.stream.is_some(),
            "streaming run must materialize stream state"
        );
        let dir = std::env::temp_dir().join(format!("blu-ckpt-stream-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &first.snap).unwrap();
        drop(first);
        let snap = load_robust_checkpoint(&path).unwrap();
        let mut resumed = RobustDriver::resume(&cap, &cfg, snap).unwrap();
        while resumed.step().unwrap() {}
        let resumed_report = resumed.into_report();
        std::fs::remove_dir_all(&dir).ok();

        assert_reports_identical(&full_report, &resumed_report);
    }

    #[test]
    fn streaming_run_under_poisson_churn_applies_events() {
        use blu_sim::churn::{generate_churn, ChurnConfig};
        let cap_cfg = CaptureConfig {
            duration: Micros::from_secs(90),
            q_range: (0.25, 0.55),
            ..CaptureConfig::testbed_default()
        };
        let churn = ChurnConfig::with_total_rate(cap_cfg.n_ues, 60_000, 0.2);
        let events = generate_churn(&churn, cap_cfg.n_hts, 0xC0FF).unwrap();
        assert!(!events.is_empty(), "expected churn events at this rate");
        let script = compile_churn_script(&events, 20_000).unwrap();
        let cap = capture_with_faults(&cap_cfg, &script, 12).unwrap();

        let mut cfg = quick_config();
        cfg.streaming = Some(StreamingConfig::new(1_000));
        let report = run_blu_robust(&cap, &cfg).unwrap();
        assert!(
            report.stream_churn_events > 0,
            "segments crossed no churn events"
        );
        assert!(report.stream_refines > 0);
        assert!(report.stream_window_occupancy > 0);
        assert!(report.metrics.bits_delivered > 0.0);
    }

    #[test]
    fn streaming_fleet_cache_is_transparent_under_churn() {
        use blu_sim::churn::{generate_churn, ChurnConfig};
        let cap_cfg = CaptureConfig {
            duration: Micros::from_secs(90),
            q_range: (0.25, 0.55),
            ..CaptureConfig::testbed_default()
        };
        let churn = ChurnConfig::with_total_rate(cap_cfg.n_ues, 60_000, 0.2);
        let events = generate_churn(&churn, cap_cfg.n_hts, 0xC0FF).unwrap();
        let script = compile_churn_script(&events, 20_000).unwrap();
        let cap = capture_with_faults(&cap_cfg, &script, 12).unwrap();

        let mut plain = quick_config();
        plain.streaming = Some(StreamingConfig::new(1_000));
        let mut cached = plain.clone();
        cached.fleet_cache = Some(std::sync::Arc::new(
            crate::blueprint::FleetBlueprintCache::new(
                crate::blueprint::DEFAULT_FLEET_CACHE_CAPACITY,
            ),
        ));
        let a = run_blu_robust(&cap, &plain).unwrap();
        let b = run_blu_robust(&cap, &cached).unwrap();
        assert_reports_identical(&a, &b);
    }

    /// Satellite regression: the cache signature is recomputed from
    /// the books actually being solved, so a lookup after churn has
    /// mutated the statistics can never hit the pre-churn entry.
    #[test]
    fn post_churn_cache_lookup_cannot_return_pre_churn_blueprint() {
        use crate::blueprint::{
            ConstraintSystem, FleetBlueprintCache, InferenceConfig, TopologySignature,
        };
        use blu_traces::stats::EmpiricalAccess;

        let n = 4;
        let mut stats = EmpiricalAccess::new(n);
        let all = ClientSet::all(n);
        for _ in 0..200 {
            stats.record(all, ClientSet::from_iter([0, 1, 2]));
            stats.record(all, all);
        }
        let pre = ConstraintSystem::from_measurements(&stats);

        // Churn: a terminal appears and client 3 starts losing access.
        for _ in 0..200 {
            stats.record(all, ClientSet::from_iter([0, 1]));
        }
        let post = ConstraintSystem::from_measurements(&stats);

        let icfg = InferenceConfig::default();
        let backend = InferenceBackend::Gradient;
        let sig_pre = TopologySignature::new(&pre, &icfg, &backend);
        let sig_post = TopologySignature::new(&post, &icfg, &backend);
        assert_ne!(
            sig_pre.key(),
            sig_post.key(),
            "churn-mutated books must re-sign"
        );

        let cache = FleetBlueprintCache::new(8);
        let (_, _) = cache.get_or_solve_infallible(&sig_pre, || backend.infer(&pre, &icfg));
        let (_, _) = cache.get_or_solve_infallible(&sig_post, || backend.infer(&post, &icfg));
        let stats = cache.stats();
        assert_eq!(
            stats.hits, 0,
            "post-churn lookup must miss the pre-churn entry"
        );
        assert_eq!(stats.misses, 2);
    }

    // ------------------------------------------------------------------
    // Checked churn-offset compilation (relative → absolute time).
    // ------------------------------------------------------------------

    #[test]
    fn churn_offsets_compile_with_checked_arithmetic() {
        use blu_sim::churn::TopologyEvent;
        let ev = |offset| TopologyEvent {
            offset_subframes: offset,
            kind: FaultKind::QDrift { ht: 0, q: 0.5 },
        };

        // u32::MAX-adjacent boundaries stay exact in u64 space.
        let start = u64::from(u32::MAX);
        let script = compile_churn_script(&[ev(u64::from(u32::MAX))], start).unwrap();
        assert_eq!(script.events[0].at_subframe, 2 * start);
        let script = compile_churn_script(&[ev(0)], start + 1).unwrap();
        assert_eq!(script.events[0].at_subframe, start + 1);

        // The exact u64 ceiling is representable...
        let script = compile_churn_script(&[ev(u64::MAX - 5)], 5).unwrap();
        assert_eq!(script.events[0].at_subframe, u64::MAX);
        // ...and one past it is a typed overflow, not a wrap.
        match compile_churn_script(&[ev(u64::MAX - 5)], 6) {
            Err(BluError::Overflow { what }) => assert!(what.contains("churn")),
            other => panic!("expected Overflow, got {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint format stability.
    // ------------------------------------------------------------------

    /// A deterministic snapshot: the fresh pre-step state contains no
    /// wall-clock fields, so its serialization is a pure function of
    /// the capture and config.
    fn fresh_snapshot() -> RobustSnapshot {
        let cap = capture(FaultScript::none(), 60, 60);
        let cfg = quick_config();
        RobustDriver::new(&cap, &cfg).unwrap().snap
    }

    #[test]
    fn checkpoint_round_trips_through_disk() {
        let snap = fresh_snapshot();
        let dir = std::env::temp_dir().join(format!("blu-ckpt-rt-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &snap).unwrap();
        let thawed = load_robust_checkpoint(&path).unwrap();
        assert_eq!(thawed, snap);
        // A second save over the same path must stay atomic-valid.
        save_robust_checkpoint(&path, &thawed).unwrap();
        assert_eq!(load_robust_checkpoint(&path).unwrap(), snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Golden-file pin: the v1 on-disk schema. If this test fails the
    /// format changed — bump [`CHECKPOINT_VERSION`] (and regenerate
    /// the golden file with `BLU_REGEN_GOLDEN=1 cargo test -p
    /// blu-core checkpoint_golden`) rather than silently breaking old
    /// snapshots. The engine extraction renamed the Rust type to
    /// `CellSnapshot`; serde encodes field names only, so the v1
    /// bytes are untouched — which is exactly what this pin proves.
    #[test]
    fn checkpoint_golden_file_round_trips() {
        let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/checkpoint_v1.json");
        if std::env::var_os("BLU_REGEN_GOLDEN").is_some() {
            let doc = RobustCheckpoint {
                version: CHECKPOINT_VERSION,
                snapshot: fresh_snapshot(),
            };
            let json = serde_json::to_string_pretty(&doc).unwrap();
            std::fs::create_dir_all(std::path::Path::new(golden_path).parent().unwrap()).unwrap();
            std::fs::write(golden_path, json + "\n").unwrap();
        }
        let golden = &std::fs::read_to_string(golden_path).unwrap();
        let snap: RobustSnapshot = {
            let doc: RobustCheckpoint = serde_json::from_str(golden).unwrap();
            assert_eq!(doc.version, CHECKPOINT_VERSION);
            doc.snapshot
        };
        assert_eq!(snap, fresh_snapshot(), "golden snapshot drifted");
        // Re-serializing reproduces the golden bytes exactly.
        let doc = RobustCheckpoint {
            version: CHECKPOINT_VERSION,
            snapshot: snap,
        };
        assert_eq!(
            serde_json::to_string_pretty(&doc).unwrap().trim_end(),
            golden.trim_end(),
            "serialization of the v1 schema changed"
        );
    }

    #[test]
    fn version_mismatch_is_rejected_before_decode() {
        let snap = fresh_snapshot();
        let dir = std::env::temp_dir().join(format!("blu-ckpt-ver-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &snap).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replacen(
            &format!("\"version\": {CHECKPOINT_VERSION}"),
            "\"version\": 999",
            1,
        );
        assert_ne!(text, bumped, "version field must be present to tamper");
        std::fs::write(&path, bumped).unwrap();
        match load_robust_checkpoint(&path) {
            Err(BluError::CheckpointVersion { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, CHECKPOINT_VERSION);
            }
            other => panic!("expected CheckpointVersion, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_snapshot_is_a_typed_error_and_tmp_is_ignored() {
        let snap = fresh_snapshot();
        let dir = std::env::temp_dir().join(format!("blu-ckpt-torn-{}", std::process::id()));
        let path = dir.join("cell-0.json");
        save_robust_checkpoint(&path, &snap).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();

        // A crash mid-write under the atomic protocol leaves a torn
        // `.tmp` sibling and the previous complete checkpoint intact.
        std::fs::write(path.with_extension("tmp"), &text[..text.len() / 2]).unwrap();
        assert_eq!(load_robust_checkpoint(&path).unwrap(), snap);

        // A genuinely torn target file (pre-atomic-write crash, disk
        // corruption) must surface as a typed error, not a panic.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        match load_robust_checkpoint(&path) {
            Err(BluError::Checkpoint(_)) => {}
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
