//! Algorithm 1: scheduling measurement sub-frames.
//!
//! Goal: observe every client **pair** jointly in at least `T`
//! sub-frames while scheduling at most `K` distinct clients per
//! sub-frame, using as few sub-frames as possible. The information-
//! theoretic floor is `F_min = ⌈C(N,2)/C(K,2)·T⌉` (each sub-frame
//! covers at most `C(K,2)` pairs).
//!
//! The paper's greedy builds each sub-frame one client at a time,
//! choosing the client whose added pairs have been sampled least so
//! far, through a logarithmic (diminishing-returns) utility of the
//! pair counts — which also keeps sampling *even* over time, so the
//! measurements are usable before the phase completes. We implement
//! that greedy with the concave marginal gain
//! `Σ_{s∈S} [log(2+c_{ℓs}) − log(1+c_{ℓs})]`, which is the increment
//! of the paper's `Σ_j log((1+c_j)/(1+T))` objective when the chosen
//! pairs' counters advance.

use crate::error::BluError;
use blu_sim::clientset::ClientSet;
use blu_traces::stats::{n_pairs, pair_index};

/// Lower bound on measurement sub-frames: `⌈C(N,2)/C(K,2)·T⌉`.
///
/// All arithmetic is checked: `C(N,2)·T` on a planet-scale `N` or an
/// absurd `T` overflows `u64`, and an overflowed floor would silently
/// produce a *bogus small* plan bound instead of refusing — so it is
/// a typed [`BluError::Overflow`], and degenerate `N`/`K` (below 2,
/// where no pair is schedulable) are [`BluError::InvalidConfig`]
/// rather than a panic.
pub fn min_subframes(n: usize, k: usize, t: u64) -> Result<u64, BluError> {
    if n < 2 {
        return Err(BluError::InvalidConfig(format!(
            "measurement needs at least two clients, got {n}"
        )));
    }
    if k < 2 {
        return Err(BluError::InvalidConfig(format!(
            "measurement needs at least two clients per sub-frame, got K = {k}"
        )));
    }
    let total_pairs = n_pairs(n) as u64;
    let per_subframe = n_pairs(k.min(n)) as u64;
    let demand = total_pairs.checked_mul(t).ok_or(BluError::Overflow {
        what: "measurement floor C(N,2)·T",
    })?;
    Ok(demand.div_ceil(per_subframe))
}

/// The output plan: one client set per measurement sub-frame.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementPlan {
    /// Clients to schedule in each sub-frame, in order.
    pub subframes: Vec<ClientSet>,
    /// Final per-pair sample counts.
    pub pair_counts: Vec<u64>,
    /// Number of clients.
    pub n: usize,
}

impl MeasurementPlan {
    /// Sub-frames used (`t_max` in the paper).
    pub fn t_max(&self) -> u64 {
        self.subframes.len() as u64
    }

    /// Minimum samples across all pairs.
    pub fn min_pair_count(&self) -> u64 {
        self.pair_counts.iter().copied().min().unwrap_or(0)
    }
}

/// Run Algorithm 1: produce a schedule giving every pair at least `T`
/// joint observations with ≤ `K` distinct clients per sub-frame.
///
/// ```
/// use blu_core::measure::{measurement_schedule, min_subframes};
///
/// let plan = measurement_schedule(10, 4, 5).unwrap();
/// assert!(plan.pair_counts.iter().all(|&c| c >= 5));
/// // Close to the information-theoretic floor.
/// assert!(plan.t_max() <= 2 * min_subframes(10, 4, 5).unwrap());
/// ```
///
/// Errors unless `2 ≤ K` and `2 ≤ N` (pairs must be schedulable).
pub fn measurement_schedule(n: usize, k: usize, t: u64) -> Result<MeasurementPlan, BluError> {
    // Hard cap to guarantee termination even under bugs; the greedy
    // needs ≈ F_min and never more than N/K times that. Degenerate
    // N/K and an overflowing floor surface here as typed errors.
    let cap = min_subframes(n, k, t)?
        .checked_mul(4)
        .and_then(|c| c.checked_add(16))
        .ok_or(BluError::Overflow {
            what: "measurement schedule cap 4·F_min + 16",
        })?;
    let k = k.min(n);
    let mut counts = vec![0u64; n_pairs(n)];
    let mut subframes = Vec::new();
    while counts.iter().any(|&c| c < t) {
        if (subframes.len() as u64) >= cap {
            return Err(BluError::Inference(format!(
                "Algorithm 1 failed to converge within {cap} sub-frames (N={n}, K={k}, T={t})"
            )));
        }
        let mut s = ClientSet::EMPTY;
        // First client: the one participating in the least-sampled
        // pairs overall (drives coverage toward starved pairs).
        let first = (0..n)
            .min_by_key(|&i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| {
                        let (a, b) = if i < j { (i, j) } else { (j, i) };
                        counts[pair_index(n, a, b)]
                    })
                    .min()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        s.insert(first);
        // Remaining K−1 clients by maximum concave marginal gain.
        for _ in 1..k {
            let mut best: Option<(usize, f64)> = None;
            for l in 0..n {
                if s.contains(l) {
                    continue;
                }
                let gain: f64 = s
                    .iter()
                    .map(|m| {
                        let (a, b) = if l < m { (l, m) } else { (m, l) };
                        let c = counts[pair_index(n, a, b)] as f64;
                        ((2.0 + c) / (1.0 + c)).ln()
                    })
                    .sum();
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((l, gain));
                }
            }
            // Candidates always remain while |S| < K ≤ N; treat the
            // impossible case as a no-op rather than aborting.
            let Some((l, _)) = best else { break };
            s.insert(l);
        }
        // Update pair counters.
        let members: Vec<usize> = s.iter().collect();
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                counts[pair_index(n, i, j)] += 1;
            }
        }
        subframes.push(s);
    }
    Ok(MeasurementPlan {
        subframes,
        pair_counts: counts,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_matches_paper_examples() {
        // §3.3: N=20, K=8, pairwise → < 7T sub-frames.
        assert_eq!(min_subframes(20, 8, 1).unwrap(), 7);
        assert_eq!(min_subframes(20, 8, 50).unwrap(), 340); // t_max ≈ 340 (§3.7)
    }

    #[test]
    fn floor_overflow_is_a_typed_error_not_a_wrap() {
        // C(N,2) for N = 2^32 is ≈ 2^63: already near the u64 edge,
        // so any T ≥ 2 overflows the C(N,2)·T product. Pin the exact
        // boundary: the largest T that still fits, and T+1.
        let n = 1usize << 32;
        let pairs = n_pairs(n) as u64;
        let t_ok = u64::MAX / pairs;
        assert!(min_subframes(n, 8, t_ok).is_ok());
        match min_subframes(n, 8, t_ok + 1) {
            Err(BluError::Overflow { what }) => assert!(what.contains("floor")),
            other => panic!("expected Overflow, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_n_and_k_are_typed_errors() {
        assert!(matches!(
            min_subframes(1, 4, 5),
            Err(BluError::InvalidConfig(_))
        ));
        assert!(matches!(
            min_subframes(10, 1, 5),
            Err(BluError::InvalidConfig(_))
        ));
        assert!(matches!(
            measurement_schedule(1, 4, 5),
            Err(BluError::InvalidConfig(_))
        ));
        assert!(matches!(
            measurement_schedule(10, 0, 5),
            Err(BluError::InvalidConfig(_))
        ));
    }

    #[test]
    fn every_pair_reaches_t() {
        let plan = measurement_schedule(10, 4, 5).unwrap();
        assert!(plan.pair_counts.iter().all(|&c| c >= 5));
        assert!(plan.min_pair_count() >= 5);
    }

    #[test]
    fn subframes_respect_k() {
        let plan = measurement_schedule(12, 5, 3).unwrap();
        assert!(plan.subframes.iter().all(|s| s.len() == 5));
    }

    #[test]
    fn overhead_close_to_floor() {
        for &(n, k, t) in &[(10usize, 4usize, 5u64), (20, 8, 10), (8, 8, 3), (15, 6, 4)] {
            let plan = measurement_schedule(n, k, t).unwrap();
            let floor = min_subframes(n, k, t).unwrap();
            assert!(
                plan.t_max() <= floor * 2,
                "N={n} K={k} T={t}: t_max {} vs floor {floor}",
                plan.t_max()
            );
        }
    }

    #[test]
    fn paper_operating_point() {
        // §3.7: N=20, T=50, K=8 → t_max ≈ 340 sub-frames. Our greedy
        // should land in the same ballpark (well under 2×).
        let plan = measurement_schedule(20, 8, 50).unwrap();
        let t_max = plan.t_max();
        assert!(
            (340..600).contains(&t_max),
            "t_max {t_max} out of expected range"
        );
    }

    #[test]
    fn sampling_stays_balanced_midway() {
        // The log utility promises near-even sampling at any point:
        // after half the schedule, max and min pair counts stay close.
        let plan = measurement_schedule(12, 4, 8).unwrap();
        let half = plan.subframes.len() / 2;
        let mut counts = vec![0u64; n_pairs(12)];
        for s in &plan.subframes[..half] {
            let m: Vec<usize> = s.iter().collect();
            for (a, &i) in m.iter().enumerate() {
                for &j in &m[a + 1..] {
                    counts[pair_index(12, i, j)] += 1;
                }
            }
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 3, "unbalanced at midpoint: {min}..{max}");
    }

    #[test]
    fn k_capped_at_n() {
        let plan = measurement_schedule(3, 8, 2).unwrap();
        assert!(plan.subframes.iter().all(|s| s.len() == 3));
        assert!(plan.pair_counts.iter().all(|&c| c >= 2));
        // With K ≥ N every sub-frame covers all pairs: exactly T needed.
        assert_eq!(plan.t_max(), 2);
    }

    #[test]
    fn whole_cell_in_one_subframe() {
        let plan = measurement_schedule(6, 6, 4).unwrap();
        assert_eq!(plan.t_max(), 4);
    }
}
