//! Turning grant outcomes into access-distribution measurements.
//!
//! The estimator consumes per-RB decode observations
//! ([`RbObservation`]) and updates the empirical access statistics.
//! The crucial filter (paper §3.3): only *blocked* outcomes (no
//! pilot) count as "could not access"; *fading* losses — pilot
//! received, data lost — mean the client did access the channel, and
//! a *collision* between over-scheduled clients also proves all of
//! them accessed. Conflating fading with blocking would corrupt
//! `p(i)` and poison the blue-print.

use blu_phy::outcome::{DecodeOutcome, RbObservation};
use blu_sim::clientset::ClientSet;
use blu_traces::stats::EmpiricalAccess;
use serde::{Deserialize, Serialize};

/// Accumulates access statistics from scheduler outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeEstimator {
    stats: EmpiricalAccess,
}

impl OutcomeEstimator {
    /// New estimator over `n` clients.
    pub fn new(n: usize) -> Self {
        OutcomeEstimator {
            stats: EmpiricalAccess::new(n),
        }
    }

    /// Ingest one sub-frame's observations (one entry per RB). Each
    /// scheduled client is counted once per sub-frame regardless of
    /// how many RBs it held: its access state is a per-sub-frame
    /// property (one CCA per grant).
    pub fn record_subframe(&mut self, observations: &[RbObservation]) {
        let mut observed = ClientSet::EMPTY;
        let mut accessed = ClientSet::EMPTY;
        for obs in observations {
            for &(ue, outcome) in &obs.outcomes {
                observed.insert(ue);
                match outcome {
                    DecodeOutcome::Blocked => {}
                    DecodeOutcome::Collision
                    | DecodeOutcome::Fading
                    | DecodeOutcome::Success { .. } => {
                        accessed.insert(ue);
                    }
                }
            }
        }
        if !observed.is_empty() {
            self.stats.record(observed, accessed);
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &EmpiricalAccess {
        &self.stats
    }

    /// Mutable access for callers that record (observed, accessible)
    /// sets directly — e.g. the measurement phase, where the schedule
    /// itself defines who is observed.
    pub fn stats_mut(&mut self) -> &mut EmpiricalAccess {
        &mut self.stats
    }

    /// Age the accumulated statistics by `keep` (see
    /// [`EmpiricalAccess::decay`]): called before a re-measurement so
    /// the shortened phase's fresh samples outweigh pre-drift history.
    pub fn decay(&mut self, keep: f64) {
        self.stats.decay(keep);
    }

    /// Consume into the statistics.
    pub fn into_stats(self) -> EmpiricalAccess {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_phy::outcome::classify_rb;

    #[test]
    fn blocked_counts_as_no_access() {
        let mut est = OutcomeEstimator::new(3);
        let obs = classify_rb(
            ClientSet::from_iter([0, 1]),
            ClientSet::singleton(0),
            1,
            |_| Some(10.0),
        );
        est.record_subframe(&[obs]);
        assert_eq!(est.stats().p_individual(0), Some(1.0));
        assert_eq!(est.stats().p_individual(1), Some(0.0));
        assert_eq!(est.stats().p_individual(2), None);
    }

    #[test]
    fn fading_still_counts_as_access() {
        let mut est = OutcomeEstimator::new(2);
        let obs = classify_rb(
            ClientSet::singleton(0),
            ClientSet::singleton(0),
            1,
            |_| None, // fading loss
        );
        est.record_subframe(&[obs]);
        assert_eq!(est.stats().p_individual(0), Some(1.0));
    }

    #[test]
    fn collision_counts_as_access_for_all() {
        let mut est = OutcomeEstimator::new(2);
        let sched = ClientSet::from_iter([0, 1]);
        let obs = classify_rb(sched, sched, 1, |_| Some(5.0));
        est.record_subframe(&[obs]);
        assert_eq!(est.stats().p_individual(0), Some(1.0));
        assert_eq!(est.stats().p_individual(1), Some(1.0));
        assert_eq!(est.stats().p_pair(0, 1), Some(1.0));
    }

    #[test]
    fn client_counted_once_per_subframe() {
        // Same client on two RBs in one sub-frame: one observation.
        let mut est = OutcomeEstimator::new(2);
        let obs1 = classify_rb(ClientSet::singleton(0), ClientSet::EMPTY, 1, |_| None);
        let obs2 = classify_rb(ClientSet::singleton(0), ClientSet::singleton(0), 1, |_| {
            Some(1.0)
        });
        // Blocked on one RB, success on the other cannot happen
        // physically (one CCA per sub-frame), but if pilots straddle,
        // access on *any* RB proves channel access.
        est.record_subframe(&[obs1, obs2]);
        assert_eq!(est.stats().obs_individual[0], 1);
        assert_eq!(est.stats().p_individual(0), Some(1.0));
    }

    #[test]
    fn empty_subframe_ignored() {
        let mut est = OutcomeEstimator::new(2);
        est.record_subframe(&[]);
        assert_eq!(est.stats().p_individual(0), None);
    }

    #[test]
    fn pairwise_statistics_accumulate() {
        let mut est = OutcomeEstimator::new(2);
        let sched = ClientSet::from_iter([0, 1]);
        // Sub-frame 1: both access (collision on SISO).
        est.record_subframe(&[classify_rb(sched, sched, 1, |_| Some(1.0))]);
        // Sub-frame 2: only client 0.
        est.record_subframe(&[classify_rb(sched, ClientSet::singleton(0), 1, |_| {
            Some(1.0)
        })]);
        assert_eq!(est.stats().p_pair(0, 1), Some(0.5));
        assert_eq!(est.stats().p_individual(0), Some(1.0));
        assert_eq!(est.stats().p_individual(1), Some(0.5));
    }
}
