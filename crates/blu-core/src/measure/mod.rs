//! Scalable measurement of client access distributions (paper §3.3).

pub mod algorithm1;
pub mod estimator;

pub use algorithm1::{measurement_schedule, min_subframes, MeasurementPlan};
pub use estimator::OutcomeEstimator;
