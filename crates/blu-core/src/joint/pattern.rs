//! Pattern-distribution implementations of [`AccessDistribution`].

use super::AccessDistribution;
use blu_sim::clientset::ClientSet;
use blu_sim::topology::InterferenceTopology;
use blu_traces::schema::AccessTrace;
use std::cell::RefCell;
use std::collections::HashMap;

/// Exact pattern distributions from a hidden-terminal topology.
///
/// For a client set `w` the distribution over blocked-patterns is
/// computed by a dynamic program over hidden terminals: start from
/// "nobody blocked" with probability 1 and fold each HT in — active
/// with probability `q(k)` (OR-ing its local edge mask into the
/// blocked pattern), idle with `1 − q(k)`. `O(h · 2^|w|)`, exact.
///
/// Distributions are memoized per client set, because the scheduler
/// re-queries the same candidate groups across RBs and sub-frames.
pub struct TopologyAccess<'a> {
    topo: &'a InterferenceTopology,
    cache: RefCell<HashMap<u128, Vec<f64>>>,
}

impl<'a> TopologyAccess<'a> {
    /// Wrap a topology.
    pub fn new(topo: &'a InterferenceTopology) -> Self {
        TopologyAccess {
            topo,
            cache: RefCell::new(HashMap::new()),
        }
    }

    fn compute(&self, w: ClientSet) -> Vec<f64> {
        let members: Vec<usize> = w.iter().collect();
        let size = 1usize << members.len();
        let mut dist = vec![0.0; size];
        dist[0] = 1.0;
        let mut scratch = vec![0.0; size];
        for ht in &self.topo.hts {
            // Local blocked-mask of this HT within w.
            let mut local = 0usize;
            for (n, &c) in members.iter().enumerate() {
                if ht.edges.contains(c) {
                    local |= 1 << n;
                }
            }
            if local == 0 || ht.q == 0.0 {
                continue; // does not touch w / never active
            }
            scratch.iter_mut().for_each(|x| *x = 0.0);
            for (m, &p) in dist.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                scratch[m] += p * (1.0 - ht.q);
                scratch[m | local] += p * ht.q;
            }
            std::mem::swap(&mut dist, &mut scratch);
        }
        dist
    }
}

impl AccessDistribution for TopologyAccess<'_> {
    fn pattern_distribution(&self, w: ClientSet) -> Vec<f64> {
        if let Some(d) = self.cache.borrow().get(&w.0) {
            return d.clone();
        }
        let d = self.compute(w);
        self.cache.borrow_mut().insert(w.0, d.clone());
        d
    }
}

/// Pattern frequencies counted from a full access trace — the
/// perfect-knowledge source the paper uses to isolate scheduler
/// performance from inference (Fig. 15). The paper notes computing
/// these directly in real time is impractical at MU-MIMO scale; the
/// Criterion bench `joint_distributions` quantifies that.
pub struct EmpiricalPatternAccess<'a> {
    trace: &'a AccessTrace,
    cache: RefCell<HashMap<u128, Vec<f64>>>,
}

impl<'a> EmpiricalPatternAccess<'a> {
    /// Wrap an access trace.
    pub fn new(trace: &'a AccessTrace) -> Self {
        assert!(!trace.is_empty(), "empty access trace");
        EmpiricalPatternAccess {
            trace,
            cache: RefCell::new(HashMap::new()),
        }
    }

    fn compute(&self, w: ClientSet) -> Vec<f64> {
        let members: Vec<usize> = w.iter().collect();
        let size = 1usize << members.len();
        let mut counts = vec![0u64; size];
        for &acc in &self.trace.accessible {
            let mut m = 0usize;
            for (n, &c) in members.iter().enumerate() {
                if !acc.contains(c) {
                    m |= 1 << n;
                }
            }
            counts[m] += 1;
        }
        let total = self.trace.accessible.len() as f64;
        counts.into_iter().map(|c| c as f64 / total).collect()
    }
}

impl AccessDistribution for EmpiricalPatternAccess<'_> {
    fn pattern_distribution(&self, w: ClientSet) -> Vec<f64> {
        if let Some(d) = self.cache.borrow().get(&w.0) {
            return d.clone();
        }
        let d = self.compute(w);
        self.cache.borrow_mut().insert(w.0, d.clone());
        d
    }
}

/// Independence assumption: each client blocked with probability
/// `1 − p(i)` independently. This is what a scheduler with only
/// individual access probabilities can assume; over-scheduling on it
/// ignores shared hidden terminals (the paper's Fig. 5 failure).
pub struct IndependentAccess {
    /// Individual access probabilities, indexed by client.
    pub p: Vec<f64>,
}

impl IndependentAccess {
    /// Construct from per-client access probabilities.
    pub fn new(p: Vec<f64>) -> Self {
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        IndependentAccess { p }
    }
}

impl AccessDistribution for IndependentAccess {
    fn pattern_distribution(&self, w: ClientSet) -> Vec<f64> {
        let members: Vec<usize> = w.iter().collect();
        let size = 1usize << members.len();
        let mut dist = vec![1.0; size];
        for (m, d) in dist.iter_mut().enumerate() {
            for (n, &c) in members.iter().enumerate() {
                let blocked = (m >> n) & 1 == 1;
                *d *= if blocked { 1.0 - self.p[c] } else { self.p[c] };
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::{HiddenTerminal, InterferenceTopology};

    fn topo3() -> InterferenceTopology {
        InterferenceTopology {
            n_clients: 3,
            hts: vec![
                HiddenTerminal {
                    q: 0.4,
                    edges: ClientSet::from_iter([0, 1]),
                },
                HiddenTerminal {
                    q: 0.3,
                    edges: ClientSet::from_iter([1, 2]),
                },
            ],
        }
    }

    #[test]
    fn topology_pattern_distribution_sums_to_one() {
        let topo = topo3();
        let acc = TopologyAccess::new(&topo);
        for mask in 1u128..8 {
            let d = acc.pattern_distribution(ClientSet(mask));
            let sum: f64 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "mask {mask}: {sum}");
        }
    }

    #[test]
    fn topology_pattern_matches_closed_forms() {
        let topo = topo3();
        let acc = TopologyAccess::new(&topo);
        // w = {0,1}: patterns indexed (bit0 = client0 blocked,
        // bit1 = client1 blocked).
        let d = acc.pattern_distribution(ClientSet::from_iter([0, 1]));
        // Both access: HT0 idle AND HT1 idle-or... client0 blocked by
        // HT0 only; client1 by HT0 or HT1.
        // P(00) = (1−0.4)(1−0.3) = 0.42
        assert!((d[0] - 0.42).abs() < 1e-12);
        // P(client0 ok, client1 blocked) = (1−0.4)·0.3 = 0.18
        assert!((d[2] - 0.18).abs() < 1e-12);
        // P(client0 blocked, client1 ok) = 0 (HT0 blocks both) —
        // client0 blocked implies HT0 active implies client1 blocked.
        assert!((d[1] - 0.0).abs() < 1e-12);
        // P(both blocked) = 0.4.
        assert!((d[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn topology_cache_consistency() {
        let topo = topo3();
        let acc = TopologyAccess::new(&topo);
        let w = ClientSet::from_iter([0, 2]);
        assert_eq!(acc.pattern_distribution(w), acc.pattern_distribution(w));
    }

    #[test]
    fn empirical_matches_topology_on_samples() {
        let mut rng = DetRng::seed_from_u64(3);
        let topo = InterferenceTopology::random(5, 3, (0.2, 0.5), 0.5, &mut rng);
        let accessible: Vec<ClientSet> =
            (0..200_000).map(|_| topo.sample_access(&mut rng)).collect();
        let trace = AccessTrace {
            n_ues: 5,
            accessible,
        };
        let emp = EmpiricalPatternAccess::new(&trace);
        let exact = TopologyAccess::new(&topo);
        let w = ClientSet::from_iter([0, 2, 4]);
        let de = emp.pattern_distribution(w);
        let dx = exact.pattern_distribution(w);
        for (m, (a, b)) in de.iter().zip(&dx).enumerate() {
            assert!((a - b).abs() < 0.01, "pattern {m}: {a} vs {b}");
        }
    }

    #[test]
    fn independent_access_products() {
        let ind = IndependentAccess::new(vec![0.8, 0.5]);
        let d = ind.pattern_distribution(ClientSet::from_iter([0, 1]));
        assert!((d[0] - 0.4).abs() < 1e-12); // both ok
        assert!((d[1] - 0.1).abs() < 1e-12); // 0 blocked, 1 ok
        assert!((d[2] - 0.4).abs() < 1e-12); // 0 ok, 1 blocked
        assert!((d[3] - 0.1).abs() < 1e-12);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independence_misses_shared_ht_correlation() {
        // The whole point of BLU: with a shared HT, P(one blocked,
        // other ok) is smaller than independence predicts.
        let topo = InterferenceTopology {
            n_clients: 2,
            hts: vec![HiddenTerminal {
                q: 0.5,
                edges: ClientSet::from_iter([0, 1]),
            }],
        };
        let exact = TopologyAccess::new(&topo);
        let ind = IndependentAccess::new(vec![0.5, 0.5]);
        let w = ClientSet::from_iter([0, 1]);
        let de = exact.pattern_distribution(w);
        let di = ind.pattern_distribution(w);
        // Exact: fully correlated — P(0 ok,1 blocked) = 0.
        assert!((de[2] - 0.0).abs() < 1e-12);
        // Independence predicts 0.25.
        assert!((di[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_set_distribution() {
        let topo = topo3();
        let acc = TopologyAccess::new(&topo);
        assert_eq!(acc.pattern_distribution(ClientSet::EMPTY), vec![1.0]);
    }
}
