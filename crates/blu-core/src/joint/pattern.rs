//! Pattern-distribution implementations of [`AccessDistribution`].

use super::cache::{DistributionCache, DEFAULT_CACHE_CAPACITY};
use super::{check_pattern_set, AccessDistribution};
use crate::error::BluError;
use blu_sim::clientset::ClientSet;
use blu_sim::error::SimError;
use blu_sim::topology::InterferenceTopology;
use blu_traces::schema::AccessTrace;
use std::sync::Arc;

/// Exact pattern distributions from a hidden-terminal topology.
///
/// For a client set `w` the distribution over blocked-patterns is
/// computed by a dynamic program over hidden terminals: start from
/// "nobody blocked" with probability 1 and fold each HT in — active
/// with probability `q(k)` (OR-ing its local edge mask into the
/// blocked pattern), idle with `1 − q(k)`. `O(h · 2^|w|)`, exact.
///
/// Distributions are memoized per client set in a bounded
/// [`DistributionCache`], because the scheduler re-queries the same
/// candidate groups across RBs and sub-frames; hits share one
/// `Arc<[f64]>` allocation instead of cloning.
#[derive(Debug)]
pub struct TopologyAccess<'a> {
    topo: &'a InterferenceTopology,
    cache: DistributionCache,
}

impl<'a> TopologyAccess<'a> {
    /// Wrap a topology (default cache bound).
    pub fn new(topo: &'a InterferenceTopology) -> Self {
        Self::with_capacity(topo, DEFAULT_CACHE_CAPACITY)
    }

    /// Wrap a topology, keeping at most `capacity` memoized
    /// distributions resident.
    pub fn with_capacity(topo: &'a InterferenceTopology, capacity: usize) -> Self {
        TopologyAccess {
            topo,
            cache: DistributionCache::new(capacity),
        }
    }

    /// Number of distributions currently memoized (bounded by the
    /// cache capacity).
    pub fn cached_distributions(&self) -> usize {
        self.cache.len()
    }

    /// Hit/miss/eviction counters of the memoization cache.
    pub fn cache_stats(&self) -> crate::runtime::lru::CacheStats {
        self.cache.stats()
    }

    fn compute(&self, w: ClientSet) -> Arc<[f64]> {
        let members: Vec<usize> = w.iter().collect();
        let size = 1usize << members.len();
        let mut dist = vec![0.0; size];
        dist[0] = 1.0;
        let mut scratch = vec![0.0; size];
        for ht in &self.topo.hts {
            // Local blocked-mask of this HT within w.
            let mut local = 0usize;
            for (n, &c) in members.iter().enumerate() {
                if ht.edges.contains(c) {
                    local |= 1 << n;
                }
            }
            if local == 0 || ht.q == 0.0 {
                continue; // does not touch w / never active
            }
            scratch.iter_mut().for_each(|x| *x = 0.0);
            for (m, &p) in dist.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                scratch[m] += p * (1.0 - ht.q);
                scratch[m | local] += p * ht.q;
            }
            std::mem::swap(&mut dist, &mut scratch);
        }
        dist.into()
    }
}

impl AccessDistribution for TopologyAccess<'_> {
    fn pattern_distribution(&self, w: ClientSet) -> Result<Arc<[f64]>, BluError> {
        check_pattern_set("topology pattern distribution", w)?;
        self.cache.get_or_insert_with(w.0, || Ok(self.compute(w)))
    }
}

/// Pattern frequencies counted from a full access trace — the
/// perfect-knowledge source the paper uses to isolate scheduler
/// performance from inference (Fig. 15). The paper notes computing
/// these directly in real time is impractical at MU-MIMO scale; the
/// Criterion bench `joint_distributions` quantifies that.
#[derive(Debug)]
pub struct EmpiricalPatternAccess<'a> {
    trace: &'a AccessTrace,
    cache: DistributionCache,
}

impl<'a> EmpiricalPatternAccess<'a> {
    /// Wrap an access trace (default cache bound). Errors on an empty
    /// trace — there are no samples to count frequencies from.
    pub fn new(trace: &'a AccessTrace) -> Result<Self, BluError> {
        Self::with_capacity(trace, DEFAULT_CACHE_CAPACITY)
    }

    /// Wrap an access trace, keeping at most `capacity` memoized
    /// distributions resident.
    pub fn with_capacity(trace: &'a AccessTrace, capacity: usize) -> Result<Self, BluError> {
        if trace.is_empty() {
            return Err(BluError::EmptyInput("access trace"));
        }
        Ok(EmpiricalPatternAccess {
            trace,
            cache: DistributionCache::new(capacity),
        })
    }

    /// Number of distributions currently memoized (bounded by the
    /// cache capacity).
    pub fn cached_distributions(&self) -> usize {
        self.cache.len()
    }

    /// Hit/miss/eviction counters of the memoization cache.
    pub fn cache_stats(&self) -> crate::runtime::lru::CacheStats {
        self.cache.stats()
    }

    fn compute(&self, w: ClientSet) -> Arc<[f64]> {
        let members: Vec<usize> = w.iter().collect();
        let size = 1usize << members.len();
        let mut counts = vec![0u64; size];
        for &acc in &self.trace.accessible {
            let mut m = 0usize;
            for (n, &c) in members.iter().enumerate() {
                if !acc.contains(c) {
                    m |= 1 << n;
                }
            }
            counts[m] += 1;
        }
        let total = self.trace.accessible.len() as f64;
        counts
            .into_iter()
            .map(|c| c as f64 / total)
            .collect::<Vec<f64>>()
            .into()
    }
}

impl AccessDistribution for EmpiricalPatternAccess<'_> {
    fn pattern_distribution(&self, w: ClientSet) -> Result<Arc<[f64]>, BluError> {
        check_pattern_set("empirical pattern distribution", w)?;
        self.cache.get_or_insert_with(w.0, || Ok(self.compute(w)))
    }
}

/// Independence assumption: each client blocked with probability
/// `1 − p(i)` independently. This is what a scheduler with only
/// individual access probabilities can assume; over-scheduling on it
/// ignores shared hidden terminals (the paper's Fig. 5 failure).
#[derive(Debug)]
pub struct IndependentAccess {
    /// Individual access probabilities, indexed by client.
    pub p: Vec<f64>,
    cache: DistributionCache,
}

impl IndependentAccess {
    /// Construct from per-client access probabilities (default cache
    /// bound). Errors if any probability is outside `[0, 1]`.
    pub fn new(p: Vec<f64>) -> Result<Self, BluError> {
        Self::with_capacity(p, DEFAULT_CACHE_CAPACITY)
    }

    /// Construct, keeping at most `capacity` memoized distributions
    /// resident.
    pub fn with_capacity(p: Vec<f64>, capacity: usize) -> Result<Self, BluError> {
        if let Some(&bad) = p.iter().find(|&&x| !(0.0..=1.0).contains(&x)) {
            return Err(BluError::Sim(SimError::InvalidProbability {
                what: "individual access probability",
                value: bad,
            }));
        }
        Ok(IndependentAccess {
            p,
            cache: DistributionCache::new(capacity),
        })
    }

    /// Number of distributions currently memoized (bounded by the
    /// cache capacity).
    pub fn cached_distributions(&self) -> usize {
        self.cache.len()
    }

    /// Hit/miss/eviction counters of the memoization cache.
    pub fn cache_stats(&self) -> crate::runtime::lru::CacheStats {
        self.cache.stats()
    }

    fn compute(&self, w: ClientSet) -> Result<Arc<[f64]>, BluError> {
        let members: Vec<usize> = w.iter().collect();
        if let Some(&c) = members.iter().find(|&&c| c >= self.p.len()) {
            return Err(BluError::Sim(SimError::IndexOutOfRange {
                what: "client",
                index: c,
                bound: self.p.len(),
            }));
        }
        let size = 1usize << members.len();
        let mut dist = vec![1.0; size];
        for (m, d) in dist.iter_mut().enumerate() {
            for (n, &c) in members.iter().enumerate() {
                let blocked = (m >> n) & 1 == 1;
                *d *= if blocked { 1.0 - self.p[c] } else { self.p[c] };
            }
        }
        Ok(dist.into())
    }
}

impl AccessDistribution for IndependentAccess {
    fn pattern_distribution(&self, w: ClientSet) -> Result<Arc<[f64]>, BluError> {
        check_pattern_set("independent pattern distribution", w)?;
        self.cache.get_or_insert_with(w.0, || self.compute(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::{HiddenTerminal, InterferenceTopology};

    fn topo3() -> InterferenceTopology {
        InterferenceTopology {
            n_clients: 3,
            hts: vec![
                HiddenTerminal {
                    q: 0.4,
                    edges: ClientSet::from_iter([0, 1]),
                },
                HiddenTerminal {
                    q: 0.3,
                    edges: ClientSet::from_iter([1, 2]),
                },
            ],
        }
    }

    #[test]
    fn topology_pattern_distribution_sums_to_one() {
        let topo = topo3();
        let acc = TopologyAccess::new(&topo);
        for mask in 1u128..8 {
            let d = acc.pattern_distribution(ClientSet(mask)).unwrap();
            let sum: f64 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "mask {mask}: {sum}");
        }
    }

    #[test]
    fn topology_pattern_matches_closed_forms() {
        let topo = topo3();
        let acc = TopologyAccess::new(&topo);
        // w = {0,1}: patterns indexed (bit0 = client0 blocked,
        // bit1 = client1 blocked).
        let d = acc
            .pattern_distribution(ClientSet::from_iter([0, 1]))
            .unwrap();
        // Both access: HT0 idle AND HT1 idle-or... client0 blocked by
        // HT0 only; client1 by HT0 or HT1.
        // P(00) = (1−0.4)(1−0.3) = 0.42
        assert!((d[0] - 0.42).abs() < 1e-12);
        // P(client0 ok, client1 blocked) = (1−0.4)·0.3 = 0.18
        assert!((d[2] - 0.18).abs() < 1e-12);
        // P(client0 blocked, client1 ok) = 0 (HT0 blocks both) —
        // client0 blocked implies HT0 active implies client1 blocked.
        assert!((d[1] - 0.0).abs() < 1e-12);
        // P(both blocked) = 0.4.
        assert!((d[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn topology_cache_hit_shares_storage() {
        let topo = topo3();
        let acc = TopologyAccess::new(&topo);
        let w = ClientSet::from_iter([0, 2]);
        let a = acc.pattern_distribution(w).unwrap();
        let b = acc.pattern_distribution(w).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache hit must not clone");
        assert_eq!(a, b);
    }

    #[test]
    fn topology_cache_stays_bounded() {
        let topo = InterferenceTopology::interference_free(20);
        let acc = TopologyAccess::with_capacity(&topo, 8);
        // Query far more distinct sets than the bound.
        for i in 0..20 {
            for j in 0..20 {
                let w = ClientSet::from_iter([i, j]);
                acc.pattern_distribution(w).unwrap();
                assert!(acc.cached_distributions() <= 8);
            }
        }
        assert_eq!(acc.cached_distributions(), 8);
    }

    #[test]
    fn empirical_matches_topology_on_samples() {
        let mut rng = DetRng::seed_from_u64(3);
        let topo = InterferenceTopology::random(5, 3, (0.2, 0.5), 0.5, &mut rng);
        let accessible: Vec<ClientSet> =
            (0..200_000).map(|_| topo.sample_access(&mut rng)).collect();
        let trace = AccessTrace {
            n_ues: 5,
            accessible,
        };
        let emp = EmpiricalPatternAccess::new(&trace).unwrap();
        let exact = TopologyAccess::new(&topo);
        let w = ClientSet::from_iter([0, 2, 4]);
        let de = emp.pattern_distribution(w).unwrap();
        let dx = exact.pattern_distribution(w).unwrap();
        for (m, (a, b)) in de.iter().zip(dx.iter()).enumerate() {
            assert!((a - b).abs() < 0.01, "pattern {m}: {a} vs {b}");
        }
    }

    #[test]
    fn empirical_empty_trace_is_typed_error() {
        // Former `assert!(!trace.is_empty())` panic.
        let trace = AccessTrace {
            n_ues: 3,
            accessible: vec![],
        };
        let err = EmpiricalPatternAccess::new(&trace).unwrap_err();
        assert_eq!(err, BluError::EmptyInput("access trace"));
    }

    #[test]
    fn empirical_cache_stays_bounded() {
        let mut rng = DetRng::seed_from_u64(7);
        let topo = InterferenceTopology::random(10, 2, (0.2, 0.5), 0.5, &mut rng);
        let accessible: Vec<ClientSet> = (0..64).map(|_| topo.sample_access(&mut rng)).collect();
        let trace = AccessTrace {
            n_ues: 10,
            accessible,
        };
        let emp = EmpiricalPatternAccess::with_capacity(&trace, 4).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                emp.pattern_distribution(ClientSet::from_iter([i, j]))
                    .unwrap();
                assert!(emp.cached_distributions() <= 4);
            }
        }
    }

    #[test]
    fn independent_access_products() {
        let ind = IndependentAccess::new(vec![0.8, 0.5]).unwrap();
        let d = ind
            .pattern_distribution(ClientSet::from_iter([0, 1]))
            .unwrap();
        assert!((d[0] - 0.4).abs() < 1e-12); // both ok
        assert!((d[1] - 0.1).abs() < 1e-12); // 0 blocked, 1 ok
        assert!((d[2] - 0.4).abs() < 1e-12); // 0 ok, 1 blocked
        assert!((d[3] - 0.1).abs() < 1e-12);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_out_of_range_probability_is_typed_error() {
        // Former `assert!` panic on p outside [0, 1].
        let err = IndependentAccess::new(vec![0.5, 1.5]).unwrap_err();
        assert!(
            matches!(
                err,
                BluError::Sim(SimError::InvalidProbability { value, .. }) if value == 1.5
            ),
            "{err}"
        );
        let err = IndependentAccess::new(vec![-0.1]).unwrap_err();
        assert!(matches!(err, BluError::Sim(_)), "{err}");
    }

    #[test]
    fn independent_unknown_client_is_typed_error() {
        let ind = IndependentAccess::new(vec![0.5, 0.5]).unwrap();
        let err = ind
            .pattern_distribution(ClientSet::from_iter([0, 5]))
            .unwrap_err();
        assert!(
            matches!(
                err,
                BluError::Sim(SimError::IndexOutOfRange {
                    index: 5,
                    bound: 2,
                    ..
                })
            ),
            "{err}"
        );
    }

    #[test]
    fn independence_misses_shared_ht_correlation() {
        // The whole point of BLU: with a shared HT, P(one blocked,
        // other ok) is smaller than independence predicts.
        let topo = InterferenceTopology {
            n_clients: 2,
            hts: vec![HiddenTerminal {
                q: 0.5,
                edges: ClientSet::from_iter([0, 1]),
            }],
        };
        let exact = TopologyAccess::new(&topo);
        let ind = IndependentAccess::new(vec![0.5, 0.5]).unwrap();
        let w = ClientSet::from_iter([0, 1]);
        let de = exact.pattern_distribution(w).unwrap();
        let di = ind.pattern_distribution(w).unwrap();
        // Exact: fully correlated — P(0 ok,1 blocked) = 0.
        assert!((de[2] - 0.0).abs() < 1e-12);
        // Independence predicts 0.25.
        assert!((di[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_set_distribution() {
        let topo = topo3();
        let acc = TopologyAccess::new(&topo);
        let d = acc.pattern_distribution(ClientSet::EMPTY).unwrap();
        assert_eq!(&*d, &[1.0][..]);
    }
}
