//! Bounded, thread-safe memoization of pattern distributions.
//!
//! The speculative scheduler issues `O(N · fM)` pattern-distribution
//! queries per RB and re-queries the same candidate groups across RBs
//! and sub-frames, so memoization is essential — but the seed's
//! unbounded `RefCell<HashMap<_, Vec<f64>>>` both leaked memory over
//! long runs (every distinct client set ever queried stayed resident
//! forever) and cloned a `2^|w|` vector out of the map on every hit.
//!
//! [`DistributionCache`] fixes both: distributions are stored once as
//! immutable shared slices (`Arc<[f64]>`) and handed out by refcount
//! bump, and the cache is **bounded** with deterministic LRU
//! eviction. Recency is a monotone tick; on overflow the entry with
//! the smallest tick (oldest use) is evicted, ties broken by smaller
//! key — a total order, so eviction is reproducible run to run. The
//! interior `Mutex` (instead of `RefCell`) is what lets providers be
//! `Send + Sync` and shared across the parallel trial fan-out.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default number of distinct client sets kept resident. The greedy
/// builder's working set is the candidate groups of one cell
/// (`O(N · fM)` per RB, heavily repeated), which fits comfortably;
/// pathological query streams evict instead of growing.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

struct Entry {
    dist: Arc<[f64]>,
    last_used: u64,
}

struct Inner {
    map: HashMap<u128, Entry>,
    tick: u64,
}

/// A bounded LRU-style cache from client-set bitmasks to shared
/// pattern-distribution slices.
pub struct DistributionCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for DistributionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributionCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl DistributionCache {
    /// New cache holding at most `capacity` distributions
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        DistributionCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distributions currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the distribution for `key`, computing and inserting it on
    /// a miss. Hits bump the entry's recency; misses evict the
    /// least-recently-used entry first when the cache is full. Errors
    /// from `compute` are returned without touching the cache.
    pub fn get_or_insert_with<E>(
        &self,
        key: u128,
        compute: impl FnOnce() -> Result<Arc<[f64]>, E>,
    ) -> Result<Arc<[f64]>, E> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(&key) {
            e.last_used = tick;
            return Ok(e.dist.clone());
        }
        let dist = compute()?;
        if inner.map.len() >= self.capacity {
            // Deterministic LRU: smallest (last_used, key) goes. Ticks
            // are unique, so the key tie-break is belt-and-braces.
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(k, e)| (e.last_used, *k))
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            key,
            Entry {
                dist: dist.clone(),
                last_used: tick,
            },
        );
        Ok(dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_of(v: f64) -> Arc<[f64]> {
        Arc::from(vec![v])
    }

    #[test]
    fn hit_returns_shared_slice_without_recompute() {
        let c = DistributionCache::new(8);
        let a = c.get_or_insert_with::<()>(1, || Ok(dist_of(0.5))).unwrap();
        let b = c
            .get_or_insert_with::<()>(1, || panic!("must not recompute on hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits must share storage");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bound_is_enforced() {
        let c = DistributionCache::new(4);
        for k in 0..100u128 {
            c.get_or_insert_with::<()>(k, || Ok(dist_of(k as f64)))
                .unwrap();
            assert!(c.len() <= 4, "cache exceeded bound at key {k}");
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let c = DistributionCache::new(2);
        c.get_or_insert_with::<()>(1, || Ok(dist_of(1.0))).unwrap();
        c.get_or_insert_with::<()>(2, || Ok(dist_of(2.0))).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        c.get_or_insert_with::<()>(1, || panic!("hit expected"))
            .unwrap();
        c.get_or_insert_with::<()>(3, || Ok(dist_of(3.0))).unwrap();
        // 1 must still be resident; 2 must have been evicted.
        c.get_or_insert_with::<()>(1, || panic!("1 was evicted"))
            .unwrap();
        let recomputed = std::cell::Cell::new(false);
        c.get_or_insert_with::<()>(2, || {
            recomputed.set(true);
            Ok(dist_of(2.0))
        })
        .unwrap();
        assert!(recomputed.get(), "2 should have been evicted");
    }

    #[test]
    fn compute_error_leaves_cache_untouched() {
        let c = DistributionCache::new(2);
        let r = c.get_or_insert_with(9, || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_clamped_to_one() {
        let c = DistributionCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.get_or_insert_with::<()>(1, || Ok(dist_of(1.0))).unwrap();
        c.get_or_insert_with::<()>(2, || Ok(dist_of(2.0))).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let c = DistributionCache::new(64);
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let c = &c;
                s.spawn(move || {
                    for k in 0..256u128 {
                        let d = c
                            .get_or_insert_with::<()>(k % 32, || Ok(dist_of((t + k) as f64)))
                            .unwrap();
                        assert_eq!(d.len(), 1);
                    }
                });
            }
        });
        assert!(c.len() <= 32);
    }
}
