//! Bounded, thread-safe memoization of pattern distributions.
//!
//! The speculative scheduler issues `O(N · fM)` pattern-distribution
//! queries per RB and re-queries the same candidate groups across RBs
//! and sub-frames, so memoization is essential — but the seed's
//! unbounded `RefCell<HashMap<_, Vec<f64>>>` both leaked memory over
//! long runs (every distinct client set ever queried stayed resident
//! forever) and cloned a `2^|w|` vector out of the map on every hit.
//!
//! [`DistributionCache`] fixes both: distributions are stored once as
//! immutable shared slices (`Arc<[f64]>`) and handed out by refcount
//! bump, and the cache is **bounded** with deterministic LRU
//! eviction. The recency/eviction machinery itself lives in the
//! shared [`LruCore`](crate::runtime::lru::LruCore) (the fleet
//! blueprint cache runs on the same core); this wrapper contributes
//! the `Arc<[f64]>` value type and the interior `Mutex` (instead of
//! `RefCell`) that lets providers be `Send + Sync` and shared across
//! the parallel trial fan-out. The extraction is pinned bit-identical
//! to the pre-extraction hand-rolled implementation by the
//! differential test below.

use crate::runtime::lru::{CacheStats, LruCore};
use parking_lot::Mutex;
use std::sync::Arc;

/// Default number of distinct client sets kept resident. The greedy
/// builder's working set is the candidate groups of one cell
/// (`O(N · fM)` per RB, heavily repeated), which fits comfortably;
/// pathological query streams evict instead of growing.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// A bounded LRU-style cache from client-set bitmasks to shared
/// pattern-distribution slices.
pub struct DistributionCache {
    inner: Mutex<LruCore<Arc<[f64]>>>,
    capacity: usize,
}

impl std::fmt::Debug for DistributionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributionCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl DistributionCache {
    /// New cache holding at most `capacity` distributions
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        DistributionCache {
            inner: Mutex::new(LruCore::new(capacity)),
            capacity: capacity.max(1),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distributions currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters, snapshotted under one short lock.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats()
    }

    /// Fetch the distribution for `key`, computing and inserting it on
    /// a miss. Hits bump the entry's recency; misses evict the
    /// least-recently-used entry first when the cache is full. Errors
    /// from `compute` are returned without touching the cache.
    pub fn get_or_insert_with<E>(
        &self,
        key: u128,
        compute: impl FnOnce() -> Result<Arc<[f64]>, E>,
    ) -> Result<Arc<[f64]>, E> {
        self.inner.lock().get_or_insert_with(key, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_of(v: f64) -> Arc<[f64]> {
        Arc::from(vec![v])
    }

    #[test]
    fn hit_returns_shared_slice_without_recompute() {
        let c = DistributionCache::new(8);
        let a = c.get_or_insert_with::<()>(1, || Ok(dist_of(0.5))).unwrap();
        let b = c
            .get_or_insert_with::<()>(1, || panic!("must not recompute on hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits must share storage");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bound_is_enforced() {
        let c = DistributionCache::new(4);
        for k in 0..100u128 {
            c.get_or_insert_with::<()>(k, || Ok(dist_of(k as f64)))
                .unwrap();
            assert!(c.len() <= 4, "cache exceeded bound at key {k}");
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let c = DistributionCache::new(2);
        c.get_or_insert_with::<()>(1, || Ok(dist_of(1.0))).unwrap();
        c.get_or_insert_with::<()>(2, || Ok(dist_of(2.0))).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        c.get_or_insert_with::<()>(1, || panic!("hit expected"))
            .unwrap();
        c.get_or_insert_with::<()>(3, || Ok(dist_of(3.0))).unwrap();
        // 1 must still be resident; 2 must have been evicted.
        c.get_or_insert_with::<()>(1, || panic!("1 was evicted"))
            .unwrap();
        let recomputed = std::cell::Cell::new(false);
        c.get_or_insert_with::<()>(2, || {
            recomputed.set(true);
            Ok(dist_of(2.0))
        })
        .unwrap();
        assert!(recomputed.get(), "2 should have been evicted");
    }

    #[test]
    fn compute_error_leaves_cache_untouched() {
        let c = DistributionCache::new(2);
        let r = c.get_or_insert_with(9, || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_clamped_to_one() {
        let c = DistributionCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.get_or_insert_with::<()>(1, || Ok(dist_of(1.0))).unwrap();
        c.get_or_insert_with::<()>(2, || Ok(dist_of(2.0))).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let c = DistributionCache::new(64);
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let c = &c;
                s.spawn(move || {
                    for k in 0..256u128 {
                        let d = c
                            .get_or_insert_with::<()>(k % 32, || Ok(dist_of((t + k) as f64)))
                            .unwrap();
                        assert_eq!(d.len(), 1);
                    }
                });
            }
        });
        assert!(c.len() <= 32);
    }

    #[test]
    fn stats_snapshot_counts_hits_and_misses() {
        let c = DistributionCache::new(2);
        c.get_or_insert_with::<()>(1, || Ok(dist_of(1.0))).unwrap();
        c.get_or_insert_with::<()>(1, || Ok(dist_of(1.0))).unwrap();
        c.get_or_insert_with::<()>(2, || Ok(dist_of(2.0))).unwrap();
        c.get_or_insert_with::<()>(3, || Ok(dist_of(3.0))).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }

    // ------------------------------------------------------------------
    // Differential pin: the shared-core rebuild must reproduce the
    // pre-extraction hand-rolled implementation's eviction order
    // exactly — same resident sets, same hit/miss outcome per call —
    // over a long adversarial call sequence including failed computes.
    // ------------------------------------------------------------------

    /// Verbatim copy of the pre-extraction `DistributionCache`
    /// internals (PR 2), kept as the differential reference.
    mod reference {
        use std::collections::HashMap;
        use std::sync::Arc;

        struct Entry {
            dist: Arc<[f64]>,
            last_used: u64,
        }

        pub struct RefCache {
            map: HashMap<u128, Entry>,
            tick: u64,
            capacity: usize,
        }

        impl RefCache {
            pub fn new(capacity: usize) -> Self {
                RefCache {
                    map: HashMap::new(),
                    tick: 0,
                    capacity: capacity.max(1),
                }
            }

            pub fn resident(&self) -> Vec<u128> {
                let mut keys: Vec<u128> = self.map.keys().copied().collect();
                keys.sort_unstable();
                keys
            }

            pub fn get_or_insert_with<E>(
                &mut self,
                key: u128,
                compute: impl FnOnce() -> Result<Arc<[f64]>, E>,
            ) -> Result<Arc<[f64]>, E> {
                self.tick += 1;
                let tick = self.tick;
                if let Some(e) = self.map.get_mut(&key) {
                    e.last_used = tick;
                    return Ok(e.dist.clone());
                }
                let dist = compute()?;
                if self.map.len() >= self.capacity {
                    if let Some(&victim) = self
                        .map
                        .iter()
                        .min_by_key(|(k, e)| (e.last_used, *k))
                        .map(|(k, _)| k)
                    {
                        self.map.remove(&victim);
                    }
                }
                self.map.insert(
                    key,
                    Entry {
                        dist: dist.clone(),
                        last_used: tick,
                    },
                );
                Ok(dist)
            }
        }
    }

    #[test]
    fn rebuild_matches_pre_extraction_eviction_order_exactly() {
        // Deterministic pseudo-random op stream over a small key space
        // so hits, misses, evictions and re-insertions all occur, plus
        // periodic failed computes that consume ticks without
        // inserting. Residency is never probed directly (a probe would
        // perturb recency); instead every call records whether its
        // compute closure ran. With 2 000 ops over 11 keys, any
        // eviction-order divergence surfaces as a hit/miss divergence
        // within a few steps, so per-call agreement pins the eviction
        // order bit-identically.
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u128
        };
        for capacity in [1usize, 2, 3, 7] {
            let new = DistributionCache::new(capacity);
            let mut old = reference::RefCache::new(capacity);
            for step in 0..2_000u64 {
                let key = next() % 11;
                let fail = step % 13 == 5;
                let new_computed = std::cell::Cell::new(false);
                let old_computed = std::cell::Cell::new(false);
                let n = new.get_or_insert_with(key, || {
                    new_computed.set(true);
                    if fail {
                        Err("boom")
                    } else {
                        Ok(dist_of(key as f64))
                    }
                });
                let o = old.get_or_insert_with(key, || {
                    old_computed.set(true);
                    if fail {
                        Err("boom")
                    } else {
                        Ok(dist_of(key as f64))
                    }
                });
                assert_eq!(
                    n.is_ok(),
                    o.is_ok(),
                    "step {step} (cap {capacity}): outcome diverged"
                );
                assert_eq!(
                    new_computed.get(),
                    old_computed.get(),
                    "step {step} (cap {capacity}): hit/miss diverged"
                );
                assert_eq!(
                    new.len(),
                    old.resident().len(),
                    "step {step} (cap {capacity}): resident counts diverged"
                );
            }
        }
    }
}
