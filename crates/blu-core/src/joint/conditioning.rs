//! The paper's recursive topology-conditioning computation of joint
//! access distributions (§3.6, Eqns. 7–9).
//!
//! Given a blue-printed topology `T = (h, Q, Z)`, the joint
//! probability that all clients of `U` can access while all clients
//! of `V` cannot is
//!
//! ```text
//! P(U, V̄) = P(V̄ | U) · P(U)                            (Eqn. 7)
//! P(U)    = P(uₙ) · P_{uₙ}(uₙ₋₁) · P_{uₙ,uₙ₋₁}(uₙ₋₂) …   (Eqn. 8)
//! ```
//!
//! where `P_{u…}(·)` denotes probabilities on the topology
//! **conditioned** on clients `u…` accessing — i.e. with every hidden
//! terminal adjacent to them removed (they must have been idle). The
//! blocked-side term recurses via Bayes (Eqn. 9):
//!
//! ```text
//! P(V̄ₘ) = (1 − P_{vₘ}(V̄ₘ₋₁)·P(vₘ)/P(V̄ₘ₋₁)) · P(V̄ₘ₋₁)
//! ```
//!
//! The recursion bottoms out at individual access probabilities of
//! conditioned topologies — exactly the quantities the blue-print
//! provides. This module implements the recursion literally (the
//! conditioned topology is a bitmask of surviving hidden terminals)
//! and is property-tested against the inclusion–exclusion oracle
//! [`InterferenceTopology::p_joint`].

use crate::error::BluError;
use blu_sim::clientset::ClientSet;
use blu_sim::topology::InterferenceTopology;

/// Most hidden terminals the `u128` conditioning mask can represent.
pub const MAX_CONDITIONING_HTS: usize = 128;

/// Evaluates the §3.6 recursion on a topology.
#[derive(Debug)]
pub struct Conditioning<'a> {
    topo: &'a InterferenceTopology,
}

impl<'a> Conditioning<'a> {
    /// Wrap a topology. Errors if the topology has more hidden
    /// terminals than the `u128` conditioning mask can track.
    pub fn new(topo: &'a InterferenceTopology) -> Result<Self, BluError> {
        if topo.n_hidden() > MAX_CONDITIONING_HTS {
            return Err(BluError::SetTooLarge {
                what: "conditioning hidden-terminal mask",
                len: topo.n_hidden(),
                max: MAX_CONDITIONING_HTS,
            });
        }
        Ok(Conditioning { topo })
    }

    /// Mask with every hidden terminal present.
    fn full_mask(&self) -> u128 {
        if self.topo.n_hidden() == 128 {
            u128::MAX
        } else {
            (1u128 << self.topo.n_hidden()) - 1
        }
    }

    /// HTs (within `mask`) adjacent to client `i`.
    fn adjacent(&self, mask: u128, i: usize) -> u128 {
        let mut out = 0u128;
        for (k, ht) in self.topo.hts.iter().enumerate() {
            if (mask >> k) & 1 == 1 && ht.edges.contains(i) {
                out |= 1 << k;
            }
        }
        out
    }

    /// `p(i)` on the conditioned topology `mask`.
    fn p_individual_on(&self, mask: u128, i: usize) -> f64 {
        let mut p = 1.0;
        let mut m = self.adjacent(mask, i);
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            p *= 1.0 - self.topo.hts[k].q;
        }
        p
    }

    /// `P(U)` on the conditioned topology `mask` (Eqn. 8): peel one
    /// client at a time, conditioning the topology on each.
    fn p_all_access_on(&self, mut mask: u128, u: ClientSet) -> f64 {
        let mut p = 1.0;
        for i in u.iter() {
            p *= self.p_individual_on(mask, i);
            mask &= !self.adjacent(mask, i);
        }
        p
    }

    /// `P(V̄)` on the conditioned topology `mask` (Eqn. 9): recurse on
    /// the last client of `v`.
    fn p_all_fail_on(&self, mask: u128, v: ClientSet) -> f64 {
        if v.is_empty() {
            return 1.0;
        }
        // Take vₘ = highest-indexed member, V̄ₘ₋₁ the rest.
        let Some(v_m) = v.iter().last() else {
            return 1.0;
        };
        let rest = v.without(v_m);
        if rest.is_empty() {
            return 1.0 - self.p_individual_on(mask, v_m);
        }
        let p_rest = self.p_all_fail_on(mask, rest);
        if p_rest <= 0.0 {
            // P(V̄ₘ₋₁) = 0 forces P(V̄ₘ) = 0 (monotone events).
            return 0.0;
        }
        let p_vm = self.p_individual_on(mask, v_m);
        let mask_given_vm = mask & !self.adjacent(mask, v_m);
        let p_rest_given_vm = self.p_all_fail_on(mask_given_vm, rest);
        (1.0 - p_rest_given_vm * p_vm / p_rest) * p_rest
    }

    /// `P(U)` on the full topology (Eqn. 8).
    pub fn p_all_access(&self, u: ClientSet) -> f64 {
        self.p_all_access_on(self.full_mask(), u)
    }

    /// `P(U, V̄)` on the full topology (Eqn. 7). Errors if the sets
    /// overlap — a client cannot both access and be blocked.
    pub fn p_joint(&self, succeed: ClientSet, fail: ClientSet) -> Result<f64, BluError> {
        if !succeed.is_disjoint(fail) {
            return Err(BluError::InvalidConfig(format!(
                "conditioning p_joint needs disjoint sets, got {succeed} and {fail}"
            )));
        }
        let mut mask = self.full_mask();
        let p_u = self.p_all_access_on(mask, succeed);
        if p_u == 0.0 {
            return Ok(0.0);
        }
        // Condition the topology on all of U accessing.
        for i in succeed.iter() {
            mask &= !self.adjacent(mask, i);
        }
        let p_fail = self.p_all_fail_on(mask, fail);
        // Float cancellation in Eqn. 9 can leave tiny negatives.
        Ok((p_u * p_fail).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::{HiddenTerminal, InterferenceTopology};

    #[test]
    fn paper_worked_example_shape() {
        // The paper's example: 4 clients, compute P(1̄, 2̄, 3, 4) via
        // conditioning; cross-check against the oracle.
        let mut rng = DetRng::seed_from_u64(1);
        let topo = InterferenceTopology::random(4, 3, (0.2, 0.6), 0.5, &mut rng);
        let cond = Conditioning::new(&topo).unwrap();
        let succeed = ClientSet::from_iter([2, 3]);
        let fail = ClientSet::from_iter([0, 1]);
        let got = cond.p_joint(succeed, fail).unwrap();
        let want = topo.p_joint(succeed, fail);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn matches_oracle_exhaustively_small() {
        // Every (succeed, fail) partition of every subset, several
        // random topologies.
        for seed in 0..10 {
            let mut rng = DetRng::seed_from_u64(seed);
            let topo = InterferenceTopology::random(5, 4, (0.05, 0.8), 0.45, &mut rng);
            let cond = Conditioning::new(&topo).unwrap();
            let all = ClientSet::all(5);
            for w in all.subsets() {
                for s in w.subsets() {
                    let f = w.difference(s);
                    let got = cond.p_joint(s, f).unwrap();
                    let want = topo.p_joint(s, f);
                    assert!(
                        (got - want).abs() < 1e-9,
                        "seed {seed}, s={s}, f={f}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn p_all_access_matches_closed_form() {
        let mut rng = DetRng::seed_from_u64(3);
        let topo = InterferenceTopology::random(6, 5, (0.1, 0.7), 0.4, &mut rng);
        let cond = Conditioning::new(&topo).unwrap();
        for mask in 0u128..64 {
            let s = ClientSet(mask);
            assert!(
                (cond.p_all_access(s) - topo.p_all_access(s)).abs() < 1e-12,
                "set {s}"
            );
        }
    }

    #[test]
    fn joint_distribution_sums_to_one() {
        let mut rng = DetRng::seed_from_u64(4);
        let topo = InterferenceTopology::random(6, 4, (0.1, 0.6), 0.5, &mut rng);
        let cond = Conditioning::new(&topo).unwrap();
        let all = ClientSet::all(6);
        let total: f64 = all
            .subsets()
            .map(|s| cond.p_joint(s, all.difference(s)).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn certain_blocker_forces_zero() {
        // HT with q = 1 on client 0: P(0 accesses) = 0, and
        // P(0 blocked) = 1.
        let topo = InterferenceTopology {
            n_clients: 2,
            hts: vec![HiddenTerminal {
                q: 1.0,
                edges: ClientSet::singleton(0),
            }],
        };
        let cond = Conditioning::new(&topo).unwrap();
        assert_eq!(
            cond.p_joint(ClientSet::singleton(0), ClientSet::EMPTY)
                .unwrap(),
            0.0
        );
        assert!(
            (cond
                .p_joint(ClientSet::singleton(1), ClientSet::singleton(0))
                .unwrap()
                - 1.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn interference_free_topology() {
        let topo = InterferenceTopology::interference_free(4);
        let cond = Conditioning::new(&topo).unwrap();
        assert_eq!(
            cond.p_joint(ClientSet::all(4), ClientSet::EMPTY).unwrap(),
            1.0
        );
        assert_eq!(
            cond.p_joint(ClientSet::EMPTY, ClientSet::all(4)).unwrap(),
            0.0
        );
    }

    #[test]
    fn too_many_hidden_terminals_is_typed_error() {
        // Former `assert!(n_hidden() <= 128)` panic.
        let topo = InterferenceTopology {
            n_clients: 2,
            hts: vec![
                HiddenTerminal {
                    q: 0.1,
                    edges: ClientSet::singleton(0),
                };
                MAX_CONDITIONING_HTS + 1
            ],
        };
        let err = Conditioning::new(&topo).unwrap_err();
        assert!(
            matches!(
                err,
                BluError::SetTooLarge { len, max, .. }
                    if len == MAX_CONDITIONING_HTS + 1 && max == MAX_CONDITIONING_HTS
            ),
            "{err}"
        );
    }

    #[test]
    fn overlapping_sets_is_typed_error() {
        // Former `assert!(succeed.is_disjoint(fail))` panic.
        let topo = InterferenceTopology::interference_free(3);
        let cond = Conditioning::new(&topo).unwrap();
        let err = cond
            .p_joint(ClientSet::from_iter([0, 1]), ClientSet::from_iter([1]))
            .unwrap_err();
        assert!(matches!(err, BluError::InvalidConfig(_)), "{err}");
    }
}
