//! Higher-order joint access distributions (paper §3.6).
//!
//! The speculative scheduler needs `P(g, Ḡ'\g)` — the probability
//! that exactly the clients in `g` (among a candidate group `G'`) can
//! use their grants. Three sources are provided behind the
//! [`AccessDistribution`] trait:
//!
//! * [`TopologyAccess`] — exact probabilities from a (ground-truth or
//!   inferred) hidden-terminal topology, via an `O(h·2^w)` dynamic
//!   program over HT activity;
//! * [`EmpiricalPatternAccess`] — frequencies counted directly from a
//!   full access trace (the paper's "perfect knowledge" upper bound,
//!   Fig. 15, and its "impractical in real time" comparison point);
//! * [`IndependentAccess`] — the product of individual `p(i)` — what
//!   a scheduler without interference-dependency information (the
//!   access-aware baseline) implicitly assumes.
//!
//! Distributions are handed out as shared immutable slices
//! (`Arc<[f64]>`) from **bounded** per-provider caches
//! ([`cache::DistributionCache`]) — a cache hit is a refcount bump,
//! not a `2^|w|` clone — and providers are `Send + Sync`, so one
//! provider can back schedulers running on several threads of the
//! trial fan-out. Degenerate inputs (overlapping sets, sets too large
//! for the `2^|w|` enumeration) surface as [`BluError`] values rather
//! than panics, per the repo's library error policy.
//!
//! [`conditioning`] implements the paper's own recursive formulation
//! (Eqns. 7–9) and is property-tested against the closed-form oracle.

pub mod cache;
pub mod conditioning;
pub mod pattern;

pub use cache::DistributionCache;
pub use pattern::{EmpiricalPatternAccess, IndependentAccess, TopologyAccess};

use crate::error::BluError;
use blu_sim::clientset::ClientSet;
use std::sync::Arc;

/// Largest client-set size the `2^|w|` pattern enumeration supports:
/// one below the `usize` bit width, so `1usize << |w|` cannot
/// overflow. (Practical group sizes are `f·M ≤ 8`; this guard exists
/// so a buggy or hostile caller gets a typed error, not UB-adjacent
/// shift wrapping.)
pub const MAX_PATTERN_SET: usize = usize::BITS as usize - 1;

/// Returns a [`BluError::SetTooLarge`] when `w` cannot be pattern-
/// enumerated without overflowing the `1 << |w|` table size.
pub(crate) fn check_pattern_set(what: &'static str, w: ClientSet) -> Result<(), BluError> {
    let len = w.len();
    if len > MAX_PATTERN_SET {
        return Err(BluError::SetTooLarge {
            what,
            len,
            max: MAX_PATTERN_SET,
        });
    }
    Ok(())
}

/// A source of joint access distributions over client sets.
///
/// The *pattern distribution* of a client set `w = {c₀ < c₁ < …}` is
/// a shared slice of length `2^|w|`: entry `m` is the probability
/// that exactly the clients `{cₙ : bit n of m set}` are **blocked**
/// (fail CCA) while the rest of `w` can access.
///
/// Providers must be `Send + Sync`: the parallel trial fan-out shares
/// one provider (and therefore one memo cache) across worker threads.
pub trait AccessDistribution: Send + Sync {
    /// The blocked-pattern distribution of `w` (length `2^|w|`, sums
    /// to 1). Errors if `|w|` exceeds [`MAX_PATTERN_SET`] or the set
    /// references clients the provider does not know.
    fn pattern_distribution(&self, w: ClientSet) -> Result<Arc<[f64]>, BluError>;

    /// Convenience: `P(succeed accessible, fail blocked)` for
    /// disjoint sets, marginalizing everything else. Errors if the
    /// sets overlap.
    fn p_joint(&self, succeed: ClientSet, fail: ClientSet) -> Result<f64, BluError> {
        if !succeed.is_disjoint(fail) {
            return Err(BluError::InvalidConfig(format!(
                "p_joint needs disjoint sets, got {succeed} and {fail}"
            )));
        }
        let w = succeed.union(fail);
        let dist = self.pattern_distribution(w)?;
        let members: Vec<usize> = w.iter().collect();
        let mut fail_mask = 0usize;
        for (n, &c) in members.iter().enumerate() {
            if fail.contains(c) {
                fail_mask |= 1 << n;
            }
        }
        Ok(dist[fail_mask])
    }

    /// Individual access probability `p(i)`.
    fn p_individual(&self, i: usize) -> Result<f64, BluError> {
        let dist = self.pattern_distribution(ClientSet::singleton(i))?;
        Ok(dist[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::InterferenceTopology;

    #[test]
    fn p_joint_default_impl_matches_oracle() {
        let mut rng = DetRng::seed_from_u64(1);
        let topo = InterferenceTopology::random(6, 4, (0.1, 0.6), 0.4, &mut rng);
        let acc = TopologyAccess::new(&topo);
        for trial in 0..50 {
            let succeed: ClientSet = (0..6).filter(|_| rng.chance(0.3)).collect();
            let fail: ClientSet = (0..6)
                .filter(|&i| !succeed.contains(i) && rng.chance(0.3))
                .collect();
            let got = acc.p_joint(succeed, fail).unwrap();
            let want = topo.p_joint(succeed, fail);
            assert!(
                (got - want).abs() < 1e-10,
                "trial {trial}: {got} vs {want} for {succeed}/{fail}"
            );
        }
    }

    #[test]
    fn p_individual_default_impl() {
        let mut rng = DetRng::seed_from_u64(2);
        let topo = InterferenceTopology::random(4, 3, (0.2, 0.5), 0.5, &mut rng);
        let acc = TopologyAccess::new(&topo);
        for i in 0..4 {
            assert!((acc.p_individual(i).unwrap() - topo.p_individual(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn p_joint_overlapping_sets_is_typed_error() {
        // Former `assert!(succeed.is_disjoint(fail))` panic.
        let topo = InterferenceTopology::interference_free(3);
        let acc = TopologyAccess::new(&topo);
        let err = acc
            .p_joint(ClientSet::from_iter([0, 1]), ClientSet::from_iter([1, 2]))
            .unwrap_err();
        assert!(matches!(err, BluError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn oversized_set_is_typed_error() {
        let topo = InterferenceTopology::interference_free(3);
        let acc = TopologyAccess::new(&topo);
        let err = acc
            .pattern_distribution(ClientSet::all(MAX_PATTERN_SET + 1))
            .unwrap_err();
        assert!(
            matches!(
                err,
                BluError::SetTooLarge { len, max, .. }
                    if len == MAX_PATTERN_SET + 1 && max == MAX_PATTERN_SET
            ),
            "{err}"
        );
    }

    #[test]
    fn providers_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyAccess<'_>>();
        assert_send_sync::<EmpiricalPatternAccess<'_>>();
        assert_send_sync::<IndependentAccess>();
    }
}
