//! Higher-order joint access distributions (paper §3.6).
//!
//! The speculative scheduler needs `P(g, Ḡ'\g)` — the probability
//! that exactly the clients in `g` (among a candidate group `G'`) can
//! use their grants. Three sources are provided behind the
//! [`AccessDistribution`] trait:
//!
//! * [`TopologyAccess`] — exact probabilities from a (ground-truth or
//!   inferred) hidden-terminal topology, via an `O(h·2^w)` dynamic
//!   program over HT activity;
//! * [`EmpiricalPatternAccess`] — frequencies counted directly from a
//!   full access trace (the paper's "perfect knowledge" upper bound,
//!   Fig. 15, and its "impractical in real time" comparison point);
//! * [`IndependentAccess`] — the product of individual `p(i)` — what
//!   a scheduler without interference-dependency information (the
//!   access-aware baseline) implicitly assumes.
//!
//! [`conditioning`] implements the paper's own recursive formulation
//! (Eqns. 7–9) and is property-tested against the closed-form oracle.

pub mod conditioning;
pub mod pattern;

pub use pattern::{EmpiricalPatternAccess, IndependentAccess, TopologyAccess};

use blu_sim::clientset::ClientSet;

/// A source of joint access distributions over client sets.
///
/// The *pattern distribution* of a client set `w = {c₀ < c₁ < …}` is
/// a vector of length `2^|w|`: entry `m` is the probability that
/// exactly the clients `{cₙ : bit n of m set}` are **blocked** (fail
/// CCA) while the rest of `w` can access.
pub trait AccessDistribution {
    /// The blocked-pattern distribution of `w` (length `2^|w|`,
    /// sums to 1).
    fn pattern_distribution(&self, w: ClientSet) -> Vec<f64>;

    /// Convenience: `P(succeed accessible, fail blocked)` for
    /// disjoint sets, marginalizing everything else.
    fn p_joint(&self, succeed: ClientSet, fail: ClientSet) -> f64 {
        assert!(succeed.is_disjoint(fail));
        let w = succeed.union(fail);
        let dist = self.pattern_distribution(w);
        let members: Vec<usize> = w.iter().collect();
        let mut fail_mask = 0usize;
        for (n, &c) in members.iter().enumerate() {
            if fail.contains(c) {
                fail_mask |= 1 << n;
            }
        }
        dist[fail_mask]
    }

    /// Individual access probability `p(i)`.
    fn p_individual(&self, i: usize) -> f64 {
        let dist = self.pattern_distribution(ClientSet::singleton(i));
        dist[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blu_sim::rng::DetRng;
    use blu_sim::topology::InterferenceTopology;

    #[test]
    fn p_joint_default_impl_matches_oracle() {
        let mut rng = DetRng::seed_from_u64(1);
        let topo = InterferenceTopology::random(6, 4, (0.1, 0.6), 0.4, &mut rng);
        let acc = TopologyAccess::new(&topo);
        for trial in 0..50 {
            let succeed: ClientSet = (0..6).filter(|_| rng.chance(0.3)).collect();
            let fail: ClientSet = (0..6)
                .filter(|&i| !succeed.contains(i) && rng.chance(0.3))
                .collect();
            let got = acc.p_joint(succeed, fail);
            let want = topo.p_joint(succeed, fail);
            assert!(
                (got - want).abs() < 1e-10,
                "trial {trial}: {got} vs {want} for {succeed}/{fail}"
            );
        }
    }

    #[test]
    fn p_individual_default_impl() {
        let mut rng = DetRng::seed_from_u64(2);
        let topo = InterferenceTopology::random(4, 3, (0.2, 0.5), 0.5, &mut rng);
        let acc = TopologyAccess::new(&topo);
        for i in 0..4 {
            assert!((acc.p_individual(i) - topo.p_individual(i)).abs() < 1e-12);
        }
    }
}
