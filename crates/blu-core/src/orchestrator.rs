//! The full BLU loop (paper Fig. 9): measurement phase → blue-print →
//! speculative phase.
//!
//! Phase 1 schedules measurement sub-frames per Algorithm 1 (clients
//! still carry data, but the schedule is chosen for information, not
//! throughput) and estimates `p(i)`, `p(i,j)` from pilot-classified
//! outcomes. The topology is then blue-printed from those pairwise
//! statistics, and phase 2 runs the speculative scheduler against the
//! inferred blue-print for `L >> t_max` sub-frames. Outcomes observed
//! during phase 2 keep feeding the estimator, which is why subsequent
//! measurement phases are shorter than the first (§3.7).
//!
//! [`run_blu`] is a single composition of the engine's five stages —
//! measure → infer → generate → schedule → transmit — over one fresh
//! [`CellSnapshot`]: the two-phase loop *is* the pipeline, run once.

use crate::blueprint::accuracy::{topology_accuracy, AccuracyReport};
use crate::blueprint::{
    infer_topology, ConstraintSystem, InferScratch, InferenceBackend, InferenceConfig,
    InferenceResult,
};
use crate::emulator::{EmulationConfig, EmulationReport};
use crate::engine::stages::run_measure_plan;
use crate::engine::{
    AccessMode, CellContext, CellEngine, CellSnapshot, GenerateStage, InferStage, MeasureFidelity,
    MeasureStage, NullObserver, SchedulePolicy, ScheduleStage, TransmitFeed, TransmitStage,
};
use crate::error::BluError;
use crate::joint::TopologyAccess;
use crate::measure::{measurement_schedule, OutcomeEstimator};
use crate::runtime::breaker::BreakerConfig;
use crate::sched::SpeculativeScheduler;
use blu_traces::schema::TestbedTrace;

/// Configuration of a two-phase BLU run.
#[derive(Debug, Clone)]
pub struct BluConfig {
    /// Emulation parameters (cell, TxOPs for the speculative phase).
    pub emulation: EmulationConfig,
    /// Measurement samples per client pair (`T`).
    pub t_samples: u64,
    /// Topology-inference configuration.
    pub inference: InferenceConfig,
}

impl BluConfig {
    /// Paper-flavoured defaults for a cell: `T = 50`.
    pub fn new(emulation: EmulationConfig) -> Self {
        BluConfig {
            emulation,
            t_samples: 50,
            inference: InferenceConfig::default(),
        }
    }
}

/// Everything a BLU run produces.
#[derive(Debug, Clone)]
pub struct BluRunReport {
    /// Sub-frames spent in the measurement phase (`t_max`).
    pub measurement_subframes: u64,
    /// The information-theoretic floor for comparison.
    pub measurement_floor: u64,
    /// The inference outcome.
    pub inference: InferenceResult,
    /// Accuracy of the blue-print against the trace's ground truth.
    pub accuracy: AccuracyReport,
    /// Speculative-phase performance.
    pub speculative: EmulationReport,
}

/// Run the measurement phase against a trace: execute the Algorithm-1
/// plan, reading each scheduled client's CCA outcome from the access
/// trace, and return the estimator plus the sub-frames consumed.
///
/// Errors with [`BluError::TraceTooShort`] when the plan does not fit
/// inside the trace — the access trace wraps on replay, and wrapped
/// measurement would silently re-sample the same prefix, biasing the
/// pairwise statistics the blue-print is built from.
pub fn run_measurement_phase(
    trace: &TestbedTrace,
    k_max: usize,
    t_samples: u64,
) -> Result<(OutcomeEstimator, u64), BluError> {
    let n = trace.ground_truth.n_clients;
    let plan = measurement_schedule(n, k_max, t_samples)?;
    if plan.t_max() > trace.access.len() as u64 {
        return Err(BluError::TraceTooShort {
            what: "measurement phase",
            needed: plan.t_max(),
            available: trace.access.len() as u64,
        });
    }
    let mut est = OutcomeEstimator::new(n);
    // Scheduled clients that pass CCA transmit; the estimator's stats
    // object records observed vs accessed directly (the full-fidelity
    // pilot path is exercised by the engine).
    run_measure_plan(trace, &plan, 0, &mut est, None);
    Ok((est, plan.t_max()))
}

/// Run the measurement phase at **full fidelity**: the Algorithm-1
/// plan is executed through the cell engine (grants, CCA, pilots, ZF
/// decode), and the estimator is fed by the pilot-classified
/// outcomes. One TxOP carries one planned client set over its whole
/// UL burst (grants are per-burst), so the phase consumes
/// `t_max × ul_subframes` UL sub-frames while collecting
/// `burst`-fold samples per plan entry.
pub fn run_measurement_phase_full(
    trace: &TestbedTrace,
    emulation: &EmulationConfig,
    t_samples: u64,
) -> Result<(OutcomeEstimator, u64), BluError> {
    let n = trace.ground_truth.n_clients;
    let plan = measurement_schedule(n, emulation.cell.max_ues_per_subframe.max(2), t_samples)?;
    let per_txop = emulation.cell.txop.dl_subframes + emulation.cell.txop.ul_subframes;
    let needed = emulation.start_subframe + plan.t_max() * per_txop;
    if needed > trace.access.len() as u64 {
        return Err(BluError::TraceTooShort {
            what: "full-fidelity measurement phase",
            needed,
            available: trace.access.len() as u64,
        });
    }
    let mut est = OutcomeEstimator::new(n);
    let mut scheduler = crate::sched::MeasurementScheduler::new(&plan)?;
    let mut engine =
        CellEngine::with_config(trace, emulation)?.segment(plan.t_max(), emulation.start_subframe);
    engine.run_segment(
        &mut scheduler,
        Some(&mut est),
        AccessMode::BackToBack,
        &mut NullObserver,
    );
    Ok((est, plan.t_max() * emulation.cell.txop.ul_subframes))
}

/// Blue-print a topology from measured statistics.
pub fn blueprint_from_measurements(
    est: &OutcomeEstimator,
    config: &InferenceConfig,
) -> InferenceResult {
    let sys = ConstraintSystem::from_measurements(est.stats());
    infer_topology(&sys, config)
}

/// Blue-print a topology from measured statistics with an explicit
/// inference backend (gradient repair or the annealed MCMC chain).
pub fn blueprint_with_backend(
    est: &OutcomeEstimator,
    config: &InferenceConfig,
    backend: &InferenceBackend,
) -> InferenceResult {
    let sys = ConstraintSystem::from_measurements(est.stats());
    backend.infer(&sys, config)
}

/// [`blueprint_with_backend`] against caller-provided scratch — the
/// steady-state inference entry point: a caller blue-printing
/// repeatedly (an eNB re-measuring between TxOPs, or the perf
/// harnesses timing the pass) recycles the gradient tracker's flat
/// buffers instead of re-allocating them per run. Bit-identical to
/// [`blueprint_from_measurements`] under the default backend (pinned
/// by a differential test below).
pub fn blueprint_from_measurements_with(
    est: &OutcomeEstimator,
    config: &InferenceConfig,
    backend: &InferenceBackend,
    scratch: &mut InferScratch,
) -> InferenceResult {
    let sys = ConstraintSystem::from_measurements(est.stats());
    backend.infer_with(&sys, config, scratch)
}

/// Blue-print N independent cells' topologies in one shot, fanning
/// the per-cell inferences across the worker-thread pool
/// ([`crate::blueprint::batch`]). Results come back in input order;
/// each successful cell is byte-identical to mapping
/// [`blueprint_from_measurements`] over the estimators sequentially,
/// and a cell whose inference panics surfaces as that cell's
/// [`BluError::Panicked`](crate::error::BluError::Panicked) without
/// disturbing its neighbours.
pub fn blueprint_batch_from_measurements(
    ests: &[OutcomeEstimator],
    config: &InferenceConfig,
) -> Vec<Result<InferenceResult, crate::error::BluError>> {
    let systems: Vec<ConstraintSystem> = ests
        .iter()
        .map(|est| ConstraintSystem::from_measurements(est.stats()))
        .collect();
    crate::blueprint::batch::infer_batch(&systems, config)
}

/// [`blueprint_batch_from_measurements`] consulting a shared
/// [`FleetBlueprintCache`](crate::blueprint::FleetBlueprintCache)
/// before sharding: cells whose measured constraint systems share a
/// canonical topology signature are solved once and served to the
/// rest (immediately, or as delayed hits while the solve is in
/// flight). Every served result is byte-identical to what the cell's
/// own fresh solve would produce; with a cold cache the output equals
/// [`blueprint_batch_from_measurements`] exactly.
pub fn blueprint_batch_from_measurements_cached(
    ests: &[OutcomeEstimator],
    config: &InferenceConfig,
    cache: &crate::blueprint::FleetBlueprintCache,
) -> Vec<Result<InferenceResult, crate::error::BluError>> {
    let systems: Vec<ConstraintSystem> = ests
        .iter()
        .map(|est| ConstraintSystem::from_measurements(est.stats()))
        .collect();
    crate::blueprint::batch::infer_batch_cached(
        &systems,
        config,
        &InferenceBackend::Gradient,
        cache,
    )
}

/// Run the complete two-phase loop on a trace: one pass of the
/// engine's full five-stage pipeline over a fresh snapshot.
pub fn run_blu(trace: &TestbedTrace, config: &BluConfig) -> Result<BluRunReport, BluError> {
    let n = trace.ground_truth.n_clients;
    let k = config.emulation.cell.max_ues_per_subframe;
    let backend = InferenceBackend::default();
    // The vanilla loop has no fault script, drift gate or breaker —
    // the snapshot is just the pipeline's working state.
    let mut snap = CellSnapshot::fresh(
        n,
        trace.access.len() as u64,
        0,
        0.0,
        BreakerConfig::default(),
    );
    let mut ctx = CellContext::new(
        trace,
        None,
        &config.emulation,
        &config.inference,
        &backend,
        &mut snap,
    );
    let mut measure = MeasureStage {
        t_samples: config.t_samples,
        fidelity: MeasureFidelity::Strict {
            what: "measurement phase",
        },
    };
    let mut infer = InferStage { gate: None };
    let mut generate = GenerateStage;
    let mut schedule = ScheduleStage {
        policy: SchedulePolicy::FullRun,
    };
    // Phase-2 outcomes keep feeding the estimator (future phases
    // start warm, §3.7).
    let mut transmit = TransmitStage {
        feed: TransmitFeed::Estimator,
    };
    crate::engine::run_pipeline(
        &mut ctx,
        &mut [
            &mut measure,
            &mut infer,
            &mut generate,
            &mut schedule,
            &mut transmit,
        ],
        &mut NullObserver,
    )?;
    let speculative = ctx
        .last_report
        .take()
        .expect("a full-run pipeline always transmits");
    drop(ctx);
    let inference = snap
        .blueprint
        .take()
        .expect("ungated inference always installs a blueprint");
    let accuracy = topology_accuracy(&trace.ground_truth, &inference.topology);
    let floor = crate::measure::min_subframes(n, k.min(n), config.t_samples)?;
    Ok(BluRunReport {
        measurement_subframes: snap.measurement_subframes,
        measurement_floor: floor,
        inference,
        accuracy,
        speculative,
    })
}

/// §3.7 "Tracking Dynamics": run the two-phase loop over a sequence
/// of environment *epochs* (each a trace with its own topology —
/// clients and interferers move at the tens-of-seconds scale). Each
/// epoch re-measures and re-blue-prints before its speculative phase,
/// which is how BLU stays inside the stationary regime.
pub fn run_blu_adaptive(
    epochs: &[&TestbedTrace],
    config: &BluConfig,
) -> Result<Vec<BluRunReport>, BluError> {
    epochs.iter().map(|t| run_blu(t, config)).collect()
}

/// The non-adaptive strawman for the dynamics experiment: blue-print
/// once on the first epoch, then keep speculating on that stale
/// blue-print as the environment changes underneath.
pub fn run_blu_stale(
    epochs: &[&TestbedTrace],
    config: &BluConfig,
) -> Result<Vec<BluRunReport>, BluError> {
    if epochs.is_empty() {
        return Err(BluError::EmptyInput("epoch list"));
    }
    let k = config.emulation.cell.max_ues_per_subframe;
    let (est, t_max) = run_measurement_phase(epochs[0], k, config.t_samples)?;
    let inference = blueprint_from_measurements(&est, &config.inference);
    let inferred = inference.topology.clone();
    let floor = crate::measure::min_subframes(
        epochs[0].ground_truth.n_clients,
        k.min(epochs[0].ground_truth.n_clients),
        config.t_samples,
    )?;
    epochs
        .iter()
        .map(|trace| {
            let access = TopologyAccess::new(&inferred);
            let mut scheduler = SpeculativeScheduler::new(&access);
            let mut engine = CellEngine::with_config(trace, &config.emulation)?;
            let speculative = engine.run_segment(
                &mut scheduler,
                None,
                AccessMode::BackToBack,
                &mut NullObserver,
            );
            Ok(BluRunReport {
                measurement_subframes: t_max,
                measurement_floor: floor,
                inference: inference.clone(),
                accuracy: topology_accuracy(&trace.ground_truth, &inferred),
                speculative,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::Emulator;
    use crate::sched::PfScheduler;
    use blu_phy::cell::CellConfig;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    fn quick_trace(seed: u64) -> TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(60),
                q_range: (0.25, 0.55),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn quick_config(n_txops: u64) -> BluConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut emu = EmulationConfig::new(cell);
        emu.n_txops = n_txops;
        BluConfig::new(emu)
    }

    #[test]
    fn measurement_phase_covers_all_pairs() {
        let trace = quick_trace(1);
        let (est, t_max) = run_measurement_phase(&trace, 8, 30).unwrap();
        assert!(est.stats().min_pair_samples() >= 30);
        assert!(t_max >= 30); // at least T sub-frames
        for i in 0..trace.ground_truth.n_clients {
            let emp = est.stats().p_individual(i).unwrap();
            let truth = trace.ground_truth.p_individual(i);
            assert!((emp - truth).abs() < 0.25, "client {i}: {emp} vs {truth}");
        }
    }

    #[test]
    fn full_loop_runs_and_beats_pf() {
        let trace = quick_trace(2);
        let config = quick_config(150);
        let report = run_blu(&trace, &config).unwrap();
        assert!(report.measurement_subframes >= report.measurement_floor);
        assert!(report.speculative.metrics.bits_delivered > 0.0);

        // Baseline PF on the same trace.
        let mut emu = Emulator::new(&trace, config.emulation.clone()).unwrap();
        let pf = emu.run(&mut PfScheduler, None);
        assert!(
            report.speculative.metrics.rb_utilization() > pf.metrics.rb_utilization(),
            "BLU(inferred) {} vs PF {}",
            report.speculative.metrics.rb_utilization(),
            pf.metrics.rb_utilization()
        );
    }

    #[test]
    fn inference_from_measured_stats_is_reasonable() {
        // With a full measurement phase at T = 200, inference should
        // find most terminals exactly (noisy-input regime of Fig 14).
        let trace = quick_trace(3);
        let (est, _) = run_measurement_phase(&trace, 8, 200).unwrap();
        let result = blueprint_from_measurements(&est, &InferenceConfig::default());
        let acc = topology_accuracy(&trace.ground_truth, &result.topology);
        assert!(
            acc.exact_fraction() >= 0.5,
            "accuracy {} ({} of {} HTs, {} inferred)",
            acc.exact_fraction(),
            acc.exact_matches,
            acc.n_truth,
            acc.n_inferred
        );
    }

    #[test]
    fn deterministic_runs() {
        let trace = quick_trace(4);
        let config = quick_config(40);
        let a = run_blu(&trace, &config).unwrap();
        let b = run_blu(&trace, &config).unwrap();
        assert_eq!(a.speculative.metrics, b.speculative.metrics);
        assert_eq!(a.inference.topology, b.inference.topology);
    }

    #[test]
    fn gradient_backend_matches_direct_call() {
        let trace = quick_trace(6);
        let (est, _) = run_measurement_phase(&trace, 8, 40).unwrap();
        let cfg = InferenceConfig::default();
        let a = blueprint_with_backend(&est, &cfg, &InferenceBackend::default());
        let b = blueprint_from_measurements(&est, &cfg);
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.violation.to_bits(), b.violation.to_bits());
        assert_eq!(a.verdict, b.verdict);
    }

    #[test]
    fn scratch_blueprint_matches_plain_across_reuse() {
        // One warm scratch threaded through several estimators must
        // reproduce the allocating path bit-for-bit every time — the
        // contract both perf benches lean on to time the same code.
        let cfg = InferenceConfig::default();
        let backend = InferenceBackend::default();
        let mut scratch = InferScratch::default();
        for s in 0..3 {
            let trace = quick_trace(20 + s);
            let (est, _) = run_measurement_phase(&trace, 8, 40).unwrap();
            let a = blueprint_from_measurements_with(&est, &cfg, &backend, &mut scratch);
            let b = blueprint_from_measurements(&est, &cfg);
            assert_eq!(a.topology, b.topology);
            assert_eq!(a.violation.to_bits(), b.violation.to_bits());
            assert_eq!(a.verdict, b.verdict);
        }
    }

    #[test]
    fn batch_blueprint_matches_sequential_mapping() {
        let ests: Vec<OutcomeEstimator> = (0..4)
            .map(|s| {
                let trace = quick_trace(10 + s);
                run_measurement_phase(&trace, 8, 40).unwrap().0
            })
            .collect();
        let cfg = InferenceConfig::default();
        let batch = blueprint_batch_from_measurements(&ests, &cfg);
        assert_eq!(batch.len(), ests.len());
        for (est, got) in ests.iter().zip(&batch) {
            let got = got.as_ref().unwrap();
            let want = blueprint_from_measurements(est, &cfg);
            assert_eq!(got.topology, want.topology, "batch must be bit-identical");
            assert_eq!(got.violation.to_bits(), want.violation.to_bits());
            assert_eq!(got.verdict, want.verdict);
        }
    }
}

#[cfg(test)]
mod dynamics_tests {
    use super::*;
    use blu_phy::cell::CellConfig;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    fn epoch(seed: u64) -> TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(30),
                q_range: (0.3, 0.6),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    #[test]
    fn adaptive_tracks_topology_change_better_than_stale() {
        // Two very different interference environments back-to-back.
        let a = epoch(31);
        let b = epoch(77);
        let epochs = [&a, &b];
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut emu = crate::emulator::EmulationConfig::new(cell);
        emu.n_txops = 150;
        let config = BluConfig::new(emu);

        let adaptive = run_blu_adaptive(&epochs, &config).unwrap();
        let stale = run_blu_stale(&epochs, &config).unwrap();
        assert_eq!(adaptive.len(), 2);
        assert_eq!(stale.len(), 2);

        // On the changed epoch the stale blue-print no longer matches
        // the ground truth; the adaptive one does.
        assert!(
            adaptive[1].accuracy.exact_fraction() > stale[1].accuracy.exact_fraction(),
            "adaptive {} vs stale {}",
            adaptive[1].accuracy.exact_fraction(),
            stale[1].accuracy.exact_fraction()
        );
        // And performance on the changed epoch should not be worse.
        let at = adaptive[1].speculative.metrics.throughput_mbps();
        let st = stale[1].speculative.metrics.throughput_mbps();
        assert!(at >= st * 0.95, "adaptive {at} vs stale {st}");
    }
}

#[cfg(test)]
mod full_fidelity_tests {
    use super::*;
    use blu_phy::cell::CellConfig;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    /// The full-fidelity path (engine + pilots) must agree with the
    /// stats-level shortcut on the measured probabilities.
    #[test]
    fn full_fidelity_matches_stats_shortcut() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(60),
                q_range: (0.25, 0.55),
                ..CaptureConfig::testbed_default()
            },
            5,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let emu_cfg = EmulationConfig::new(cell);
        let (full, consumed) = run_measurement_phase_full(&trace, &emu_cfg, 40).unwrap();
        let (quick, _) = run_measurement_phase(&trace, 8, 40).unwrap();
        assert!(consumed > 0);
        assert!(full.stats().min_pair_samples() >= 40);
        for i in 0..trace.ground_truth.n_clients {
            let a = full.stats().p_individual(i).unwrap();
            let b = quick.stats().p_individual(i).unwrap();
            let truth = trace.ground_truth.p_individual(i);
            assert!((a - truth).abs() < 0.2, "full path UE {i}: {a} vs {truth}");
            assert!(
                (a - b).abs() < 0.25,
                "paths disagree for UE {i}: {a} vs {b}"
            );
        }
    }
}
