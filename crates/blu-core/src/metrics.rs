//! Performance metrics: throughput, RB utilization, fairness.

use serde::{Deserialize, Serialize};

/// Accumulated uplink performance counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UplinkMetrics {
    /// UL sub-frames evaluated.
    pub subframes: u64,
    /// RB-grants issued (RB × sub-frame units, counting an RB once
    /// however many clients are over-scheduled on it).
    pub rbs_scheduled: u64,
    /// RB-grants that delivered data.
    pub rbs_utilized: u64,
    /// RB-grants lost to collisions from over-scheduling.
    pub rbs_collided: u64,
    /// RB-grants lost because every grantee was blocked.
    pub rbs_blocked: u64,
    /// RB-grants lost to fading only.
    pub rbs_faded: u64,
    /// Total delivered bits.
    pub bits_delivered: f64,
    /// Per-client delivered bits.
    pub bits_per_client: Vec<f64>,
    /// Sub-frames in which *every* scheduled RB delivered data
    /// (the "completely occupied sub-frames" of Fig. 4b).
    pub fully_utilized_subframes: u64,
}

impl UplinkMetrics {
    /// New counters for `n` clients.
    pub fn new(n: usize) -> Self {
        UplinkMetrics {
            bits_per_client: vec![0.0; n],
            ..Default::default()
        }
    }

    /// Fraction of scheduled RBs that carried data.
    pub fn rb_utilization(&self) -> f64 {
        if self.rbs_scheduled == 0 {
            0.0
        } else {
            self.rbs_utilized as f64 / self.rbs_scheduled as f64
        }
    }

    /// Fraction of sub-frames fully utilized.
    pub fn full_subframe_fraction(&self) -> f64 {
        if self.subframes == 0 {
            0.0
        } else {
            self.fully_utilized_subframes as f64 / self.subframes as f64
        }
    }

    /// Aggregate throughput in Mbps (1 sub-frame = 1 ms).
    pub fn throughput_mbps(&self) -> f64 {
        if self.subframes == 0 {
            0.0
        } else {
            self.bits_delivered / (self.subframes as f64 * 1_000.0)
        }
    }

    /// Fold another set of counters into this one — used by segmented
    /// runs (e.g. the robust orchestrator) to aggregate per-segment
    /// emulator metrics into one run-level report. Per-client vectors
    /// of differing lengths are merged over the common prefix.
    pub fn merge(&mut self, other: &UplinkMetrics) {
        self.subframes += other.subframes;
        self.rbs_scheduled += other.rbs_scheduled;
        self.rbs_utilized += other.rbs_utilized;
        self.rbs_collided += other.rbs_collided;
        self.rbs_blocked += other.rbs_blocked;
        self.rbs_faded += other.rbs_faded;
        self.bits_delivered += other.bits_delivered;
        self.fully_utilized_subframes += other.fully_utilized_subframes;
        if self.bits_per_client.len() < other.bits_per_client.len() {
            self.bits_per_client
                .resize(other.bits_per_client.len(), 0.0);
        }
        for (a, b) in self.bits_per_client.iter_mut().zip(&other.bits_per_client) {
            *a += b;
        }
    }

    /// Jain's fairness index over per-client delivered bits.
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self
            .bits_per_client
            .iter()
            .copied()
            .filter(|&x| x >= 0.0)
            .collect();
        let n = xs.len() as f64;
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (n * sum_sq)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_sane() {
        let m = UplinkMetrics::new(3);
        assert_eq!(m.rb_utilization(), 0.0);
        assert_eq!(m.throughput_mbps(), 0.0);
        assert_eq!(m.full_subframe_fraction(), 0.0);
        assert_eq!(m.jain_fairness(), 1.0);
    }

    #[test]
    fn utilization_and_throughput() {
        let mut m = UplinkMetrics::new(2);
        m.subframes = 10;
        m.rbs_scheduled = 100;
        m.rbs_utilized = 60;
        m.bits_delivered = 50_000.0;
        assert!((m.rb_utilization() - 0.6).abs() < 1e-12);
        // 50 kbit over 10 ms = 5 Mbps.
        assert!((m.throughput_mbps() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn jain_bounds() {
        let mut m = UplinkMetrics::new(4);
        m.bits_per_client = vec![10.0, 10.0, 10.0, 10.0];
        assert!((m.jain_fairness() - 1.0).abs() < 1e-12);
        m.bits_per_client = vec![40.0, 0.0, 0.0, 0.0];
        assert!((m.jain_fairness() - 0.25).abs() < 1e-12);
        m.bits_per_client = vec![30.0, 10.0, 0.0, 0.0];
        let j = m.jain_fairness();
        assert!(j > 0.25 && j < 1.0);
    }
}
