//! `blu serve`: a resident fleet daemon over the supervised engine.
//!
//! The batch entry points ([`run_supervised_fleet`](
//! crate::runtime::supervisor::run_supervised_fleet)) shard, join and
//! return — nothing in the repository stayed *up*. [`BluService`] is
//! the long-lived counterpart: it owns a fleet of resident cells,
//! steps them on a fixed sub-frame cadence (or on demand), and takes
//! control commands over the length-prefixed wire protocol of
//! [`super::wire`] on a TCP socket. The robustness surface is the
//! point:
//!
//! * **Framing limits and deadlines** — every connection reads under
//!   a socket deadline and a frame-size ceiling; any malformed input
//!   is answered with a typed error frame and the connection closed,
//!   never a panic, never an unbounded buffer.
//! * **Admission control** — `AddCell` past the configured budget (or
//!   while draining) is `Rejected`; the daemon's resident state is
//!   bounded by construction.
//! * **Backpressure** — control commands land in a *bounded* queue;
//!   when the engine falls behind, clients get `Busy` instead of the
//!   queue growing without bound. Inference overload sheds
//!   lowest-priority cells to PF fallback between watermarks, exactly
//!   like the batch supervisor's ledger, and re-admits them as
//!   pressure drops.
//! * **Supervision** — each resident cell runs the PR 6 health
//!   machine: contained panics, stalls and step errors restart it
//!   through the disk → memory → fresh ladder under the same
//!   deterministic capped backoff; exhausted budgets quarantine to
//!   static PF.
//! * **Crash safety** — cells persist grid-aligned checkpoints plus a
//!   `cell-<id>.serve.json` sidecar carrying the cell's [`CellSpec`]
//!   and supervisor state. Because a spec regenerates its capture
//!   deterministically, a daemon started with `resume` rebuilds the
//!   whole fleet from the checkpoint directory and replays to
//!   bit-identical state — `kill -9` included.
//! * **Graceful drain** — a stop signal (the CLI wires SIGINT/SIGTERM
//!   to it) closes admissions, force-persists every cell, and exits
//!   cleanly.
//!
//! Determinism: a cell's evolution is a pure function of its own step
//! count — invariant to cadence, to which global round it runs in,
//! and to client chatter — so per-cell state digests (wall-clock
//! timing zeroed) compare equal across any interleaving of the same
//! per-cell step sequences. That is the property the kill/resume
//! tests and the CI smoke job assert.

use crate::engine::context::CellGeometry;
use crate::engine::{EngineArena, FleetEngine, HeartbeatCounter};
use crate::error::BluError;
use crate::robust::{
    step_cell_shed, step_cell_with, OrchestratorState, RobustConfig, RobustSnapshot,
};
use crate::runtime::breaker::BreakerState;
use crate::runtime::checkpoint::{load_robust_checkpoint, save_robust_checkpoint};
use crate::runtime::panic_message;
use crate::runtime::supervisor::{
    CellHealth, CellSupervisor, RestartBackoff, RestartDecision, SupervisorConfig,
};
use crate::runtime::wire::{
    decode_request, encode_response, read_frame, write_frame, CellSpec, CellStatus, Request,
    Response, ServiceCounters, StatusReport, WIRE_VERSION,
};
use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_traces::capture::CaptureConfig;
use blu_traces::faults::{capture_with_faults, FaultyCapture};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serve-sidecar format version written and required by this build.
pub const SERVE_SIDECAR_VERSION: u32 = 1;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address (`127.0.0.1:0` binds an ephemeral port;
    /// [`ServiceHandle::addr`] reports the actual one).
    pub addr: String,
    /// Checkpoint directory: per-cell snapshots (`cell-<id>.json`)
    /// and serve sidecars (`cell-<id>.serve.json`).
    pub dir: PathBuf,
    /// Probe `dir` at startup and resume every persisted cell.
    pub resume: bool,
    /// Grid-aligned checkpoint cadence in sub-frames (0 = only final
    /// and forced saves).
    pub every_subframes: u64,
    /// Admission budget: resident cells beyond this are `Rejected`.
    pub max_cells: usize,
    /// Bound of the control-command queue; a full queue answers
    /// `Busy`.
    pub queue_depth: usize,
    /// Per-frame payload ceiling, in bytes.
    pub max_frame: usize,
    /// Per-connection socket read deadline, in milliseconds.
    pub read_timeout_ms: u64,
    /// Fleet stepping cadence in milliseconds (0 = manual: the fleet
    /// advances only on `Step` commands — the mode the deterministic
    /// tests drive).
    pub cadence_ms: u64,
    /// Shed lowest-priority cells while fleet inference pressure
    /// exceeds this ([`f64::INFINITY`] disables shedding).
    pub high_watermark: f64,
    /// Re-admit one shed cell per round once pressure is at or below
    /// this.
    pub low_watermark: f64,
    /// The robust loop configuration every resident cell runs under
    /// (its `checkpoint` field is ignored — the daemon owns
    /// persistence).
    pub robust: RobustConfig,
    /// Per-cell supervision (its `shedding` and `max_rounds` fields
    /// are ignored — the daemon owns both decisions).
    pub supervisor: SupervisorConfig,
}

impl ServiceConfig {
    /// Defaults for a daemon rooted at `dir`: localhost ephemeral
    /// port, 64-cell budget, manual cadence, shedding off.
    pub fn new(robust: RobustConfig, dir: PathBuf) -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            dir,
            resume: false,
            every_subframes: 2_000,
            max_cells: 64,
            queue_depth: 16,
            max_frame: crate::runtime::wire::DEFAULT_MAX_FRAME,
            read_timeout_ms: 5_000,
            cadence_ms: 0,
            high_watermark: f64::INFINITY,
            low_watermark: f64::INFINITY,
            robust,
            supervisor: SupervisorConfig::default(),
        }
    }

    /// Up-front validation of every knob a wedged daemon would
    /// otherwise discover at 3am.
    pub fn validate(&self) -> Result<(), BluError> {
        self.robust.validate()?;
        self.supervisor.backoff.validate()?;
        if self.max_cells == 0 {
            return Err(BluError::InvalidConfig(
                "serve max_cells must be > 0".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(BluError::InvalidConfig(
                "serve queue_depth must be > 0".into(),
            ));
        }
        if self.max_frame < 1_024 {
            return Err(BluError::InvalidConfig(
                "serve max_frame must be at least 1024 bytes".into(),
            ));
        }
        if self.read_timeout_ms == 0 {
            return Err(BluError::InvalidConfig(
                "serve read_timeout_ms must be > 0".into(),
            ));
        }
        if self.high_watermark.is_nan()
            || self.low_watermark.is_nan()
            || self.high_watermark <= 0.0
            || self.low_watermark < 0.0
            || self.low_watermark > self.high_watermark
        {
            return Err(BluError::InvalidConfig(
                "serve watermarks must satisfy 0 <= low <= high, high > 0".into(),
            ));
        }
        Ok(())
    }
}

/// Synthesize a cell's capture from its spec — the same generator
/// (and the same capture shape) as the chaos harness, so a persisted
/// spec is a complete resume record.
pub fn capture_for_spec(spec: &CellSpec) -> Result<FaultyCapture, BluError> {
    spec.validate()?;
    let cfg = CaptureConfig {
        duration: Micros::from_secs(spec.seconds),
        q_range: (0.25, 0.55),
        ..CaptureConfig::testbed_default()
    };
    let mut events = Vec::new();
    if let Some(at) = spec.stall_at {
        events.push(FaultEvent {
            at_subframe: at,
            kind: FaultKind::InferenceStall {
                factor: spec.stall_factor,
            },
        });
    }
    if spec.churn_millihz > 0 {
        // The churn window opens after the first third of the trace —
        // past the initial measurement phase — and runs to the end.
        // Everything derives from the spec, so a persisted spec still
        // regenerates the identical churned capture on resume.
        let total = spec.seconds.checked_mul(1_000).ok_or(BluError::Overflow {
            what: "serve churn window",
        })?;
        let start = total / 3;
        let duration = total - start;
        if duration > 0 {
            let churn_cfg = blu_sim::churn::ChurnConfig::with_total_rate(
                cfg.n_ues,
                duration,
                spec.churn_rate_hz(),
            );
            let mut rng = DetRng::seed_from_u64(spec.seed).derive("serve-churn");
            let churn = blu_sim::churn::generate_churn(&churn_cfg, cfg.n_hts, rng.next_u64())
                .map_err(BluError::from)?;
            events.extend(crate::robust::compile_churn_script(&churn, start)?.events);
        }
    }
    capture_with_faults(&cfg, &FaultScript::new(events), spec.seed).map_err(BluError::from)
}

/// FNV-1a-64 digest (hex) of a cell snapshot with wall-clock timing
/// zeroed — the equality the determinism contract actually promises.
pub fn snapshot_digest(snap: &RobustSnapshot) -> String {
    let mut normalized = snap.clone();
    normalized.inference_micros = 0;
    let json = serde_json::to_string(&normalized).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

// ---------------------------------------------------------------------------
// Resident cells
// ---------------------------------------------------------------------------

/// Serve sidecar persisted next to each cell checkpoint: the spec
/// (capture regeneration) plus supervisor/backoff/shed state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeSidecar {
    version: u32,
    id: u64,
    spec: CellSpec,
    health: CellHealth,
    restarts_used: u32,
    silent_steps: u32,
    backoff_attempts: u32,
    backoff_rounds_left: u64,
    shed: bool,
    shed_rounds: u64,
    finished: bool,
    last_error: Option<String>,
}

/// Result of one cell's parallel step, settled sequentially.
enum StepOutcome {
    Idle,
    Progress {
        more: bool,
        heartbeats: u64,
        hard_stalled: bool,
    },
    Panicked(String),
    Failed(String),
}

/// One resident cell. Unlike the batch supervisor's borrowing cells,
/// a `ServeCell` *owns* its capture — the daemon adds and removes
/// cells at runtime — and steps through the same free functions
/// ([`step_cell_with`]/[`step_cell_shed`]) as the batch path, so both
/// evolve identically.
struct ServeCell {
    id: u64,
    spec: CellSpec,
    /// Effective robust config for this cell: the daemon-wide config
    /// with the spec's streaming window layered on, so phased and
    /// streaming cells coexist in one fleet.
    robust: RobustConfig,
    capture: FaultyCapture,
    geom: CellGeometry,
    snap: RobustSnapshot,
    arena: EngineArena,
    sup: CellSupervisor,
    backoff: RestartBackoff,
    backoff_rounds_left: u64,
    shed: bool,
    shed_rounds: u64,
    last_good: Option<RobustSnapshot>,
    last_error: Option<String>,
    outcome: StepOutcome,
    finished: bool,
    final_saved: bool,
    last_saved: u64,
    ckpt_path: PathBuf,
    sidecar_path: PathBuf,
}

impl ServeCell {
    fn paths(dir: &std::path::Path, id: u64) -> (PathBuf, PathBuf) {
        (
            dir.join(format!("cell-{id}.json")),
            dir.join(format!("cell-{id}.serve.json")),
        )
    }

    fn backoff_rng(config: &ServiceConfig, id: u64) -> DetRng {
        DetRng::seed_from_u64(config.robust.seed).derive_indexed("serve-restart-backoff", id)
    }

    /// Admit a fresh cell.
    fn create(id: u64, spec: CellSpec, config: &ServiceConfig) -> Result<Self, BluError> {
        let capture = capture_for_spec(&spec)?;
        let mut robust = config.robust.clone();
        if spec.stream_window > 0 {
            let streaming = crate::robust::StreamingConfig::new(spec.stream_window as usize);
            streaming.validate()?;
            robust.streaming = Some(streaming);
        }
        let geom = CellGeometry::derive(&capture.trace, &config.robust.blu.emulation);
        let snap = RobustSnapshot::fresh(
            geom.n,
            geom.trace_len,
            config.robust.seed,
            config.robust.drift_alpha,
            config.robust.breaker,
        );
        let (ckpt_path, sidecar_path) = ServeCell::paths(&config.dir, id);
        Ok(ServeCell {
            id,
            spec,
            robust,
            capture,
            geom,
            snap,
            arena: EngineArena::new(),
            sup: CellSupervisor::new(&config.supervisor),
            backoff: RestartBackoff::new(
                config.supervisor.backoff,
                ServeCell::backoff_rng(config, id),
            ),
            backoff_rounds_left: 0,
            shed: false,
            shed_rounds: 0,
            last_good: None,
            last_error: None,
            outcome: StepOutcome::Idle,
            finished: false,
            final_saved: false,
            last_saved: 0,
            ckpt_path,
            sidecar_path,
        })
    }

    /// Rebuild a cell from its persisted sidecar (+ checkpoint, when
    /// one exists — a cell killed before its first grid crossing
    /// resumes fresh, which *is* the uninterrupted behavior).
    fn resume(side: ServeSidecar, config: &ServiceConfig) -> Result<Self, BluError> {
        let mut cell = ServeCell::create(side.id, side.spec.clone(), config)?;
        if cell.ckpt_path.exists() {
            let snap = load_robust_checkpoint(&cell.ckpt_path)?;
            cell.adopt(snap, config)?;
            cell.last_saved = cell.snap.cursor;
        }
        cell.sup.restore_state(
            side.health,
            side.restarts_used,
            side.silent_steps,
            Vec::new(),
        );
        cell.backoff = RestartBackoff::replayed(
            config.supervisor.backoff,
            ServeCell::backoff_rng(config, side.id),
            side.backoff_attempts,
        );
        cell.backoff_rounds_left = side.backoff_rounds_left;
        cell.shed = side.shed;
        cell.shed_rounds = side.shed_rounds;
        cell.finished = side.finished || cell.snap.done;
        cell.final_saved = cell.finished;
        cell.last_error = side.last_error;
        Ok(cell)
    }

    /// Install a restored snapshot, guarding against the wrong
    /// capture or a reconfigured daemon (the same checks as
    /// `RobustDriver::resume`).
    fn adopt(&mut self, snap: RobustSnapshot, config: &ServiceConfig) -> Result<(), BluError> {
        if snap.n_clients != self.geom.n as u64 || snap.trace_len != self.geom.trace_len {
            return Err(BluError::Checkpoint(format!(
                "cell {} snapshot was taken against a different capture \
                 ({} clients / {} sub-frames, spec regenerates {} / {})",
                self.id, snap.n_clients, snap.trace_len, self.geom.n, self.geom.trace_len
            )));
        }
        if snap.config_seed != config.robust.seed {
            return Err(BluError::Checkpoint(format!(
                "cell {} snapshot seed {:#x} does not match configured seed {:#x}",
                self.id, snap.config_seed, config.robust.seed
            )));
        }
        self.snap = snap;
        Ok(())
    }

    fn save_sidecar(&self) -> Result<(), BluError> {
        let side = ServeSidecar {
            version: SERVE_SIDECAR_VERSION,
            id: self.id,
            spec: self.spec.clone(),
            health: self.sup.health(),
            restarts_used: self.sup.restarts_used(),
            silent_steps: self.sup.silent_steps(),
            backoff_attempts: self.backoff.attempts(),
            backoff_rounds_left: self.backoff_rounds_left,
            shed: self.shed,
            shed_rounds: self.shed_rounds,
            finished: self.finished,
            last_error: self.last_error.clone(),
        };
        let path = &self.sidecar_path;
        let json = serde_json::to_string_pretty(&side)
            .map_err(|e| BluError::Checkpoint(format!("serializing {}: {e}", path.display())))?;
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| BluError::Checkpoint(format!("creating {}: {e}", tmp.display())))?;
            f.write_all(json.as_bytes())
                .map_err(|e| BluError::Checkpoint(format!("writing {}: {e}", tmp.display())))?;
            f.sync_all()
                .map_err(|e| BluError::Checkpoint(format!("syncing {}: {e}", tmp.display())))?;
        }
        fs::rename(&tmp, path)
            .map_err(|e| BluError::Checkpoint(format!("renaming {}: {e}", path.display())))?;
        Ok(())
    }

    /// Grid-aligned persistence: identical semantics to the batch
    /// supervisor, so the set of on-disk restore points is a pure
    /// function of the cell's step sequence.
    fn persist_with(&mut self, every_subframes: u64, force: bool) -> Result<(), BluError> {
        if self.finished && self.final_saved {
            return Ok(());
        }
        let interval_due = every_subframes > 0
            && self.snap.cursor / every_subframes != self.last_saved / every_subframes;
        if !(interval_due || self.finished || force) {
            return Ok(());
        }
        save_robust_checkpoint(&self.ckpt_path, &self.snap)?;
        self.last_saved = self.snap.cursor;
        self.save_sidecar()?;
        if self.finished {
            self.final_saved = true;
        }
        Ok(())
    }

    /// Sequential pre-round bookkeeping: tick the backoff clock.
    fn pre_round(&mut self) {
        if self.finished || self.backoff_rounds_left == 0 {
            return;
        }
        self.backoff_rounds_left -= 1;
        if self.backoff_rounds_left == 0 {
            self.sup.restart_complete(self.snap.cursor);
        }
    }

    /// This cell's contribution to fleet inference pressure (the
    /// batch supervisor's formula).
    fn current_load(&self) -> f64 {
        if self.finished
            || self.shed
            || self.backoff_rounds_left > 0
            || self.sup.health() == CellHealth::Quarantined
            || self.snap.done
        {
            return 0.0;
        }
        match self.snap.state {
            OrchestratorState::Measuring
            | OrchestratorState::Remeasuring
            | OrchestratorState::Drifting => f64::from(
                self.capture
                    .script
                    .runtime_state_at(self.snap.cursor)
                    .stall_factor,
            ),
            _ => 0.0,
        }
    }

    /// The parallel half of a round: step (or idle) and stash the
    /// outcome. Every panic is caught inside the fleet closure.
    fn parallel_step(&mut self, stall_factor_limit: u32) {
        self.outcome = self.compute_step(stall_factor_limit);
    }

    fn compute_step(&mut self, stall_factor_limit: u32) -> StepOutcome {
        if self.finished || self.backoff_rounds_left > 0 {
            return StepOutcome::Idle;
        }
        if self.sup.health() == CellHealth::Quarantined || self.shed {
            let robust = &self.robust;
            let capture = &self.capture;
            let snap = &mut self.snap;
            let arena = &mut self.arena;
            return match catch_unwind(AssertUnwindSafe(|| {
                step_cell_shed(capture, robust, snap, arena)
            })) {
                Ok(Ok(more)) => StepOutcome::Progress {
                    more,
                    heartbeats: 1,
                    hard_stalled: false,
                },
                Ok(Err(e)) => StepOutcome::Failed(e.to_string()),
                Err(p) => StepOutcome::Panicked(panic_message(p.as_ref())),
            };
        }
        let cursor = self.snap.cursor;
        let measuring = matches!(
            self.snap.state,
            OrchestratorState::Measuring | OrchestratorState::Remeasuring
        );
        let hard_stalled = measuring
            && self.capture.script.runtime_state_at(cursor).stall_factor >= stall_factor_limit;
        // Pre-step state is the in-memory restore point: a failed
        // attempt must be redone, never resumed past.
        self.last_good = Some(self.snap.clone());
        let robust = &self.robust;
        let capture = &self.capture;
        let geom = &self.geom;
        let snap = &mut self.snap;
        let arena = &mut self.arena;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut beats = HeartbeatCounter::default();
            step_cell_with(capture, robust, geom, snap, arena, &mut beats)
                .map(|more| (more, beats.beats()))
        }));
        match result {
            Ok(Ok((more, heartbeats))) => StepOutcome::Progress {
                more,
                heartbeats,
                hard_stalled,
            },
            Ok(Err(e)) => StepOutcome::Failed(e.to_string()),
            Err(p) => StepOutcome::Panicked(panic_message(p.as_ref())),
        }
    }

    /// The sequential half: drive the health machine from the stashed
    /// outcome. Returns how many restarts this settle consumed.
    fn settle(&mut self, config: &ServiceConfig) -> u64 {
        match std::mem::replace(&mut self.outcome, StepOutcome::Idle) {
            StepOutcome::Idle => 0,
            StepOutcome::Progress {
                more,
                heartbeats,
                hard_stalled,
            } => {
                if !more {
                    self.finished = true;
                    0
                } else if self.sup.health() != CellHealth::Quarantined && !self.shed {
                    let cursor = self.snap.cursor;
                    let open = self.snap.breaker.state() == BreakerState::Open;
                    self.sup.note_breaker(cursor, open);
                    match self.sup.note_step(cursor, heartbeats, hard_stalled) {
                        Some(kind) => self.fail(kind, config),
                        None => 0,
                    }
                } else {
                    0
                }
            }
            StepOutcome::Panicked(msg) => {
                self.last_error = Some(msg);
                self.fail(crate::runtime::supervisor::FailureKind::Panic, config)
            }
            StepOutcome::Failed(msg) => {
                self.last_error = Some(msg);
                self.fail(crate::runtime::supervisor::FailureKind::Error, config)
            }
        }
    }

    fn fail(
        &mut self,
        kind: crate::runtime::supervisor::FailureKind,
        config: &ServiceConfig,
    ) -> u64 {
        let was_quarantined = self.sup.health() == CellHealth::Quarantined;
        let cursor = self.snap.cursor;
        match self.sup.on_failure(cursor, kind) {
            RestartDecision::Restart { .. } => {
                self.restore(config);
                self.backoff_rounds_left = self.backoff.next_wait_rounds();
                1
            }
            RestartDecision::Quarantine => {
                if was_quarantined {
                    self.finished = true;
                } else {
                    self.restore(config);
                }
                0
            }
        }
    }

    /// Disk checkpoint → in-memory known-good → fresh. Never errors.
    fn restore(&mut self, config: &ServiceConfig) {
        if let Ok(snap) = load_robust_checkpoint(&self.ckpt_path) {
            if self.adopt(snap, config).is_ok() {
                return;
            }
        }
        if let Some(good) = self.last_good.clone() {
            self.snap = good;
            return;
        }
        self.snap = RobustSnapshot::fresh(
            self.geom.n,
            self.geom.trace_len,
            config.robust.seed,
            config.robust.drift_alpha,
            config.robust.breaker,
        );
    }

    fn status(&self) -> CellStatus {
        CellStatus {
            cell: self.id,
            health: self.sup.health(),
            state: self.snap.state,
            cursor: self.snap.cursor,
            trace_len: self.geom.trace_len,
            done: self.snap.done,
            restarts: self.sup.restarts_used(),
            shed: self.shed,
            shed_rounds: self.shed_rounds,
            priority: self.spec.priority,
            digest: snapshot_digest(&self.snap),
            window_occupancy: self
                .snap
                .stream
                .as_ref()
                .map_or(0, |s| s.window.occupancy() as u64),
            window_capacity: self
                .snap
                .stream
                .as_ref()
                .map_or(0, |s| s.window.capacity() as u64),
        }
    }
}

// ---------------------------------------------------------------------------
// Engine loop
// ---------------------------------------------------------------------------

/// Counters the connection handlers touch (the engine folds them into
/// [`ServiceCounters`] at report time).
struct Shared {
    busy: AtomicU64,
    malformed: AtomicU64,
    resumed: AtomicU64,
}

struct Envelope {
    req: Request,
    reply: SyncSender<Response>,
}

struct Engine {
    config: ServiceConfig,
    cells: Vec<ServeCell>,
    next_id: u64,
    draining: bool,
    counters: ServiceCounters,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
}

impl Engine {
    /// Scan the checkpoint directory and resume every persisted cell,
    /// in id order.
    fn resume_fleet(config: &ServiceConfig) -> Result<Vec<ServeCell>, BluError> {
        let mut ids: Vec<u64> = Vec::new();
        if config.dir.exists() {
            let entries = fs::read_dir(&config.dir).map_err(|e| {
                BluError::Checkpoint(format!("scanning {}: {e}", config.dir.display()))
            })?;
            for entry in entries {
                let entry = entry.map_err(|e| {
                    BluError::Checkpoint(format!("scanning {}: {e}", config.dir.display()))
                })?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(id) = name
                    .strip_prefix("cell-")
                    .and_then(|s| s.strip_suffix(".serve.json"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        let mut cells = Vec::with_capacity(ids.len());
        for id in ids {
            let path = config.dir.join(format!("cell-{id}.serve.json"));
            let text = fs::read_to_string(&path)
                .map_err(|e| BluError::Checkpoint(format!("reading {}: {e}", path.display())))?;
            let side: ServeSidecar = serde_json::from_str(&text)
                .map_err(|e| BluError::Checkpoint(format!("decoding {}: {e}", path.display())))?;
            if side.version != SERVE_SIDECAR_VERSION {
                return Err(BluError::Checkpoint(format!(
                    "serve sidecar {} has version {}, this build requires {}",
                    path.display(),
                    side.version,
                    SERVE_SIDECAR_VERSION
                )));
            }
            cells.push(ServeCell::resume(side, config)?);
        }
        Ok(cells)
    }

    /// One fleet round: backoff ticks → watermark admission control →
    /// parallel step across the fleet shards → sequential settle and
    /// grid persistence, in cell order.
    fn step_round(&mut self) {
        if self.cells.iter().all(|c| c.finished) {
            return;
        }
        for cell in self.cells.iter_mut() {
            cell.pre_round();
        }
        self.apply_watermarks();
        for cell in self.cells.iter_mut() {
            if cell.shed && !cell.finished {
                cell.shed_rounds += 1;
                self.counters.shed_rounds_total += 1;
            }
        }
        let limit = self.config.supervisor.stall_factor_limit;
        let refs: Vec<&mut ServeCell> = self.cells.iter_mut().collect();
        FleetEngine::run(refs, || (), |_, cell| cell.parallel_step(limit));
        let mut restarts = 0u64;
        for cell in self.cells.iter_mut() {
            restarts += cell.settle(&self.config);
            if let Err(e) = cell.persist_with(self.config.every_subframes, false) {
                cell.last_error = Some(e.to_string());
                eprintln!("blu serve: cell {} checkpoint failed: {e}", cell.id);
            }
        }
        self.counters.restarts += restarts;
        self.counters.rounds += 1;
    }

    /// Watermark backpressure: shed lowest-priority contributing
    /// cells (highest id on ties) while pressure exceeds the high
    /// watermark; re-admit one per round (highest priority, lowest id)
    /// once at or below the low watermark. The ordering rules are the
    /// batch supervisor's, keyed by spec priorities.
    fn apply_watermarks(&mut self) {
        if !self.config.high_watermark.is_finite() {
            return;
        }
        let loads: Vec<f64> = self.cells.iter().map(ServeCell::current_load).collect();
        let mut pressure: f64 = loads.iter().sum();
        let mut newly_shed = vec![false; self.cells.len()];
        while pressure > self.config.high_watermark {
            let mut pick: Option<usize> = None;
            for (i, cell) in self.cells.iter().enumerate() {
                if cell.shed || loads[i] <= 0.0 {
                    continue;
                }
                pick = Some(match pick {
                    None => i,
                    Some(p) => {
                        let (pp, pi) = (self.cells[p].spec.priority, cell.spec.priority);
                        if pi < pp || (pi == pp && cell.id > self.cells[p].id) {
                            i
                        } else {
                            p
                        }
                    }
                });
            }
            let Some(i) = pick else { break };
            self.cells[i].shed = true;
            newly_shed[i] = true;
            pressure -= loads[i];
            self.counters.shed_events += 1;
        }
        if pressure <= self.config.low_watermark {
            let mut pick: Option<usize> = None;
            for (i, cell) in self.cells.iter().enumerate() {
                if !cell.shed || newly_shed[i] || cell.finished {
                    continue;
                }
                pick = Some(match pick {
                    None => i,
                    Some(p) => {
                        let (pp, pi) = (self.cells[p].spec.priority, cell.spec.priority);
                        if pi > pp || (pi == pp && cell.id < self.cells[p].id) {
                            i
                        } else {
                            p
                        }
                    }
                });
            }
            if let Some(i) = pick {
                self.cells[i].shed = false;
                self.counters.readmit_events += 1;
            }
        }
    }

    fn persist_all(&mut self, force: bool) {
        for cell in self.cells.iter_mut() {
            if let Err(e) = cell.persist_with(self.config.every_subframes, force) {
                cell.last_error = Some(e.to_string());
                eprintln!("blu serve: cell {} checkpoint failed: {e}", cell.id);
            }
        }
    }

    fn folded_counters(&self) -> ServiceCounters {
        let mut c = self.counters;
        c.busy_responses = self.shared.busy.load(Ordering::Relaxed);
        c.malformed_frames = self.shared.malformed.load(Ordering::Relaxed);
        c.resumed_cells = self.shared.resumed.load(Ordering::Relaxed);
        c.quarantined = self
            .cells
            .iter()
            .filter(|c| c.sup.health() == CellHealth::Quarantined)
            .count() as u64;
        c
    }

    fn status_report(&self) -> StatusReport {
        StatusReport {
            version: WIRE_VERSION,
            draining: self.draining,
            max_cells: self.config.max_cells as u64,
            counters: self.folded_counters(),
            cells: self.cells.iter().map(ServeCell::status).collect(),
        }
    }

    fn metrics_text(&self) -> String {
        let c = self.folded_counters();
        let breaker_open = self
            .cells
            .iter()
            .filter(|cell| cell.snap.breaker.state() == BreakerState::Open)
            .count();
        let mut out = String::new();
        let mut counter = |name: &str, value: u64| {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        };
        counter("blu_serve_admissions_total", c.admissions);
        counter("blu_serve_rejections_total", c.rejections);
        counter("blu_serve_busy_total", c.busy_responses);
        counter("blu_serve_malformed_frames_total", c.malformed_frames);
        counter("blu_serve_rounds_total", c.rounds);
        counter("blu_serve_shed_events_total", c.shed_events);
        counter("blu_serve_readmit_events_total", c.readmit_events);
        counter("blu_serve_shed_rounds_total", c.shed_rounds_total);
        counter("blu_serve_restarts_total", c.restarts);
        counter("blu_serve_resumed_cells_total", c.resumed_cells);
        if let Some(cache) = &self.config.robust.fleet_cache {
            let s = cache.stats();
            counter("blu_serve_fleet_cache_hits_total", s.hits);
            counter("blu_serve_fleet_cache_delayed_hits_total", s.delayed_hits);
            counter("blu_serve_fleet_cache_misses_total", s.misses);
        }
        let streams = || {
            self.cells
                .iter()
                .filter_map(|cell| cell.snap.stream.as_ref())
        };
        counter(
            "blu_stream_refines_total",
            streams().map(|s| s.refines).sum(),
        );
        counter(
            "blu_stream_refines_installed_total",
            streams().map(|s| s.refines_installed).sum(),
        );
        counter(
            "blu_stream_fallback_remeasure_total",
            streams().map(|s| s.fallback_remeasurements).sum(),
        );
        counter(
            "blu_stream_churn_events_total",
            streams().map(|s| s.churn_events_applied).sum(),
        );
        let mut gauge = |name: &str, value: u64| {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        };
        gauge("blu_serve_cells", self.cells.len() as u64);
        gauge("blu_serve_quarantined_cells", c.quarantined);
        gauge("blu_serve_breaker_open_cells", breaker_open as u64);
        gauge("blu_serve_draining", u64::from(self.draining));
        gauge("blu_stream_cells", streams().count() as u64);
        gauge(
            "blu_stream_window_occupancy",
            streams().map(|s| s.window.occupancy() as u64).sum(),
        );
        gauge(
            "blu_stream_window_capacity",
            streams().map(|s| s.window.capacity() as u64).sum(),
        );
        out
    }

    /// Handle one command. Returns `true` when the daemon must shut
    /// down after replying.
    fn handle(&mut self, req: Request) -> (Response, bool) {
        match req {
            Request::Hello { version } => {
                if version == WIRE_VERSION {
                    (
                        Response::Hello {
                            version: WIRE_VERSION,
                            resumed_cells: self.shared.resumed.load(Ordering::Relaxed),
                        },
                        false,
                    )
                } else {
                    (
                        Response::Error {
                            message: format!(
                                "unsupported protocol version {version}, daemon speaks {WIRE_VERSION}"
                            ),
                        },
                        false,
                    )
                }
            }
            Request::AddCell { spec } => {
                if self.draining {
                    self.counters.rejections += 1;
                    return (
                        Response::Rejected {
                            reason: "daemon is draining: admissions are closed".into(),
                        },
                        false,
                    );
                }
                if self.cells.len() >= self.config.max_cells {
                    self.counters.rejections += 1;
                    return (
                        Response::Rejected {
                            reason: format!(
                                "admission budget exhausted: {} of {} cells resident",
                                self.cells.len(),
                                self.config.max_cells
                            ),
                        },
                        false,
                    );
                }
                let id = self.next_id;
                match ServeCell::create(id, spec, &self.config) {
                    Ok(cell) => {
                        // The sidecar lands at admission time: the
                        // fleet roster must survive a kill -9 that
                        // beats the cell's first grid checkpoint.
                        if let Err(e) = cell.save_sidecar() {
                            eprintln!("blu serve: admission sidecar for cell {id} failed: {e}");
                        }
                        self.next_id += 1;
                        self.counters.admissions += 1;
                        self.cells.push(cell);
                        (Response::Done { cell: Some(id) }, false)
                    }
                    Err(e) => (
                        Response::Error {
                            message: e.to_string(),
                        },
                        false,
                    ),
                }
            }
            Request::RemoveCell { cell } => {
                let Some(pos) = self.cells.iter().position(|c| c.id == cell) else {
                    return (
                        Response::Error {
                            message: format!("no resident cell with id {cell}"),
                        },
                        false,
                    );
                };
                let mut removed = self.cells.remove(pos);
                if let Err(e) = removed.persist_with(self.config.every_subframes, true) {
                    eprintln!("blu serve: final checkpoint of removed cell {cell} failed: {e}");
                }
                (Response::Done { cell: Some(cell) }, false)
            }
            Request::Step { rounds } => {
                for _ in 0..rounds {
                    // A stop signal interrupts a long burst: the
                    // graceful path must not wait out a
                    // `step --rounds 100000`.
                    if self.stop.load(Ordering::SeqCst) || self.cells.iter().all(|c| c.finished) {
                        break;
                    }
                    self.step_round();
                }
                (Response::Done { cell: None }, false)
            }
            Request::Status => (Response::Status(self.status_report()), false),
            Request::Metrics => (
                Response::Metrics {
                    text: self.metrics_text(),
                },
                false,
            ),
            Request::Snapshot => {
                self.persist_all(true);
                (Response::Done { cell: None }, false)
            }
            Request::Drain => {
                self.draining = true;
                (Response::Done { cell: None }, false)
            }
            Request::Shutdown => {
                self.draining = true;
                (Response::Bye, true)
            }
        }
    }

    /// The daemon main loop: commands drain from the bounded queue,
    /// the fleet steps on cadence (when configured), and a stop
    /// signal or `Shutdown` command triggers the graceful path —
    /// close admissions, force-persist every cell, exit.
    fn run(mut self, rx: Receiver<Envelope>) -> Result<(), BluError> {
        let cadence =
            (self.config.cadence_ms > 0).then(|| Duration::from_millis(self.config.cadence_ms));
        let poll = cadence.unwrap_or(Duration::from_millis(25));
        let mut next_round = Instant::now() + poll;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let wait = next_round.saturating_duration_since(Instant::now());
            match rx.recv_timeout(wait) {
                Ok(envelope) => {
                    let (resp, shutdown) = self.handle(envelope.req);
                    let _ = envelope.reply.try_send(resp);
                    if shutdown {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if cadence.is_some() {
                        self.step_round();
                    }
                    next_round += poll;
                    // A long round must not trigger a catch-up burst.
                    let now = Instant::now();
                    if next_round < now {
                        next_round = now + poll;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.draining = true;
        self.persist_all(true);
        self.stop.store(true, Ordering::SeqCst);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

fn handle_connection(
    mut stream: TcpStream,
    tx: SyncSender<Envelope>,
    shared: Arc<Shared>,
    max_frame: usize,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame(&mut stream, max_frame) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e) => {
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                respond(&mut stream, &error_response(&e), max_frame);
                return;
            }
        };
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                respond(&mut stream, &error_response(&e), max_frame);
                return;
            }
        };
        let resp = match req {
            // Hello is answered by the handler itself: the handshake
            // must work even when the engine queue is saturated.
            Request::Hello { version } => {
                if version == WIRE_VERSION {
                    Response::Hello {
                        version: WIRE_VERSION,
                        resumed_cells: shared.resumed.load(Ordering::Relaxed),
                    }
                } else {
                    Response::Error {
                        message: format!(
                            "unsupported protocol version {version}, daemon speaks {WIRE_VERSION}"
                        ),
                    }
                }
            }
            other => {
                let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
                match tx.try_send(Envelope {
                    req: other,
                    reply: reply_tx,
                }) {
                    Ok(()) => match reply_rx.recv() {
                        Ok(resp) => resp,
                        Err(_) => Response::Error {
                            message: "daemon stopped before replying".into(),
                        },
                    },
                    Err(TrySendError::Full(_)) => {
                        shared.busy.fetch_add(1, Ordering::Relaxed);
                        Response::Busy
                    }
                    Err(TrySendError::Disconnected(_)) => Response::Error {
                        message: "daemon is shutting down".into(),
                    },
                }
            }
        };
        let closing = matches!(resp, Response::Bye);
        if !respond(&mut stream, &resp, max_frame) || closing {
            return;
        }
    }
}

fn error_response(e: &BluError) -> Response {
    Response::Error {
        message: e.to_string(),
    }
}

fn respond(stream: &mut TcpStream, resp: &Response, max_frame: usize) -> bool {
    match encode_response(resp) {
        Ok(bytes) => write_frame(stream, &bytes, max_frame).is_ok(),
        Err(_) => false,
    }
}

// ---------------------------------------------------------------------------
// Service facade
// ---------------------------------------------------------------------------

/// The resident fleet daemon. [`BluService::start`] binds, resumes
/// (when asked) and spawns the engine and accept threads, returning a
/// [`ServiceHandle`] immediately.
pub struct BluService;

/// Handle to a running daemon.
pub struct ServiceHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    engine: Option<JoinHandle<Result<(), BluError>>>,
    accept: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The address actually bound (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful shutdown (the signal handlers' entry point:
    /// stop admissions → final fleet checkpoint → close).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// The shared stop flag — hand it to a signal handler.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Block until the daemon exits; surfaces engine errors.
    pub fn wait(mut self) -> Result<(), BluError> {
        let result = match self.engine.take() {
            Some(handle) => match handle.join() {
                Ok(result) => result,
                Err(p) => Err(BluError::Panicked(panic_message(p.as_ref()))),
            },
            None => Ok(()),
        };
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        result
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.engine.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl BluService {
    /// Validate, bind, resume the persisted fleet (with
    /// [`ServiceConfig::resume`]), and start serving. The returned
    /// handle owns the daemon; dropping it shuts the daemon down.
    pub fn start(config: ServiceConfig) -> Result<ServiceHandle, BluError> {
        config.validate()?;
        fs::create_dir_all(&config.dir)
            .map_err(|e| BluError::Checkpoint(format!("creating {}: {e}", config.dir.display())))?;

        let cells = if config.resume {
            Engine::resume_fleet(&config)?
        } else {
            Vec::new()
        };
        let shared = Arc::new(Shared {
            busy: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            resumed: AtomicU64::new(cells.len() as u64),
        });
        let next_id = cells.iter().map(|c| c.id + 1).max().unwrap_or(0);
        let counters = ServiceCounters {
            resumed_cells: cells.len() as u64,
            ..ServiceCounters::default()
        };

        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| BluError::Wire(format!("binding {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| BluError::Wire(format!("resolving bound address: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| BluError::Wire(format!("configuring listener: {e}")))?;

        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<Envelope>(config.queue_depth);
        let max_frame = config.max_frame;
        let read_timeout = Duration::from_millis(config.read_timeout_ms);

        let engine = Engine {
            config,
            cells,
            next_id,
            draining: false,
            counters,
            shared: Arc::clone(&shared),
            stop: Arc::clone(&stop),
        };
        let engine_handle = std::thread::Builder::new()
            .name("blu-serve-engine".into())
            .spawn(move || engine.run(rx))
            .map_err(|e| BluError::Wire(format!("spawning engine thread: {e}")))?;

        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("blu-serve-accept".into())
            .spawn(move || {
                accept_loop(listener, tx, shared, accept_stop, max_frame, read_timeout);
            })
            .map_err(|e| BluError::Wire(format!("spawning accept thread: {e}")))?;

        Ok(ServiceHandle {
            addr,
            stop,
            engine: Some(engine_handle),
            accept: Some(accept_handle),
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<Envelope>,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    max_frame: usize,
    read_timeout: Duration,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let tx = tx.clone();
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("blu-serve-conn".into())
                    .spawn(move || {
                        handle_connection(stream, tx, shared, max_frame, read_timeout);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}
