//! Fleet supervision: restart-from-checkpoint, quarantine, and load
//! shedding over the sharded fleet engine.
//!
//! The resilience runtime gave every cell its own primitives —
//! circuit breakers, versioned checkpoints, panic containment — and
//! the staged engine gave every cell an observer seam. But nothing
//! owned fleet-level health: a panicking or stalling cell simply
//! returned [`BluError::Panicked`] to the caller, and overload had no
//! graceful-degradation path. This module supplies that layer.
//!
//! ## Per-cell health machine
//!
//! [`CellSupervisor`] is a pure (no I/O, fully deterministic) state
//! machine driven by watchdog evidence from each supervised step:
//!
//! ```text
//!   Healthy ◄────────────► Degraded        breaker open / recovered
//!      │                      │
//!      │  panic / stall / error
//!      ▼                      ▼
//!   Restarting ───────────► Healthy        restore + backoff elapsed
//!      │     ▲    │
//!      │     └────┘  repeated failure (retry budget left)
//!      │  retry budget exhausted
//!      ▼
//!   Quarantined                            absorbing: static PF
//! ```
//!
//! A failure (contained panic, hard inference stall, or a typed step
//! error) triggers a restart: the cell's state is restored from its
//! latest on-disk checkpoint if one loads cleanly, else from the last
//! known-good in-memory snapshot, else from scratch — and the cell
//! idles through a capped, exponentially backed-off, deterministically
//! jittered number of rounds (the circuit breaker's escalation
//! formula, re-used round-clocked) before stepping again. A cell that
//! exhausts its restart budget is quarantined: it keeps serving
//! traffic as a static PF scheduler (via the robust driver's shed
//! arm) so the fleet keeps running, but never re-enters inference.
//!
//! ## Watchdog semantics
//!
//! Liveness is measured with a [`HeartbeatCounter`] tapped into the
//! stage pipeline: a step that produces zero beats did no engine work
//! and counts as *silent*; [`SupervisorConfig::stall_threshold_steps`]
//! consecutive silent steps fail the cell. A *hard stall* — the
//! scripted inference stall factor at the cell's cursor reaching
//! [`SupervisorConfig::stall_factor_limit`] while the cell is in a
//! measuring state — fails the step immediately: an inference running
//! at ≥ `limit ×` its time budget is indistinguishable from a hang.
//!
//! ## Load shedding
//!
//! With a [`SheddingPolicy`] configured, the supervisor computes a
//! fleet *pressure* each round: the sum, over cells actively in (or
//! entering) inference, of their scripted stall factor — a healthy
//! inferring cell contributes 1, a cell stalling at 10× contributes
//! 10, cells that are speculating, shed, quarantined or waiting out a
//! backoff contribute 0. While pressure exceeds the high watermark,
//! the lowest-priority contributing cell is shed to PF fallback; once
//! pressure is at or below the low watermark, one shed cell (highest
//! priority first) is re-admitted per round. Every transition is
//! recorded as a [`ShedEvent`] in the [`FleetHealthReport`].
//!
//! ## Determinism and resume
//!
//! Everything here is clocked in rounds and subframes — never wall
//! time — and all randomness (restart jitter) comes from seeded
//! [`DetRng`] streams derived per cell, so a supervised run is a pure
//! function of its inputs. Supervisor state (health, retry budget,
//! fired crash injections, backoff progress) persists in a sidecar
//! file next to each cell checkpoint, so killing and restarting the
//! whole supervised fleet resumes bit-identically.

use crate::engine::{FleetEngine, HeartbeatCounter};
use crate::error::BluError;
use crate::robust::{
    OrchestratorState, RobustConfig, RobustDriver, RobustRunReport, RobustSnapshot,
};
use crate::runtime::breaker::BreakerState;
use crate::runtime::checkpoint::{load_robust_checkpoint, save_robust_checkpoint};
use crate::runtime::panic_message;
use blu_sim::rng::DetRng;
use blu_traces::faults::FaultyCapture;
use serde::{Deserialize, Serialize};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Sidecar-format version written and required by this build.
pub const SUPERVISOR_SIDECAR_VERSION: u32 = 1;

/// A supervised cell's health, as seen by the fleet supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellHealth {
    /// Stepping normally.
    Healthy,
    /// Stepping, but its circuit breaker is open (inference parked).
    Degraded,
    /// Failed; restored from a snapshot and waiting out its backoff.
    Restarting,
    /// Retry budget exhausted: permanently parked on static PF.
    Quarantined,
}

/// Why a health transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthCause {
    /// A panic escaped the cell's step and was caught by the
    /// supervisor.
    Panic,
    /// The stall watchdog fired (silent steps or a hard stall).
    Stall,
    /// The step returned a typed [`BluError`].
    Error,
    /// The cell's circuit breaker opened.
    BreakerOpen,
    /// The cell's circuit breaker left the open state.
    BreakerRecovered,
    /// The post-restore backoff elapsed; the cell steps again.
    RestartComplete,
    /// The restart budget ran out; the cell is quarantined.
    RetryBudgetExhausted,
}

/// The failure classes the supervisor reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A panic escaped the step.
    Panic,
    /// The stall watchdog fired.
    Stall,
    /// The step returned an error.
    Error,
}

impl FailureKind {
    fn cause(self) -> HealthCause {
        match self {
            FailureKind::Panic => HealthCause::Panic,
            FailureKind::Stall => HealthCause::Stall,
            FailureKind::Error => HealthCause::Error,
        }
    }
}

/// One recorded health transition (`at_subframe` is the cell's trace
/// cursor — stable across kill/resume, unlike round numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthTransition {
    /// Cell cursor when the transition happened.
    pub at_subframe: u64,
    /// State left.
    pub from: CellHealth,
    /// State entered.
    pub to: CellHealth,
    /// What drove it.
    pub cause: HealthCause,
}

/// Verdict of [`CellSupervisor::on_failure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartDecision {
    /// Restore from a snapshot and retry (`attempt` counts from 1).
    Restart {
        /// Which restart this is (1-based, monotone per cell).
        attempt: u32,
    },
    /// Budget exhausted (or already quarantined): park on PF forever.
    Quarantine,
}

/// Where a restart's state came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartSource {
    /// The latest on-disk checkpoint loaded and validated cleanly.
    DiskCheckpoint,
    /// Disk was absent/torn; the last in-memory known-good snapshot.
    MemorySnapshot,
    /// No snapshot survived; the cell restarted from scratch.
    Fresh,
}

/// The pure per-cell health state machine. Holds no I/O and no
/// references — the fleet loop feeds it watchdog evidence and obeys
/// its decisions, which is what makes it property-testable in
/// isolation.
#[derive(Debug, Clone)]
pub struct CellSupervisor {
    health: CellHealth,
    restarts_used: u32,
    max_restarts: u32,
    silent_steps: u32,
    stall_threshold_steps: u32,
    transitions: Vec<HealthTransition>,
}

impl CellSupervisor {
    /// A healthy supervisor with the config's retry budget and
    /// watchdog threshold.
    pub fn new(config: &SupervisorConfig) -> Self {
        CellSupervisor {
            health: CellHealth::Healthy,
            restarts_used: 0,
            max_restarts: config.max_restarts,
            silent_steps: 0,
            stall_threshold_steps: config.stall_threshold_steps,
            transitions: Vec::new(),
        }
    }

    /// Current health.
    pub fn health(&self) -> CellHealth {
        self.health
    }

    /// Restarts consumed so far (monotone within a run).
    pub fn restarts_used(&self) -> u32 {
        self.restarts_used
    }

    /// All recorded transitions, in order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// Consecutive silent steps currently accumulated toward the
    /// stall watchdog (persisted in resume sidecars).
    pub(crate) fn silent_steps(&self) -> u32 {
        self.silent_steps
    }

    fn transition(&mut self, at_subframe: u64, to: CellHealth, cause: HealthCause) {
        self.transitions.push(HealthTransition {
            at_subframe,
            from: self.health,
            to,
            cause,
        });
        self.health = to;
    }

    /// Feed the cell's breaker position: toggles Healthy ↔ Degraded.
    /// Ignored while Restarting or Quarantined — those states outrank
    /// breaker telemetry.
    pub fn note_breaker(&mut self, at_subframe: u64, open: bool) {
        match (self.health, open) {
            (CellHealth::Healthy, true) => {
                self.transition(at_subframe, CellHealth::Degraded, HealthCause::BreakerOpen);
            }
            (CellHealth::Degraded, false) => {
                self.transition(
                    at_subframe,
                    CellHealth::Healthy,
                    HealthCause::BreakerRecovered,
                );
            }
            _ => {}
        }
    }

    /// Feed one step's watchdog evidence. `heartbeats` is the step's
    /// beat count; `hard_stalled` means the step ran inference at or
    /// beyond the stall-factor limit. Returns the failure the fleet
    /// loop must act on, if any.
    pub fn note_step(
        &mut self,
        _at_subframe: u64,
        heartbeats: u64,
        hard_stalled: bool,
    ) -> Option<FailureKind> {
        if hard_stalled {
            self.silent_steps = 0;
            return Some(FailureKind::Stall);
        }
        if heartbeats == 0 {
            self.silent_steps += 1;
            if self.silent_steps >= self.stall_threshold_steps {
                self.silent_steps = 0;
                return Some(FailureKind::Stall);
            }
        } else {
            self.silent_steps = 0;
        }
        None
    }

    /// Decide what to do about a failure. Quarantined is absorbing;
    /// otherwise the retry budget either grants another restart or
    /// quarantines the cell.
    pub fn on_failure(&mut self, at_subframe: u64, kind: FailureKind) -> RestartDecision {
        if self.health == CellHealth::Quarantined {
            return RestartDecision::Quarantine;
        }
        if self.restarts_used >= self.max_restarts {
            self.transition(
                at_subframe,
                CellHealth::Quarantined,
                HealthCause::RetryBudgetExhausted,
            );
            return RestartDecision::Quarantine;
        }
        self.restarts_used += 1;
        self.silent_steps = 0;
        self.transition(at_subframe, CellHealth::Restarting, kind.cause());
        RestartDecision::Restart {
            attempt: self.restarts_used,
        }
    }

    /// The restored cell's backoff elapsed: Restarting → Healthy.
    pub fn restart_complete(&mut self, at_subframe: u64) {
        if self.health == CellHealth::Restarting {
            self.transition(
                at_subframe,
                CellHealth::Healthy,
                HealthCause::RestartComplete,
            );
        }
    }

    /// Reinstall persisted machine state (sidecar resume). The retry
    /// budget and watchdog threshold stay as configured.
    pub fn restore_state(
        &mut self,
        health: CellHealth,
        restarts_used: u32,
        silent_steps: u32,
        transitions: Vec<HealthTransition>,
    ) {
        self.health = health;
        self.restarts_used = restarts_used;
        self.silent_steps = silent_steps;
        self.transitions = transitions;
    }
}

/// Restart backoff tuning, clocked in fleet rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartBackoffConfig {
    /// Rounds idled after the first restart.
    pub base_rounds: u64,
    /// Backoff ceiling, in rounds.
    pub max_rounds: u64,
    /// Jitter as a fraction of the backoff (the breaker's formula:
    /// actual wait is `backoff * (1 ± jitter_frac)`).
    pub jitter_frac: f64,
}

impl Default for RestartBackoffConfig {
    fn default() -> Self {
        RestartBackoffConfig {
            base_rounds: 2,
            max_rounds: 16,
            jitter_frac: 0.1,
        }
    }
}

impl RestartBackoffConfig {
    /// Reject configurations that would wedge the restart schedule.
    pub fn validate(&self) -> Result<(), BluError> {
        if self.base_rounds == 0 {
            return Err(BluError::InvalidConfig(
                "restart backoff base_rounds must be > 0".into(),
            ));
        }
        if self.max_rounds < self.base_rounds {
            return Err(BluError::InvalidConfig(
                "restart backoff max_rounds must be >= base_rounds".into(),
            ));
        }
        if !self.jitter_frac.is_finite() || !(0.0..1.0).contains(&self.jitter_frac) {
            return Err(BluError::InvalidConfig(
                "restart backoff jitter_frac must be finite in [0, 1)".into(),
            ));
        }
        Ok(())
    }
}

/// Capped exponential backoff with deterministic jitter — the circuit
/// breaker's escalation formula, re-clocked in fleet rounds and fed
/// by a per-cell derived RNG stream. Crate-visible so the `blu serve`
/// daemon's restart ladder escalates identically to the batch
/// supervisor's.
#[derive(Debug, Clone)]
pub(crate) struct RestartBackoff {
    config: RestartBackoffConfig,
    rng: DetRng,
    attempts: u32,
}

impl RestartBackoff {
    pub(crate) fn new(config: RestartBackoffConfig, rng: DetRng) -> Self {
        RestartBackoff {
            config,
            rng,
            attempts: 0,
        }
    }

    /// Rebuild a backoff that has already granted `attempts` waits:
    /// replaying the draws keeps the jitter stream bit-identical
    /// across kill/resume.
    pub(crate) fn replayed(config: RestartBackoffConfig, rng: DetRng, attempts: u32) -> Self {
        let mut b = RestartBackoff::new(config, rng);
        for _ in 0..attempts {
            b.next_wait_rounds();
        }
        b
    }

    pub(crate) fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Rounds to idle before the next step attempt. Mirrors
    /// [`CircuitBreaker`](crate::runtime::breaker::CircuitBreaker):
    /// `base * 2^(attempts-1)`, saturating, capped, ±jitter, min 1.
    pub(crate) fn next_wait_rounds(&mut self) -> u64 {
        self.attempts = self.attempts.saturating_add(1);
        let exp = (self.attempts - 1).min(32);
        let backoff = self
            .config
            .base_rounds
            .saturating_mul(1u64 << exp)
            .min(self.config.max_rounds);
        let factor = 1.0 + self.config.jitter_frac * (2.0 * self.rng.f64() - 1.0);
        ((backoff as f64 * factor) as u64).max(1)
    }
}

/// Fleet-wide admission/shedding policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SheddingPolicy {
    /// Shed cells while fleet pressure exceeds this.
    pub high_watermark: f64,
    /// Re-admit (one cell per round) once pressure is at or below
    /// this.
    pub low_watermark: f64,
    /// Per-cell priorities (higher = more important = shed last,
    /// re-admitted first). Empty = all equal; otherwise must have one
    /// entry per cell.
    pub priorities: Vec<u32>,
}

impl SheddingPolicy {
    fn priority(&self, cell: usize) -> u32 {
        self.priorities.get(cell).copied().unwrap_or(0)
    }

    /// Reject watermarks that could never admit or never shed.
    pub fn validate(&self, n_cells: usize) -> Result<(), BluError> {
        if !self.high_watermark.is_finite()
            || !self.low_watermark.is_finite()
            || self.high_watermark <= 0.0
            || self.low_watermark < 0.0
        {
            return Err(BluError::InvalidConfig(
                "shedding watermarks must be finite and positive".into(),
            ));
        }
        if self.low_watermark > self.high_watermark {
            return Err(BluError::InvalidConfig(
                "shedding low_watermark must not exceed high_watermark".into(),
            ));
        }
        if !self.priorities.is_empty() && self.priorities.len() != n_cells {
            return Err(BluError::InvalidConfig(format!(
                "shedding priorities has {} entries for {} cells",
                self.priorities.len(),
                n_cells
            )));
        }
        Ok(())
    }
}

/// What happened to a shed/readmitted cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedAction {
    /// Demoted to PF fallback under pressure.
    Shed,
    /// Re-admitted to normal stepping.
    Readmit,
}

/// One admission-control decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedEvent {
    /// Fleet round of the decision.
    pub round: u64,
    /// Cell index.
    pub cell: usize,
    /// Shed or readmit.
    pub action: ShedAction,
    /// Fleet pressure right after the decision took effect.
    pub pressure: f64,
}

/// Supervision tuning.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Restarts granted per cell before quarantine.
    pub max_restarts: u32,
    /// Consecutive zero-heartbeat steps that count as a stall.
    pub stall_threshold_steps: u32,
    /// Scripted inference stall factor at which a measuring step is
    /// treated as hung (hard stall) and failed immediately.
    pub stall_factor_limit: u32,
    /// Post-restore idle schedule.
    pub backoff: RestartBackoffConfig,
    /// Optional admission control (None = never shed).
    pub shedding: Option<SheddingPolicy>,
    /// Stop gracefully after this many rounds, persisting all state
    /// (None = run to completion). The kill half of kill/resume.
    pub max_rounds: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 3,
            stall_threshold_steps: 6,
            stall_factor_limit: 8,
            backoff: RestartBackoffConfig::default(),
            shedding: None,
            max_rounds: None,
        }
    }
}

impl SupervisorConfig {
    /// Up-front validation (watchdog, backoff, shedding).
    pub fn validate(&self, n_cells: usize) -> Result<(), BluError> {
        if self.stall_threshold_steps == 0 {
            return Err(BluError::InvalidConfig(
                "supervisor stall_threshold_steps must be > 0".into(),
            ));
        }
        if self.stall_factor_limit < 2 {
            return Err(BluError::InvalidConfig(
                "supervisor stall_factor_limit must be >= 2 (1 is healthy)".into(),
            ));
        }
        self.backoff.validate()?;
        if let Some(shed) = &self.shedding {
            shed.validate(n_cells)?;
        }
        Ok(())
    }
}

/// Hooks into the supervised fleet loop — the chaos harness's seam
/// for tearing checkpoints and auditing transitions. All methods
/// default to no-ops and run on the sequential coordinator, never
/// inside the parallel step.
pub trait SupervisorHook {
    /// A cell checkpoint (and its sidecar) was just persisted.
    fn after_checkpoint_save(&mut self, _cell: usize, _path: &Path, _round: u64) {}

    /// A cell recorded a health transition.
    fn on_transition(&mut self, _cell: usize, _transition: &HealthTransition) {}
}

/// The do-nothing hook.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHook;

impl SupervisorHook for NullHook {}

/// Per-cell health outcome of a supervised run.
#[derive(Debug, Clone)]
pub struct CellHealthReport {
    /// Health at the end of the run.
    pub final_health: CellHealth,
    /// Restarts consumed.
    pub restarts: u32,
    /// Where each restore's state came from, in order (includes the
    /// consistency restore performed on quarantine entry).
    pub restart_sources: Vec<RestartSource>,
    /// Every health transition, in order.
    pub transitions: Vec<HealthTransition>,
    /// Rounds this cell spent shed to PF fallback.
    pub shed_rounds: u64,
    /// Panics the supervisor caught escaping this cell's steps.
    pub crashes_observed: u64,
    /// Message of the last caught panic or step error, if any
    /// (already bounded by [`panic_message`]).
    pub last_error: Option<String>,
}

/// Fleet-level outcome of a supervised run.
#[derive(Debug, Clone)]
pub struct FleetHealthReport {
    /// Per-cell health, in input order.
    pub cells: Vec<CellHealthReport>,
    /// Every admission-control decision, in order.
    pub shed_events: Vec<ShedEvent>,
    /// Rounds executed.
    pub rounds: u64,
    /// Largest fleet pressure observed (0 when shedding is off).
    pub peak_pressure: f64,
    /// Whether every cell ran its trace to completion (false only
    /// under [`SupervisorConfig::max_rounds`]).
    pub completed: bool,
}

impl FleetHealthReport {
    /// Cells that ended quarantined.
    pub fn quarantined(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.final_health == CellHealth::Quarantined)
            .count()
    }

    /// Total restarts across the fleet.
    pub fn total_restarts(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.restarts)).sum()
    }
}

/// Everything a supervised fleet run produces.
#[derive(Debug, Clone)]
pub struct SupervisedFleetOutcome {
    /// Per-cell robust reports, in input order. Always present: a
    /// supervised cell that cannot be healed is quarantined and
    /// reported, never dropped.
    pub reports: Vec<RobustRunReport>,
    /// The fleet health ledger.
    pub health: FleetHealthReport,
}

/// Supervisor state persisted next to each cell checkpoint
/// (`cell-<i>.sup.json`), so kill/resume restores health, retry
/// budget and crash-injection progress along with the snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SupervisorSidecar {
    version: u32,
    health: CellHealth,
    restarts_used: u32,
    silent_steps: u32,
    crashes_fired: u64,
    crashes_observed: u64,
    backoff_attempts: u32,
    backoff_rounds_left: u64,
    shed: bool,
    shed_rounds: u64,
    transitions: Vec<HealthTransition>,
    restart_sources: Vec<RestartSource>,
    last_error: Option<String>,
}

/// Result of one cell's parallel step, settled sequentially.
enum StepOutcome {
    /// Nothing ran (finished, or idling through a backoff).
    Idle,
    /// The step ran to a verdict.
    Progress {
        more: bool,
        heartbeats: u64,
        hard_stalled: bool,
    },
    /// A panic escaped the step and was caught.
    Panicked(String),
    /// The step returned a typed error.
    Failed(String),
}

struct SupCell<'a> {
    cell: usize,
    capture: &'a FaultyCapture,
    config: &'a RobustConfig,
    driver: RobustDriver<'a>,
    sup: CellSupervisor,
    backoff: RestartBackoff,
    backoff_rounds_left: u64,
    crash_sfs: Vec<u64>,
    crashes_fired: usize,
    crashes_observed: u64,
    shed: bool,
    shed_rounds: u64,
    restart_sources: Vec<RestartSource>,
    last_good: Option<RobustSnapshot>,
    last_error: Option<String>,
    outcome: StepOutcome,
    finished: bool,
    final_saved: bool,
    ckpt_path: Option<PathBuf>,
    sidecar_path: Option<PathBuf>,
    every_subframes: u64,
    last_saved: u64,
    emitted_transitions: usize,
    stall_factor_limit: u32,
}

impl<'a> SupCell<'a> {
    fn create(
        cell: usize,
        capture: &'a FaultyCapture,
        config: &'a RobustConfig,
        sup_cfg: &SupervisorConfig,
    ) -> Result<Self, BluError> {
        let ckpt = config.checkpoint.as_ref();
        let ckpt_path = ckpt.map(|p| p.dir.join(format!("cell-{cell}.json")));
        let sidecar_path = ckpt.map(|p| p.dir.join(format!("cell-{cell}.sup.json")));
        let every_subframes = ckpt.map(|p| p.every_subframes).unwrap_or(0);
        let resume = ckpt.map(|p| p.resume).unwrap_or(false);
        let crash_sfs = capture.script.crash_subframes();
        let backoff_rng =
            DetRng::seed_from_u64(config.seed).derive_indexed("restart-backoff", cell as u64);

        let mut c = SupCell {
            cell,
            capture,
            config,
            driver: RobustDriver::new(capture, config)?,
            sup: CellSupervisor::new(sup_cfg),
            backoff: RestartBackoff::new(sup_cfg.backoff, backoff_rng.clone()),
            backoff_rounds_left: 0,
            crash_sfs,
            crashes_fired: 0,
            crashes_observed: 0,
            shed: false,
            shed_rounds: 0,
            restart_sources: Vec::new(),
            last_good: None,
            last_error: None,
            outcome: StepOutcome::Idle,
            finished: false,
            final_saved: false,
            ckpt_path,
            sidecar_path,
            every_subframes,
            last_saved: 0,
            emitted_transitions: 0,
            stall_factor_limit: sup_cfg.stall_factor_limit,
        };

        if resume {
            if let Some(path) = c.ckpt_path.clone() {
                if path.exists() {
                    let snap = load_robust_checkpoint(&path)?;
                    c.driver = RobustDriver::resume(capture, config, snap)?;
                    c.last_saved = c.driver.snap.cursor;
                    match c.load_sidecar()? {
                        Some(side) => {
                            c.sup.restore_state(
                                side.health,
                                side.restarts_used,
                                side.silent_steps,
                                side.transitions,
                            );
                            c.backoff = RestartBackoff::replayed(
                                sup_cfg.backoff,
                                backoff_rng,
                                side.backoff_attempts,
                            );
                            c.backoff_rounds_left = side.backoff_rounds_left;
                            c.crashes_fired =
                                usize::try_from(side.crashes_fired).unwrap_or(c.crash_sfs.len());
                            c.crashes_observed = side.crashes_observed;
                            c.shed = side.shed;
                            c.shed_rounds = side.shed_rounds;
                            c.restart_sources = side.restart_sources;
                            c.last_error = side.last_error;
                            c.emitted_transitions = c.sup.transitions().len();
                        }
                        None => {
                            // Snapshot without a sidecar (e.g. a run
                            // checkpointed by the unsupervised loop):
                            // crash events strictly behind the cursor
                            // must not refire on replay.
                            let cursor = c.driver.snap.cursor;
                            c.crashes_fired = c.crash_sfs.iter().filter(|s| **s < cursor).count();
                        }
                    }
                }
            }
        }
        Ok(c)
    }

    fn load_sidecar(&self) -> Result<Option<SupervisorSidecar>, BluError> {
        let Some(path) = &self.sidecar_path else {
            return Ok(None);
        };
        if !path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(path)
            .map_err(|e| BluError::Checkpoint(format!("reading {}: {e}", path.display())))?;
        let side: SupervisorSidecar = serde_json::from_str(&text)
            .map_err(|e| BluError::Checkpoint(format!("decoding {}: {e}", path.display())))?;
        if side.version != SUPERVISOR_SIDECAR_VERSION {
            return Err(BluError::Checkpoint(format!(
                "supervisor sidecar {} has version {}, this build requires {}",
                path.display(),
                side.version,
                SUPERVISOR_SIDECAR_VERSION
            )));
        }
        Ok(Some(side))
    }

    fn save_sidecar(&self) -> Result<(), BluError> {
        let Some(path) = &self.sidecar_path else {
            return Ok(());
        };
        let side = SupervisorSidecar {
            version: SUPERVISOR_SIDECAR_VERSION,
            health: self.sup.health(),
            restarts_used: self.sup.restarts_used(),
            silent_steps: self.sup.silent_steps,
            crashes_fired: self.crashes_fired as u64,
            crashes_observed: self.crashes_observed,
            backoff_attempts: self.backoff.attempts(),
            backoff_rounds_left: self.backoff_rounds_left,
            shed: self.shed,
            shed_rounds: self.shed_rounds,
            transitions: self.sup.transitions().to_vec(),
            restart_sources: self.restart_sources.clone(),
            last_error: self.last_error.clone(),
        };
        let json = serde_json::to_string_pretty(&side)
            .map_err(|e| BluError::Checkpoint(format!("serializing {}: {e}", path.display())))?;
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write;
            let mut f = fs::File::create(&tmp)
                .map_err(|e| BluError::Checkpoint(format!("creating {}: {e}", tmp.display())))?;
            f.write_all(json.as_bytes())
                .map_err(|e| BluError::Checkpoint(format!("writing {}: {e}", tmp.display())))?;
            f.sync_all()
                .map_err(|e| BluError::Checkpoint(format!("syncing {}: {e}", tmp.display())))?;
        }
        fs::rename(&tmp, path)
            .map_err(|e| BluError::Checkpoint(format!("renaming {}: {e}", path.display())))?;
        Ok(())
    }

    /// Sequential pre-round bookkeeping: tick the backoff clock and
    /// complete a pending restart when it elapses.
    fn pre_round(&mut self) {
        if self.finished || self.backoff_rounds_left == 0 {
            return;
        }
        self.backoff_rounds_left -= 1;
        if self.backoff_rounds_left == 0 {
            self.sup.restart_complete(self.driver.snap.cursor);
        }
    }

    /// This cell's contribution to fleet pressure (see module docs).
    fn current_load(&self) -> f64 {
        if self.finished
            || self.shed
            || self.backoff_rounds_left > 0
            || self.sup.health() == CellHealth::Quarantined
            || self.driver.snap.done
        {
            return 0.0;
        }
        match self.driver.snap.state {
            OrchestratorState::Measuring
            | OrchestratorState::Remeasuring
            | OrchestratorState::Drifting => f64::from(
                self.capture
                    .script
                    .runtime_state_at(self.driver.snap.cursor)
                    .stall_factor,
            ),
            _ => 0.0,
        }
    }

    /// The parallel half of a round: step (or idle) and stash the
    /// outcome for the sequential coordinator. Every panic is caught
    /// here — inside the fleet closure — so a crashing cell can never
    /// abort the shard join.
    fn parallel_step(&mut self) {
        self.outcome = self.compute_step();
    }

    fn compute_step(&mut self) -> StepOutcome {
        if self.finished || self.backoff_rounds_left > 0 {
            return StepOutcome::Idle;
        }
        if self.sup.health() == CellHealth::Quarantined || self.shed {
            // PF-only drain: no inference, guaranteed cursor progress.
            return match catch_unwind(AssertUnwindSafe(|| self.driver.step_shed())) {
                Ok(Ok(more)) => StepOutcome::Progress {
                    more,
                    heartbeats: 1,
                    hard_stalled: false,
                },
                Ok(Err(e)) => StepOutcome::Failed(e.to_string()),
                Err(p) => StepOutcome::Panicked(panic_message(p.as_ref())),
            };
        }
        let cursor = self.driver.snap.cursor;
        // Scripted cell crashes are one-shot: marked fired *before*
        // the panic, so a restore-and-replay does not refire them.
        let inject = self.crashes_fired < self.crash_sfs.len()
            && cursor >= self.crash_sfs[self.crashes_fired];
        if inject {
            self.crashes_fired += 1;
        }
        let measuring = matches!(
            self.driver.snap.state,
            OrchestratorState::Measuring | OrchestratorState::Remeasuring
        );
        let hard_stalled = measuring
            && self.capture.script.runtime_state_at(cursor).stall_factor >= self.stall_factor_limit;
        // The pre-step state is the in-memory restore point: a restart
        // must redo the failed attempt (a panic leaves the snapshot
        // torn; a hard-stalled step must not keep its result), never
        // resume past it.
        self.last_good = Some(self.driver.snap.clone());
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected cell crash at subframe {cursor}");
            }
            let mut beats = HeartbeatCounter::default();
            self.driver
                .step_with(&mut beats)
                .map(|more| (more, beats.beats()))
        }));
        match result {
            Ok(Ok((more, heartbeats))) => StepOutcome::Progress {
                more,
                heartbeats,
                hard_stalled,
            },
            Ok(Err(e)) => StepOutcome::Failed(e.to_string()),
            Err(p) => StepOutcome::Panicked(panic_message(p.as_ref())),
        }
    }

    /// The sequential half of a round: drive the health machine from
    /// the stashed outcome and perform any restore it decides on.
    fn settle(&mut self) {
        match std::mem::replace(&mut self.outcome, StepOutcome::Idle) {
            StepOutcome::Idle => {}
            StepOutcome::Progress {
                more,
                heartbeats,
                hard_stalled,
            } => {
                if !more {
                    self.finished = true;
                } else if self.sup.health() != CellHealth::Quarantined && !self.shed {
                    let cursor = self.driver.snap.cursor;
                    let open = self.driver.snap.breaker.state() == BreakerState::Open;
                    self.sup.note_breaker(cursor, open);
                    if let Some(kind) = self.sup.note_step(cursor, heartbeats, hard_stalled) {
                        self.fail(kind);
                    }
                }
            }
            StepOutcome::Panicked(msg) => {
                self.crashes_observed += 1;
                self.last_error = Some(msg);
                self.fail(FailureKind::Panic);
            }
            StepOutcome::Failed(msg) => {
                self.last_error = Some(msg);
                self.fail(FailureKind::Error);
            }
        }
    }

    fn fail(&mut self, kind: FailureKind) {
        let was_quarantined = self.sup.health() == CellHealth::Quarantined;
        let cursor = self.driver.snap.cursor;
        match self.sup.on_failure(cursor, kind) {
            RestartDecision::Restart { .. } => {
                let source = self.restore();
                self.restart_sources.push(source);
                self.backoff_rounds_left = self.backoff.next_wait_rounds();
            }
            RestartDecision::Quarantine => {
                if was_quarantined {
                    // A quarantined cell failing its PF drain has no
                    // further fallback: freeze it rather than livelock.
                    self.finished = true;
                } else {
                    // Entering quarantine: restore once so the PF tail
                    // runs from a consistent (not mid-panic) snapshot.
                    let source = self.restore();
                    self.restart_sources.push(source);
                }
            }
        }
    }

    /// Disk checkpoint first, then the in-memory known-good snapshot,
    /// then from scratch. A torn or version-skewed disk checkpoint
    /// simply falls through — restore never propagates an error.
    fn restore(&mut self) -> RestartSource {
        if let Some(path) = &self.ckpt_path {
            if let Ok(snap) = load_robust_checkpoint(path) {
                if let Ok(d) = RobustDriver::resume(self.capture, self.config, snap) {
                    self.driver = d;
                    return RestartSource::DiskCheckpoint;
                }
            }
        }
        if let Some(snap) = self.last_good.clone() {
            if let Ok(d) = RobustDriver::resume(self.capture, self.config, snap) {
                self.driver = d;
                return RestartSource::MemorySnapshot;
            }
        }
        match RobustDriver::new(self.capture, self.config) {
            Ok(d) => self.driver = d,
            // Creation was validated at fleet start; if it fails now
            // the cell is unservable — freeze it with what it has.
            Err(_) => self.finished = true,
        }
        RestartSource::Fresh
    }

    fn flush_transitions(&mut self, hook: &mut dyn SupervisorHook) {
        let transitions = self.sup.transitions();
        for t in &transitions[self.emitted_transitions..] {
            hook.on_transition(self.cell, t);
        }
        self.emitted_transitions = transitions.len();
    }

    fn persist(
        &mut self,
        round: u64,
        force: bool,
        hook: &mut dyn SupervisorHook,
    ) -> Result<(), BluError> {
        let Some(path) = self.ckpt_path.clone() else {
            return Ok(());
        };
        if self.finished && self.final_saved {
            return Ok(());
        }
        // Grid semantics, not delta-since-last-save: a save fires
        // when the cursor crosses a multiple of `every_subframes`, so
        // the set of on-disk restore points is a pure function of the
        // step sequence — a killed-and-resumed fleet re-creates the
        // exact checkpoints (and therefore the exact restore cursors)
        // of an uninterrupted one.
        let interval_due = self.every_subframes > 0
            && self.driver.snap.cursor / self.every_subframes
                != self.last_saved / self.every_subframes;
        if !(interval_due || self.finished || force) {
            return Ok(());
        }
        save_robust_checkpoint(&path, &self.driver.snap)?;
        self.last_saved = self.driver.snap.cursor;
        self.save_sidecar()?;
        hook.after_checkpoint_save(self.cell, &path, round);
        if self.finished {
            self.final_saved = true;
        }
        Ok(())
    }

    fn into_parts(self) -> (RobustRunReport, CellHealthReport) {
        let health = CellHealthReport {
            final_health: self.sup.health(),
            restarts: self.sup.restarts_used(),
            restart_sources: self.restart_sources,
            transitions: self.sup.transitions.clone(),
            shed_rounds: self.shed_rounds,
            crashes_observed: self.crashes_observed,
            last_error: self.last_error,
        };
        (self.driver.into_report(), health)
    }
}

fn apply_shedding(
    cells: &mut [SupCell<'_>],
    policy: &SheddingPolicy,
    round: u64,
    events: &mut Vec<ShedEvent>,
    peak_pressure: &mut f64,
) {
    let loads: Vec<f64> = cells.iter().map(SupCell::current_load).collect();
    let mut pressure: f64 = loads.iter().sum();
    *peak_pressure = peak_pressure.max(pressure);
    let mut newly_shed = vec![false; cells.len()];
    // Shed: lowest priority first, highest index on ties.
    while pressure > policy.high_watermark {
        let mut pick: Option<usize> = None;
        for (i, cell) in cells.iter().enumerate() {
            if cell.shed || loads[i] <= 0.0 {
                continue;
            }
            pick = Some(match pick {
                None => i,
                Some(p) => {
                    let (pp, pi) = (policy.priority(p), policy.priority(i));
                    if pi < pp || (pi == pp && i > p) {
                        i
                    } else {
                        p
                    }
                }
            });
        }
        let Some(i) = pick else { break };
        cells[i].shed = true;
        newly_shed[i] = true;
        pressure -= loads[i];
        events.push(ShedEvent {
            round,
            cell: i,
            action: ShedAction::Shed,
            pressure,
        });
    }
    // Readmit one per round: highest priority first, lowest index on
    // ties. Cells shed *this* round are not candidates — a
    // shed-and-readmit in one round would be admission-control noise.
    if pressure <= policy.low_watermark {
        let mut pick: Option<usize> = None;
        for (i, cell) in cells.iter().enumerate() {
            if !cell.shed || newly_shed[i] || cell.finished {
                continue;
            }
            pick = Some(match pick {
                None => i,
                Some(p) => {
                    let (pp, pi) = (policy.priority(p), policy.priority(i));
                    if pi > pp || (pi == pp && i < p) {
                        i
                    } else {
                        p
                    }
                }
            });
        }
        if let Some(i) = pick {
            cells[i].shed = false;
            events.push(ShedEvent {
                round,
                cell: i,
                action: ShedAction::Readmit,
                pressure,
            });
        }
    }
}

/// Run a supervised fleet with the default (no-op) hook.
///
/// See [`run_supervised_fleet_with_hook`].
pub fn run_supervised_fleet(
    captures: &[FaultyCapture],
    config: &RobustConfig,
    sup: &SupervisorConfig,
) -> Result<SupervisedFleetOutcome, BluError> {
    run_supervised_fleet_with_hook(captures, config, sup, &mut NullHook)
}

/// Run the robust loop over a fleet of captures under supervision:
/// panics, stalls and step errors are healed by restart-from-snapshot
/// under a capped backoff budget, unhealable cells are quarantined to
/// static PF, and (with a [`SheddingPolicy`]) overload sheds
/// lowest-priority cells until pressure drops.
///
/// The fleet advances in rounds: every live cell executes one
/// state-machine step in parallel across the
/// [`FleetEngine`](crate::engine::FleetEngine) shards, then a
/// sequential coordinator (in cell order, so the run is deterministic
/// at any parallelism level) settles health transitions, restores
/// failed cells and persists checkpoints with their supervisor
/// sidecars. Unlike [`crate::robust::run_robust_fleet`], the returned
/// reports are always complete — a cell that cannot be healed is
/// quarantined and keeps serving PF until its trace ends.
///
/// This function never panics on cell failures (every step runs
/// inside `catch_unwind`); it returns `Err` only for invalid
/// configuration, unusable captures, or checkpoint I/O failures.
pub fn run_supervised_fleet_with_hook(
    captures: &[FaultyCapture],
    config: &RobustConfig,
    sup: &SupervisorConfig,
    hook: &mut dyn SupervisorHook,
) -> Result<SupervisedFleetOutcome, BluError> {
    sup.validate(captures.len())?;
    config.validate()?;
    let mut cells: Vec<SupCell<'_>> = captures
        .iter()
        .enumerate()
        .map(|(i, cap)| SupCell::create(i, cap, config, sup))
        .collect::<Result<_, _>>()?;

    let mut shed_events: Vec<ShedEvent> = Vec::new();
    let mut peak_pressure = 0.0f64;
    let mut round: u64 = 0;
    loop {
        if cells.iter().all(|c| c.finished) {
            break;
        }
        if let Some(max) = sup.max_rounds {
            if round >= max {
                break;
            }
        }
        for cell in cells.iter_mut() {
            cell.pre_round();
        }
        if let Some(policy) = &sup.shedding {
            apply_shedding(
                &mut cells,
                policy,
                round,
                &mut shed_events,
                &mut peak_pressure,
            );
        }
        for cell in cells.iter_mut() {
            if cell.shed && !cell.finished {
                cell.shed_rounds += 1;
            }
        }
        let refs: Vec<&mut SupCell<'_>> = cells.iter_mut().collect();
        FleetEngine::run(refs, || (), |_, cell| cell.parallel_step());
        for cell in cells.iter_mut() {
            cell.settle();
            cell.flush_transitions(hook);
            cell.persist(round, false, hook)?;
        }
        round += 1;
    }
    let completed = cells.iter().all(|c| c.finished);
    // Graceful stop (max_rounds) persists everything so a later run
    // resumes bit-identically; completed cells already saved.
    for cell in cells.iter_mut() {
        if !cell.finished {
            cell.persist(round, true, hook)?;
        }
    }

    let mut reports = Vec::with_capacity(cells.len());
    let mut health_cells = Vec::with_capacity(cells.len());
    for cell in cells {
        let (report, health) = cell.into_parts();
        reports.push(report);
        health_cells.push(health);
    }
    Ok(SupervisedFleetOutcome {
        reports,
        health: FleetHealthReport {
            cells: health_cells,
            shed_events,
            rounds: round,
            peak_pressure,
            completed,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::BluConfig;
    use crate::robust::run_robust_fleet;
    use blu_phy::cell::CellConfig;
    use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
    use blu_sim::time::Micros;
    use blu_traces::capture::CaptureConfig;
    use blu_traces::faults::capture_with_faults;

    fn capture(script: FaultScript, secs: u64, seed: u64) -> FaultyCapture {
        capture_with_faults(
            &CaptureConfig {
                duration: Micros::from_secs(secs),
                q_range: (0.25, 0.55),
                ..CaptureConfig::testbed_default()
            },
            &script,
            seed,
        )
        .unwrap()
    }

    fn quick_config() -> RobustConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let emu = crate::emulator::EmulationConfig::new(cell);
        RobustConfig::new(BluConfig::new(emu))
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("blu-sup-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Reports compared field by field, excluding wall-clock timing.
    fn assert_reports_identical(a: &RobustRunReport, b: &RobustRunReport) {
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.measurement_subframes, b.measurement_subframes);
        assert_eq!(a.n_remeasurements, b.n_remeasurements);
        assert_eq!(a.speculative_txops, b.speculative_txops);
        assert_eq!(a.fallback_txops, b.fallback_txops);
        assert_eq!(a.final_confidence.to_bits(), b.final_confidence.to_bits());
        assert_eq!(a.peak_drift.to_bits(), b.peak_drift.to_bits());
        assert_eq!(a.breaker_transitions, b.breaker_transitions);
        assert_eq!(a.inference_panics, b.inference_panics);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.quarantined_constraints, b.quarantined_constraints);
    }

    // ---- pure state machine ----

    #[test]
    fn breaker_telemetry_toggles_healthy_degraded() {
        let mut m = CellSupervisor::new(&SupervisorConfig::default());
        m.note_breaker(10, false);
        assert_eq!(m.health(), CellHealth::Healthy);
        assert!(m.transitions().is_empty(), "no-change polls record nothing");
        m.note_breaker(20, true);
        assert_eq!(m.health(), CellHealth::Degraded);
        m.note_breaker(30, true);
        assert_eq!(m.transitions().len(), 1, "repeated open is not re-recorded");
        m.note_breaker(40, false);
        assert_eq!(m.health(), CellHealth::Healthy);
        assert_eq!(
            m.transitions()
                .iter()
                .map(|t| (t.from, t.to, t.cause))
                .collect::<Vec<_>>(),
            vec![
                (
                    CellHealth::Healthy,
                    CellHealth::Degraded,
                    HealthCause::BreakerOpen
                ),
                (
                    CellHealth::Degraded,
                    CellHealth::Healthy,
                    HealthCause::BreakerRecovered
                ),
            ]
        );
    }

    #[test]
    fn watchdog_fires_on_silence_and_hard_stall() {
        let cfg = SupervisorConfig {
            stall_threshold_steps: 3,
            ..Default::default()
        };
        let mut m = CellSupervisor::new(&cfg);
        assert_eq!(m.note_step(0, 0, false), None);
        assert_eq!(m.note_step(1, 5, false), None, "beats reset the counter");
        assert_eq!(m.note_step(2, 0, false), None);
        assert_eq!(m.note_step(3, 0, false), None);
        assert_eq!(m.note_step(4, 0, false), Some(FailureKind::Stall));
        // A hard stall fails immediately, regardless of beats.
        assert_eq!(m.note_step(5, 100, true), Some(FailureKind::Stall));
    }

    #[test]
    fn retry_budget_is_monotone_and_quarantine_absorbing() {
        let cfg = SupervisorConfig {
            max_restarts: 2,
            ..Default::default()
        };
        let mut m = CellSupervisor::new(&cfg);
        assert_eq!(
            m.on_failure(100, FailureKind::Panic),
            RestartDecision::Restart { attempt: 1 }
        );
        assert_eq!(m.health(), CellHealth::Restarting);
        m.restart_complete(150);
        assert_eq!(m.health(), CellHealth::Healthy);
        assert_eq!(
            m.on_failure(200, FailureKind::Stall),
            RestartDecision::Restart { attempt: 2 }
        );
        assert_eq!(
            m.on_failure(300, FailureKind::Error),
            RestartDecision::Quarantine
        );
        assert_eq!(m.health(), CellHealth::Quarantined);
        assert_eq!(m.restarts_used(), 2);
        // Absorbing: further failures change nothing, restart_complete
        // cannot resurrect.
        let n = m.transitions().len();
        assert_eq!(
            m.on_failure(400, FailureKind::Panic),
            RestartDecision::Quarantine
        );
        m.restart_complete(500);
        assert_eq!(m.health(), CellHealth::Quarantined);
        assert_eq!(m.transitions().len(), n);
    }

    // ---- backoff ----

    #[test]
    fn backoff_escalates_caps_and_replays_deterministically() {
        let cfg = RestartBackoffConfig::default();
        let rng = DetRng::seed_from_u64(9).derive_indexed("restart-backoff", 0);
        let mut a = RestartBackoff::new(cfg, rng.clone());
        let waits: Vec<u64> = (0..8).map(|_| a.next_wait_rounds()).collect();
        assert!(waits.iter().all(|w| *w >= 1));
        let cap = (cfg.max_rounds as f64 * (1.0 + cfg.jitter_frac)) as u64 + 1;
        assert!(waits.iter().all(|w| *w <= cap), "{waits:?} exceeds cap");
        assert!(
            waits[3] > waits[0],
            "backoff must escalate: {:?}",
            &waits[..4]
        );
        // Replaying 5 attempts reproduces the tail of the stream.
        let mut b = RestartBackoff::replayed(cfg, rng, 5);
        assert_eq!(b.next_wait_rounds(), waits[5]);
        assert_eq!(b.next_wait_rounds(), waits[6]);
    }

    // ---- end to end ----

    #[test]
    fn supervised_clean_fleet_matches_unsupervised() {
        let caps = vec![
            capture(FaultScript::none(), 60, 21),
            capture(FaultScript::none(), 60, 22),
        ];
        let config = quick_config();
        let golden = run_robust_fleet(&caps, &config);
        let out = run_supervised_fleet(&caps, &config, &SupervisorConfig::default()).unwrap();
        assert!(out.health.completed);
        assert_eq!(out.reports.len(), 2);
        for (got, want) in out.reports.iter().zip(&golden) {
            assert_reports_identical(got, want.as_ref().unwrap());
        }
        for cell in &out.health.cells {
            assert_eq!(cell.final_health, CellHealth::Healthy);
            assert_eq!(cell.restarts, 0);
            assert_eq!(cell.crashes_observed, 0);
            assert!(cell.transitions.is_empty());
        }
        assert!(out.health.shed_events.is_empty());
    }

    #[test]
    fn crash_restarts_from_checkpoint_bit_identically() {
        let clean = capture(FaultScript::none(), 60, 31);
        let golden = crate::robust::run_blu_robust(&clean, &quick_config()).unwrap();

        // Same trace seed, but the cell task crashes mid-run. The
        // crash is runtime-only, so the capture itself is identical.
        let crashing = capture(
            FaultScript::new(vec![FaultEvent {
                at_subframe: 30_000,
                kind: FaultKind::CellCrash,
            }]),
            60,
            31,
        );
        let dir = scratch_dir("crash");
        let mut config = quick_config();
        config.checkpoint = Some(crate::robust::CheckpointPolicy {
            dir: dir.clone(),
            every_subframes: 2_000,
            resume: false,
        });
        let out = run_supervised_fleet(
            std::slice::from_ref(&crashing),
            &config,
            &SupervisorConfig::default(),
        )
        .unwrap();
        assert!(out.health.completed);
        let health = &out.health.cells[0];
        assert_eq!(health.crashes_observed, 1);
        assert_eq!(health.restarts, 1);
        assert_eq!(health.restart_sources, vec![RestartSource::DiskCheckpoint]);
        assert_eq!(health.final_health, CellHealth::Healthy);
        assert!(health
            .last_error
            .as_deref()
            .unwrap()
            .contains("injected cell crash"));
        // Restored-and-replayed: the report is bit-identical to the
        // crash-free golden.
        assert_reports_identical(&out.reports[0], &golden);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_hard_stall_exhausts_budget_and_quarantines() {
        let stalled = capture(
            FaultScript::new(vec![FaultEvent {
                at_subframe: 0,
                kind: FaultKind::InferenceStall { factor: 10 },
            }]),
            60,
            41,
        );
        let sup = SupervisorConfig {
            max_restarts: 2,
            ..Default::default()
        };
        let out =
            run_supervised_fleet(std::slice::from_ref(&stalled), &quick_config(), &sup).unwrap();
        assert!(out.health.completed, "quarantined cells still terminate");
        let health = &out.health.cells[0];
        assert_eq!(health.final_health, CellHealth::Quarantined);
        assert_eq!(health.restarts, 2);
        assert_eq!(out.health.quarantined(), 1);
        // The PF tail served traffic: the report exists and counts
        // fallback TxOPs, with zero speculation.
        assert!(out.reports[0].fallback_txops > 0);
        assert_eq!(out.reports[0].speculative_txops, 0);
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let script = FaultScript::new(vec![FaultEvent {
            at_subframe: 30_000,
            kind: FaultKind::CellCrash,
        }]);
        let cap = capture(script, 60, 51);
        let sup = SupervisorConfig::default();

        let run = |dir: &Path, max_rounds: Option<u64>| {
            let mut config = quick_config();
            config.checkpoint = Some(crate::robust::CheckpointPolicy {
                dir: dir.to_path_buf(),
                every_subframes: 2_000,
                resume: true,
            });
            let sup = SupervisorConfig {
                max_rounds,
                ..sup.clone()
            };
            run_supervised_fleet(std::slice::from_ref(&cap), &config, &sup).unwrap()
        };

        let dir_a = scratch_dir("resume-a");
        let uninterrupted = run(&dir_a, None);
        assert!(uninterrupted.health.completed);

        // Kill after 3 rounds (mid-run), then restart the whole fleet.
        let dir_b = scratch_dir("resume-b");
        let partial = run(&dir_b, Some(3));
        assert!(!partial.health.completed);
        let resumed = run(&dir_b, None);
        assert!(resumed.health.completed);

        assert_reports_identical(&resumed.reports[0], &uninterrupted.reports[0]);
        let a = &uninterrupted.health.cells[0];
        let b = &resumed.health.cells[0];
        assert_eq!(a.final_health, b.final_health);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.restarts, b.restarts);
        assert_eq!(a.restart_sources, b.restart_sources);
        assert_eq!(a.crashes_observed, b.crashes_observed);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn overload_sheds_lowest_priority_and_readmits() {
        // Cell 1 stalls at 4x from the start: pressure 1 + 4 = 5
        // exceeds the high watermark, and priorities protect cell 0.
        // The stall stays below the hard-stall limit so the watchdog
        // does not fire — this is pure admission control.
        let caps = vec![
            capture(FaultScript::none(), 60, 61),
            capture(
                FaultScript::new(vec![FaultEvent {
                    at_subframe: 0,
                    kind: FaultKind::InferenceStall { factor: 4 },
                }]),
                60,
                62,
            ),
        ];
        let sup = SupervisorConfig {
            shedding: Some(SheddingPolicy {
                high_watermark: 3.0,
                low_watermark: 0.5,
                priorities: vec![1, 0],
            }),
            ..Default::default()
        };
        let out = run_supervised_fleet(&caps, &quick_config(), &sup).unwrap();
        assert!(out.health.completed);
        assert!(out.health.peak_pressure >= 5.0);
        let first = out.health.shed_events.first().expect("overload must shed");
        assert_eq!((first.cell, first.action), (1, ShedAction::Shed));
        assert!(out.health.cells[1].shed_rounds > 0);
        assert_eq!(
            out.health.cells[0].shed_rounds, 0,
            "high priority protected"
        );
        // Once cell 0 leaves measurement the pressure drops and the
        // shed cell is re-admitted.
        assert!(out
            .health
            .shed_events
            .iter()
            .any(|e| e.action == ShedAction::Readmit && e.cell == 1));
        // Shed rounds served PF instead of going dark.
        assert!(out.reports[1].fallback_txops > 0);
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let n = 2;
        for bad in [
            SupervisorConfig {
                stall_threshold_steps: 0,
                ..Default::default()
            },
            SupervisorConfig {
                stall_factor_limit: 1,
                ..Default::default()
            },
            SupervisorConfig {
                backoff: RestartBackoffConfig {
                    base_rounds: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
            SupervisorConfig {
                shedding: Some(SheddingPolicy {
                    high_watermark: 1.0,
                    low_watermark: 2.0,
                    priorities: vec![],
                }),
                ..Default::default()
            },
            SupervisorConfig {
                shedding: Some(SheddingPolicy {
                    high_watermark: 2.0,
                    low_watermark: 1.0,
                    priorities: vec![1],
                }),
                ..Default::default()
            },
        ] {
            assert!(bad.validate(n).is_err(), "{bad:?} should be rejected");
        }
        assert!(SupervisorConfig::default().validate(n).is_ok());
    }
}
