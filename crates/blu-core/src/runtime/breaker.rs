//! Per-cell circuit breaker for fleet inference.
//!
//! A cell whose inference keeps failing (panicking solver, poisoned
//! measurements) must not be re-probed on every probation cycle: each
//! probe burns a full re-measurement phase worth of subframes that
//! healthy cells could spend speculating. The breaker implements the
//! classic three-state machine, clocked in **subframes** (the
//! orchestrator's cursor) rather than wall time so runs stay
//! deterministic and resumable:
//!
//! ```text
//!            failure x threshold                 backoff elapsed
//!  Closed ──────────────────────────▶ Open ─────────────────────▶ HalfOpen
//!    ▲                                 ▲                             │
//!    │ success                         │ failure (backoff doubles)   │
//!    └─────────────────────────────────┴──────────────── probe ──────┘
//! ```
//!
//! * `Closed` — inference runs normally; consecutive failures are
//!   counted.
//! * `Open` — inference is skipped (the cell schedules PF fallback)
//!   until `open_until`; each trip doubles the backoff up to a cap,
//!   with seeded ±jitter so a fleet of cells tripped by one event
//!   doesn't re-probe in lockstep.
//! * `HalfOpen` — one probe is allowed through; success closes the
//!   breaker, failure re-opens it with escalated backoff.
//!
//! Every transition is recorded with its subframe for
//! `RobustRunReport`, and the whole machine (including its jitter RNG)
//! serializes into checkpoints.

use blu_sim::rng::DetRng;
use serde::{Deserialize, Serialize};

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Tripped: requests are refused until the backoff elapses.
    Open,
    /// Probing: one request is allowed through to test recovery.
    HalfOpen,
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures (in `Closed`) that trip the breaker.
    pub failure_threshold: u32,
    /// Backoff after the first trip, in subframes.
    pub base_backoff_subframes: u64,
    /// Backoff ceiling, in subframes.
    pub max_backoff_subframes: u64,
    /// Jitter as a fraction of the backoff: the actual wait is
    /// `backoff * (1 ± jitter_frac)`, drawn from the breaker's seeded
    /// RNG.
    pub jitter_frac: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 2,
            base_backoff_subframes: 2_000,
            max_backoff_subframes: 32_000,
            jitter_frac: 0.1,
        }
    }
}

impl BreakerConfig {
    /// Reject configurations that would wedge the machine.
    pub fn validate(&self) -> Result<(), crate::error::BluError> {
        use crate::error::BluError;
        if self.failure_threshold == 0 {
            return Err(BluError::InvalidConfig(
                "breaker failure_threshold must be > 0".into(),
            ));
        }
        if self.base_backoff_subframes == 0 {
            return Err(BluError::InvalidConfig(
                "breaker base_backoff_subframes must be > 0".into(),
            ));
        }
        if self.max_backoff_subframes < self.base_backoff_subframes {
            return Err(BluError::InvalidConfig(
                "breaker max_backoff_subframes must be >= base_backoff_subframes".into(),
            ));
        }
        if !self.jitter_frac.is_finite() || !(0.0..1.0).contains(&self.jitter_frac) {
            return Err(BluError::InvalidConfig(
                "breaker jitter_frac must be finite in [0, 1)".into(),
            ));
        }
        Ok(())
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerTransition {
    /// Subframe at which the transition happened.
    pub at_subframe: u64,
    /// State left.
    pub from: BreakerState,
    /// State entered.
    pub to: BreakerState,
}

/// Answer to [`CircuitBreaker::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPoll {
    /// The request may proceed (and, from `HalfOpen`, is the probe).
    Allow,
    /// The breaker is open for this many more subframes.
    Wait(u64),
}

/// The breaker itself. Clocked externally: every method takes `now`
/// in subframes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u32,
    open_until: u64,
    rng: DetRng,
    transitions: Vec<BreakerTransition>,
}

impl CircuitBreaker {
    /// A closed breaker with a seeded jitter stream.
    pub fn new(config: BreakerConfig, seed: u64) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            open_until: 0,
            rng: DetRng::seed_from_u64(seed ^ 0xB4EA_4E4B_0000_0001),
            transitions: Vec::new(),
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// All recorded transitions, in order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    fn transition(&mut self, now: u64, to: BreakerState) {
        if self.state != to {
            self.transitions.push(BreakerTransition {
                at_subframe: now,
                from: self.state,
                to,
            });
            self.state = to;
        }
    }

    /// May a request proceed at subframe `now`? Transitions
    /// `Open → HalfOpen` when the backoff has elapsed.
    pub fn poll(&mut self, now: u64) -> BreakerPoll {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => BreakerPoll::Allow,
            BreakerState::Open => {
                if now >= self.open_until {
                    self.transition(now, BreakerState::HalfOpen);
                    BreakerPoll::Allow
                } else {
                    BreakerPoll::Wait(self.open_until - now)
                }
            }
        }
    }

    /// Record a successful request: closes the breaker and resets the
    /// failure count and backoff escalation.
    pub fn record_success(&mut self, now: u64) {
        self.consecutive_failures = 0;
        self.trips = 0;
        self.transition(now, BreakerState::Closed);
    }

    /// Record a failed request. From `HalfOpen` (a failed probe) this
    /// re-opens immediately with escalated backoff; from `Closed` it
    /// trips once the threshold is reached.
    pub fn record_failure(&mut self, now: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Closed => {
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                }
            }
            // A failure while already open (e.g. replayed from a
            // checkpoint boundary) keeps the current backoff.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: u64) {
        self.trips = self.trips.saturating_add(1);
        // Exponential: base * 2^(trips-1), saturating, capped.
        let exp = (self.trips - 1).min(32);
        let backoff = self
            .config
            .base_backoff_subframes
            .saturating_mul(1u64 << exp)
            .min(self.config.max_backoff_subframes);
        // Deterministic jitter in [1 - j, 1 + j).
        let factor = 1.0 + self.config.jitter_frac * (2.0 * self.rng.f64() - 1.0);
        let wait = ((backoff as f64 * factor) as u64).max(1);
        self.open_until = now.saturating_add(wait);
        self.transition(now, BreakerState::Open);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig::default(), 42)
    }

    #[test]
    fn stays_closed_on_success() {
        let mut b = breaker();
        for sf in 0..100 {
            assert_eq!(b.poll(sf), BreakerPoll::Allow);
            b.record_success(sf);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.transitions().is_empty());
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn single_failure_does_not_trip() {
        let mut b = breaker();
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_success(20);
        b.record_failure(30);
        assert_eq!(b.state(), BreakerState::Closed, "success reset the count");
    }

    #[test]
    fn threshold_trips_and_backoff_gates_retries() {
        let mut b = breaker();
        b.record_failure(10);
        b.record_failure(20);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        match b.poll(21) {
            BreakerPoll::Wait(w) => assert!(w > 0),
            BreakerPoll::Allow => panic!("open breaker must not allow"),
        }
        // Far past the (jittered ~2000 sf) backoff: probe allowed.
        assert_eq!(b.poll(20 + 10_000), BreakerPoll::Allow);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn failed_probe_escalates_successful_probe_closes() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        let first_open = match b.poll(2) {
            BreakerPoll::Wait(w) => w,
            _ => panic!(),
        };
        b.poll(100_000); // -> HalfOpen
        b.record_failure(100_000); // failed probe -> Open, doubled
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        let second_open = match b.poll(100_001) {
            BreakerPoll::Wait(w) => w,
            _ => panic!(),
        };
        // Doubled modulo ±10% jitter on both draws.
        assert!(
            second_open as f64 > first_open as f64 * 1.5,
            "backoff must escalate: {first_open} -> {second_open}"
        );

        b.poll(400_000); // -> HalfOpen
        b.record_success(400_000);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0, "success resets escalation");
    }

    #[test]
    fn backoff_saturates_at_cap() {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new(cfg, 7);
        let mut now = 0u64;
        for _ in 0..40 {
            b.record_failure(now);
            b.record_failure(now + 1);
            now += 1_000_000; // always past open_until -> HalfOpen probe
            b.poll(now);
        }
        // One more trip; wait must stay within cap * (1 + jitter).
        b.record_failure(now);
        let wait = match b.poll(now + 1) {
            BreakerPoll::Wait(w) => w,
            _ => panic!(),
        };
        let cap = (cfg.max_backoff_subframes as f64 * (1.0 + cfg.jitter_frac)) as u64 + 1;
        assert!(wait <= cap, "wait {wait} exceeds cap {cap}");
    }

    #[test]
    fn transitions_are_recorded_in_order() {
        let mut b = breaker();
        b.record_failure(5);
        b.record_failure(6);
        b.poll(1_000_000);
        b.record_success(1_000_000);
        let kinds: Vec<(BreakerState, BreakerState)> =
            b.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            kinds,
            vec![
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
        let sfs: Vec<u64> = b.transitions().iter().map(|t| t.at_subframe).collect();
        assert!(sfs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = CircuitBreaker::new(BreakerConfig::default(), 9);
        let mut b = CircuitBreaker::new(BreakerConfig::default(), 9);
        let mut c = CircuitBreaker::new(BreakerConfig::default(), 10);
        for m in [&mut a, &mut b, &mut c] {
            m.record_failure(0);
            m.record_failure(1);
        }
        let wait = |m: &mut CircuitBreaker| match m.poll(2) {
            BreakerPoll::Wait(w) => w,
            _ => panic!(),
        };
        assert_eq!(wait(&mut a), wait(&mut b));
        assert_ne!(wait(&mut a), wait(&mut c), "different seeds jitter apart");
    }

    #[test]
    fn serde_round_trip_preserves_machine() {
        let mut b = breaker();
        b.record_failure(5);
        b.record_failure(6);
        let json = serde_json::to_string(&b).unwrap();
        let mut thawed: CircuitBreaker = serde_json::from_str(&json).unwrap();
        assert_eq!(thawed, b);
        // Identical future: same probe outcome and same jittered wait.
        b.poll(1_000_000);
        thawed.poll(1_000_000);
        b.record_failure(1_000_000);
        thawed.record_failure(1_000_000);
        assert_eq!(thawed, b);
    }

    #[test]
    fn config_validation() {
        assert!(BreakerConfig::default().validate().is_ok());
        for bad in [
            BreakerConfig {
                failure_threshold: 0,
                ..Default::default()
            },
            BreakerConfig {
                base_backoff_subframes: 0,
                ..Default::default()
            },
            BreakerConfig {
                max_backoff_subframes: 1,
                ..Default::default()
            },
            BreakerConfig {
                jitter_frac: f64::NAN,
                ..Default::default()
            },
            BreakerConfig {
                jitter_frac: 1.0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }
}
