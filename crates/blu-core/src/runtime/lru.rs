//! The deterministic bounded-LRU core shared by every cache in the
//! workspace.
//!
//! PR 2's [`DistributionCache`](crate::joint::cache::DistributionCache)
//! hand-rolled this machinery for pattern distributions; the fleet
//! blueprint cache ([`crate::blueprint::fleetcache`]) needs the same
//! bounded deterministic recency map over a different value type.
//! [`LruCore`] is that shared core, extracted verbatim so the
//! distribution cache's eviction order stays **bit-identical** to the
//! pre-extraction implementation (pinned by a differential test in
//! `joint::cache`):
//!
//! * recency is a monotone tick that advances on **every** lookup —
//!   including lookups whose compute fails — so the eviction order is
//!   a pure function of the call sequence, not of which computations
//!   succeeded;
//! * on overflow the entry with the smallest `(last_used, key)` is
//!   evicted — a total order, so eviction is reproducible run to run;
//! * hit/miss/eviction counters ride along and are exposed as a cheap
//!   [`CacheStats`] snapshot.
//!
//! `LruCore` is single-threaded by design; callers wrap it in their
//! own lock (the distribution cache's `Mutex`, the fleet cache's
//! single-flight state) so the locking discipline stays with the
//! cache that owns the concurrency story.

use serde::Serialize;
use std::collections::HashMap;

/// Hit/miss/eviction counters of one cache, snapshotted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to compute (failed computes count: the tick
    /// was consumed and the work was attempted).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot<V> {
    value: V,
    last_used: u64,
}

/// A bounded map from `u128` keys to clonable values with
/// deterministic LRU eviction. See the module docs for the exact
/// recency/eviction contract.
pub struct LruCore<V> {
    map: HashMap<u128, Slot<V>>,
    tick: u64,
    capacity: usize,
    stats: CacheStats,
}

impl<V> LruCore<V> {
    /// New core holding at most `capacity` entries (`capacity` is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        LruCore {
            map: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the core is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Evict the entry with the smallest `(last_used, key)`. Only
    /// called when full, so an empty map is a no-op.
    fn evict_one(&mut self) {
        if let Some(&victim) = self
            .map
            .iter()
            .min_by_key(|(k, e)| (e.last_used, *k))
            .map(|(k, _)| k)
        {
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Fetch the value for `key`, computing and inserting it on a
    /// miss. Hits bump the entry's recency; misses evict the
    /// least-recently-used entry first when the core is full. Errors
    /// from `compute` are returned without touching the map — but the
    /// recency tick is still consumed, preserving the pre-extraction
    /// eviction order.
    pub fn get_or_insert_with<E>(
        &mut self,
        key: u128,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E>
    where
        V: Clone,
    {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&key) {
            e.last_used = tick;
            self.stats.hits += 1;
            return Ok(e.value.clone());
        }
        self.stats.misses += 1;
        let value = compute()?;
        if self.map.len() >= self.capacity {
            self.evict_one();
        }
        self.map.insert(
            key,
            Slot {
                value: value.clone(),
                last_used: tick,
            },
        );
        Ok(value)
    }

    /// Look up `key` without computing: a hit bumps the entry's
    /// recency and returns a clone; a miss consumes the tick and
    /// returns `None`. Counters are **not** touched — split
    /// lookup/publish callers (the fleet cache's single-flight
    /// protocol) keep richer counters of their own.
    pub fn peek_bump(&mut self, key: u128) -> Option<V>
    where
        V: Clone,
    {
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(&key)?;
        e.last_used = tick;
        Some(e.value.clone())
    }

    /// Insert (or overwrite) `key`, evicting the LRU entry first when
    /// the core is full and `key` is not already resident. Counters
    /// other than `evictions` are untouched (see [`Self::peek_bump`]).
    pub fn insert(&mut self, key: u128, value: V) {
        self.tick += 1;
        let tick = self.tick;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            self.evict_one();
        }
        self.map.insert(
            key,
            Slot {
                value,
                last_used: tick,
            },
        );
    }

    /// Eviction count (mirrored in [`Self::stats`]; split callers use
    /// it directly).
    pub fn evictions(&self) -> u64 {
        self.stats.evictions
    }
}

impl<V> std::fmt::Debug for LruCore<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCore")
            .field("capacity", &self.capacity)
            .field("len", &self.map.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_hits_misses_and_evictions() {
        let mut c = LruCore::new(2);
        c.get_or_insert_with::<()>(1, || Ok(1)).unwrap();
        c.get_or_insert_with::<()>(1, || panic!("hit expected"))
            .unwrap();
        c.get_or_insert_with::<()>(2, || Ok(2)).unwrap();
        c.get_or_insert_with::<()>(3, || Ok(3)).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn failed_compute_consumes_tick_and_counts_miss() {
        let mut c = LruCore::new(2);
        c.get_or_insert_with::<()>(1, || Ok(1)).unwrap(); // tick 1
        assert!(c.get_or_insert_with(2, || Err("boom")).is_err()); // tick 2
        c.get_or_insert_with::<()>(2, || Ok(2)).unwrap(); // tick 3
        c.get_or_insert_with::<()>(3, || Ok(3)).unwrap(); // tick 4: evicts 1
        assert!(c.peek_bump(1).is_none(), "1 must have been the victim");
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn peek_bump_and_insert_drive_recency_like_lookups() {
        let mut c = LruCore::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.peek_bump(1), Some(10)); // 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.peek_bump(2), None, "2 must have been evicted");
        assert_eq!(c.peek_bump(1), Some(10));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn capacity_clamped_to_one() {
        let mut c: LruCore<u32> = LruCore::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.len(), 1);
    }
}
