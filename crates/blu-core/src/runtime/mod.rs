//! Resilience runtime: the guarantees that keep blue-printing useful
//! when the environment — or the process — misbehaves.
//!
//! The BLU pipeline (measure → blue-print → speculate) assumes
//! inference finishes, workers don't die, and processes run to
//! completion. None of those hold at deployment scale: unlicensed-band
//! access decisions run under hard per-subframe time budgets, a latent
//! solver bug on one cell must not take down a fleet, and an eNB
//! restart must not discard hours of accumulated measurement evidence.
//! This module supplies the three corresponding mechanisms:
//!
//! * [`deadline`] — anytime inference: a cheap cancellation token
//!   checked at proposal granularity, so a deadline overrun degrades
//!   to a best-so-far blueprint instead of blocking the subframe
//!   clock;
//! * [`breaker`] — per-cell circuit breaking: repeatedly failing
//!   cells are parked in PF fallback behind an exponentially backed
//!   off, jittered retry schedule instead of burning re-measurement
//!   budget on every probation cycle;
//! * [`checkpoint`] — versioned, atomically written snapshots of
//!   orchestrator state, so `blu robust --resume` continues a run
//!   bit-identically after a crash.
//!
//! All three are deterministic by construction (the breaker's jitter
//! draws from a seeded [`blu_sim::rng::DetRng`]; the deadline's
//! step-budget arm never consults a clock), so the repository's
//! differential-testing discipline extends to its failure paths.

pub mod breaker;
pub mod checkpoint;
pub mod deadline;

/// Render a `catch_unwind` payload as a human-readable string.
///
/// Panic payloads are almost always `&str` (a literal) or `String`
/// (a `panic!("{…}")` format); anything else is summarized rather
/// than re-thrown so the isolation boundary never loses the error.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub use breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};
pub use checkpoint::{
    load_robust_checkpoint, save_robust_checkpoint, RobustCheckpoint, CHECKPOINT_VERSION,
};
pub use deadline::{Deadline, DeadlineToken, DEADLINE_CHECK_EVERY};
