//! Resilience runtime: the guarantees that keep blue-printing useful
//! when the environment — or the process — misbehaves.
//!
//! The BLU pipeline (measure → blue-print → speculate) assumes
//! inference finishes, workers don't die, and processes run to
//! completion. None of those hold at deployment scale: unlicensed-band
//! access decisions run under hard per-subframe time budgets, a latent
//! solver bug on one cell must not take down a fleet, and an eNB
//! restart must not discard hours of accumulated measurement evidence.
//! This module supplies the three corresponding mechanisms:
//!
//! * [`deadline`] — anytime inference: a cheap cancellation token
//!   checked at proposal granularity, so a deadline overrun degrades
//!   to a best-so-far blueprint instead of blocking the subframe
//!   clock;
//! * [`breaker`] — per-cell circuit breaking: repeatedly failing
//!   cells are parked in PF fallback behind an exponentially backed
//!   off, jittered retry schedule instead of burning re-measurement
//!   budget on every probation cycle;
//! * [`checkpoint`] — versioned, atomically written snapshots of
//!   orchestrator state, so `blu robust --resume` continues a run
//!   bit-identically after a crash.
//!
//! All three are deterministic by construction (the breaker's jitter
//! draws from a seeded [`blu_sim::rng::DetRng`]; the deadline's
//! step-budget arm never consults a clock), so the repository's
//! differential-testing discipline extends to its failure paths.

pub mod breaker;
pub mod checkpoint;
pub mod deadline;
pub mod lru;
pub mod service;
pub mod supervisor;
pub mod wire;

/// Marker recorded when a panic payload is neither `&str` nor
/// `String` (e.g. `panic_any(42)`): the payload cannot be rendered,
/// but the isolation boundary still reports a typed, grep-able value
/// instead of an empty message.
pub const NON_STRING_PANIC_PAYLOAD: &str = "<non-string panic payload>";

/// Longest rendered panic payload, in bytes. Payloads beyond this are
/// truncated (at a char boundary, with a `…` marker) so a
/// pathological `panic!` cannot bloat fleet reports or checkpoints.
pub const PANIC_MESSAGE_MAX_LEN: usize = 512;

/// Render a `catch_unwind` payload as a human-readable string.
///
/// Panic payloads are almost always `&str` (a literal) or `String`
/// (a `panic!("{…}")` format); anything else is summarized as
/// [`NON_STRING_PANIC_PAYLOAD`] rather than re-thrown so the
/// isolation boundary never loses the error. Oversized payloads are
/// truncated to [`PANIC_MESSAGE_MAX_LEN`] bytes.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        NON_STRING_PANIC_PAYLOAD.to_string()
    };
    if msg.len() <= PANIC_MESSAGE_MAX_LEN {
        return msg;
    }
    let mut cut = PANIC_MESSAGE_MAX_LEN;
    while !msg.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}… [truncated]", &msg[..cut])
}

pub use breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};
pub use checkpoint::{
    load_robust_checkpoint, save_robust_checkpoint, RobustCheckpoint, CHECKPOINT_VERSION,
};
pub use deadline::{Deadline, DeadlineToken, DEADLINE_CHECK_EVERY};
pub use lru::{CacheStats, LruCore};
pub use service::{capture_for_spec, snapshot_digest, BluService, ServiceConfig, ServiceHandle};
pub use supervisor::{
    run_supervised_fleet, run_supervised_fleet_with_hook, CellHealth, CellHealthReport,
    CellSupervisor, FailureKind, FleetHealthReport, HealthCause, HealthTransition, NullHook,
    RestartBackoffConfig, RestartDecision, RestartSource, ShedAction, ShedEvent, SheddingPolicy,
    SupervisedFleetOutcome, SupervisorConfig, SupervisorHook,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn message_of(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = catch_unwind(f).unwrap_err();
        panic_message(payload.as_ref())
    }

    #[test]
    fn str_and_string_payloads_render_verbatim() {
        assert_eq!(message_of(|| panic!("plain literal")), "plain literal");
        let dynamic = String::from("formatted 42");
        assert_eq!(
            message_of(AssertUnwindSafe(move || panic!("{dynamic}"))),
            "formatted 42"
        );
    }

    #[test]
    fn non_string_payload_gets_typed_marker() {
        assert_eq!(
            message_of(|| std::panic::panic_any(42u32)),
            NON_STRING_PANIC_PAYLOAD
        );
        assert_eq!(
            message_of(|| std::panic::panic_any(vec![1u8, 2, 3])),
            NON_STRING_PANIC_PAYLOAD
        );
    }

    #[test]
    fn oversized_payload_is_truncated_at_char_boundary() {
        // Multi-byte chars positioned across the cut point: the cut
        // must land on a boundary, never mid-codepoint.
        let big = "é".repeat(PANIC_MESSAGE_MAX_LEN); // 2 bytes each
        let msg = message_of(AssertUnwindSafe(move || std::panic::panic_any(big)));
        assert!(msg.len() <= PANIC_MESSAGE_MAX_LEN + "… [truncated]".len());
        assert!(msg.ends_with("… [truncated]"));
        assert!(msg.starts_with('é'));

        let exact = "x".repeat(PANIC_MESSAGE_MAX_LEN);
        let kept = message_of(AssertUnwindSafe({
            let exact = exact.clone();
            move || std::panic::panic_any(exact)
        }));
        assert_eq!(kept, exact, "payloads at the limit pass untouched");
    }
}
