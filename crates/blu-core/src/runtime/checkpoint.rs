//! Versioned, atomically written snapshots of the robust
//! orchestrator.
//!
//! An eNB restart must not discard hours of accumulated measurement
//! evidence, and a resumed run must be **bit-identical** to one that
//! never stopped — so the snapshot captures every piece of mutable
//! loop state, including the RNG streams (observation channel, poison
//! source, breaker jitter), not just the blueprint.
//!
//! ## Durability
//!
//! Saves are atomic at the filesystem level: the JSON is written to a
//! `<file>.tmp` sibling, fsynced, and then `rename`d over the target,
//! so a crash mid-write leaves either the previous complete
//! checkpoint or a stray temp file — never a torn snapshot at the
//! load path. On Unix the parent directory is fsynced after the
//! rename as well: without it the rename lives only in the directory
//! page cache, and a power loss could roll the directory entry back
//! to the old (or no) checkpoint even though the data blocks hit
//! disk.
//!
//! ## Versioning
//!
//! The on-disk document is `{"version": N, "snapshot": {…}}`. Loading
//! first parses to a raw [`serde::Value`] tree and probes `version`
//! **before** attempting the full typed decode, so a format bump
//! surfaces as the precise [`BluError::CheckpointVersion`] — not as a
//! misleading field-by-field decode failure deep inside the snapshot.
//! Any schema change to [`crate::robust::RobustSnapshot`] that is not
//! purely additive (the vendored serde ignores unknown fields and
//! tolerates missing `Option`s) must bump [`CHECKPOINT_VERSION`].

use crate::error::BluError;
use crate::robust::RobustSnapshot;
use serde::{Deserialize, Serialize, Value};
use std::fs;
use std::path::Path;

/// Snapshot-format version written and required by this build.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The on-disk checkpoint document: a version tag wrapping the
/// orchestrator snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustCheckpoint {
    /// Snapshot-format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The orchestrator state proper.
    pub snapshot: RobustSnapshot,
}

fn io_err(what: &str, path: &Path, e: impl std::fmt::Display) -> BluError {
    BluError::Checkpoint(format!("{what} {}: {e}", path.display()))
}

/// Atomically write `snapshot` (wrapped in the current format
/// version) to `path`: serialize, write to a `.tmp` sibling, fsync,
/// rename into place, then fsync the parent directory so the rename
/// itself is durable (Unix only; other platforms have no portable
/// directory-sync primitive).
pub fn save_robust_checkpoint(path: &Path, snapshot: &RobustSnapshot) -> Result<(), BluError> {
    let doc = RobustCheckpoint {
        version: CHECKPOINT_VERSION,
        snapshot: snapshot.clone(),
    };
    let json = serde_json::to_string_pretty(&doc).map_err(|e| io_err("serializing", path, e))?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).map_err(|e| io_err("creating directory for", path, e))?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
        f.write_all(json.as_bytes())
            .map_err(|e| io_err("writing", &tmp, e))?;
        f.sync_all().map_err(|e| io_err("syncing", &tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err("renaming into place", path, e))?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Fsync the directory containing `path` so the rename that installed
/// the checkpoint survives a power loss. A relative path with no
/// parent component syncs the current directory.
#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> Result<(), BluError> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let handle = fs::File::open(dir).map_err(|e| io_err("opening directory of", path, e))?;
    handle
        .sync_all()
        .map_err(|e| io_err("syncing directory of", path, e))?;
    Ok(())
}

#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> Result<(), BluError> {
    Ok(())
}

/// Load a checkpoint, verifying the format version before decoding
/// the snapshot body.
pub fn load_robust_checkpoint(path: &Path) -> Result<RobustSnapshot, BluError> {
    let text = fs::read_to_string(path).map_err(|e| io_err("reading", path, e))?;
    let value: Value = serde_json::from_str(&text).map_err(|e| io_err("parsing", path, e))?;
    let map = value
        .as_map()
        .ok_or_else(|| io_err("decoding", path, "top-level value is not an object"))?;
    let found = serde::field(map, "version")
        .and_then(Value::as_u128)
        .ok_or_else(|| io_err("decoding", path, "missing or non-integer `version` field"))?;
    if found != u128::from(CHECKPOINT_VERSION) {
        return Err(BluError::CheckpointVersion {
            found: u32::try_from(found).unwrap_or(u32::MAX),
            expected: CHECKPOINT_VERSION,
        });
    }
    let doc: RobustCheckpoint =
        serde_json::from_value(&value).map_err(|e| io_err("decoding", path, e))?;
    Ok(doc.snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::breaker::BreakerConfig;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("blu-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_reopen_round_trips_durably() {
        let dir = scratch_dir("reopen");
        let path = dir.join("nested").join("cell-0.json");
        let mut snap = RobustSnapshot::fresh(4, 10_000, 0xFEED, 0.01, BreakerConfig::default());
        snap.cursor = 1234;

        save_robust_checkpoint(&path, &snap).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "temp sibling must be renamed away, not left behind"
        );
        // Drop every in-memory handle and reopen from the path alone —
        // the only state that survives a crash.
        let reloaded = load_robust_checkpoint(&path).unwrap();
        assert_eq!(reloaded, snap);

        // Overwrite with new state: the rename must replace, and the
        // directory fsync must not error on the second pass either.
        snap.cursor = 5678;
        save_robust_checkpoint(&path, &snap).unwrap();
        assert_eq!(load_robust_checkpoint(&path).unwrap().cursor, 5678);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn relative_path_without_parent_saves_in_cwd_sync() {
        // `sync_parent_dir` must handle a bare filename (empty parent)
        // by syncing ".", not by erroring out.
        let snap = RobustSnapshot::fresh(2, 1_000, 7, 0.01, BreakerConfig::default());
        let name = format!("blu-ckpt-bare-{}.json", std::process::id());
        let path = Path::new(&name);
        save_robust_checkpoint(path, &snap).unwrap();
        assert_eq!(load_robust_checkpoint(path).unwrap(), snap);
        let _ = fs::remove_file(path);
    }
}
