//! Length-prefixed binary wire protocol for the `blu serve` daemon.
//!
//! One frame = a 4-byte big-endian payload length followed by exactly
//! that many payload bytes; the payload is the JSON encoding of one
//! [`Request`] or [`Response`]. The framing layer is deliberately
//! paranoid — it is the daemon's exposure surface to arbitrary bytes:
//!
//! * the length prefix is validated **before** any payload allocation
//!   — zero or beyond the configured frame limit is a typed
//!   [`BluError::Wire`], so a hostile prefix can neither allocate
//!   unbounded memory nor wedge the reader;
//! * truncation anywhere (inside the prefix, inside the payload) is a
//!   typed error, never a hang — reads run under the socket's read
//!   deadline, and a timeout surfaces as `Wire` too;
//! * a connection closing *cleanly between frames* is not an error
//!   ([`read_frame`] returns `Ok(None)`), so client disconnects and
//!   malformed clients are distinguishable;
//! * payload decode failures (garbage bytes, unknown commands,
//!   type-mismatched fields) are typed errors carried back to the
//!   client as a [`Response::Error`] frame where possible.
//!
//! Every request/response type here is plain serde data — the daemon
//! in [`super::service`] owns all behavior.

use crate::engine::context::OrchestratorState;
use crate::error::BluError;
use crate::runtime::supervisor::CellHealth;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Protocol version spoken by this build. A [`Request::Hello`] with a
/// different version is answered with [`Response::Error`].
pub const WIRE_VERSION: u32 = 1;

/// Default ceiling on one frame's payload, in bytes (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Bytes of the frame length prefix.
pub const FRAME_HEADER_LEN: usize = 4;

/// A cell's workload specification: the daemon synthesizes the cell's
/// capture deterministically from this (same generator as `blu
/// chaos`), so the spec is also the resume record — a restarted
/// daemon regenerates the identical trace from the persisted spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Capture seed: topology, activity and SNR streams derive from
    /// it.
    pub seed: u64,
    /// Trace duration in seconds.
    pub seconds: u64,
    /// Admission priority (higher = shed last, re-admitted first).
    pub priority: u32,
    /// Optional scripted inference stall: the sub-frame it starts at.
    pub stall_at: Option<u64>,
    /// Stall wall-clock multiplier (1 = healthy; only meaningful with
    /// `stall_at`).
    pub stall_factor: u32,
    /// Poisson topology-churn rate in **milli-hertz** (events per
    /// 1000 s), `0` = no churn. Kept integral so `CellSpec` stays
    /// `Eq`-comparable and byte-stable as a resume record.
    pub churn_millihz: u64,
    /// Streaming observation-window capacity in sub-frames; `0` runs
    /// the cell in the phased (non-streaming) loop.
    pub stream_window: u64,
}

impl CellSpec {
    /// A healthy cell spec with default priority.
    pub fn new(seed: u64, seconds: u64) -> Self {
        CellSpec {
            seed,
            seconds,
            priority: 0,
            stall_at: None,
            stall_factor: 1,
            churn_millihz: 0,
            stream_window: 0,
        }
    }

    /// The churn rate in hertz (`churn_millihz / 1000`).
    pub fn churn_rate_hz(&self) -> f64 {
        self.churn_millihz as f64 / 1_000.0
    }

    /// Reject specs the capture generator or the supervisor would
    /// choke on.
    pub fn validate(&self) -> Result<(), BluError> {
        if self.seconds == 0 {
            return Err(BluError::InvalidConfig(
                "cell spec seconds must be > 0".into(),
            ));
        }
        if self.stall_factor == 0 {
            return Err(BluError::InvalidConfig(
                "cell spec stall_factor must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// A client → daemon command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake: announces the client's protocol version.
    Hello {
        /// Client protocol version.
        version: u32,
    },
    /// Admit a new cell (admission-controlled).
    AddCell {
        /// The cell's workload spec.
        spec: CellSpec,
    },
    /// Retire a cell: final checkpoint, then drop it from the fleet.
    RemoveCell {
        /// Cell id to retire.
        cell: u64,
    },
    /// Step the whole fleet `rounds` rounds (manual-cadence driving;
    /// also legal alongside a timed cadence).
    Step {
        /// Rounds to step.
        rounds: u64,
    },
    /// Per-cell status report with state digests.
    Status,
    /// Prometheus-style text counters.
    Metrics,
    /// Force-persist every cell's checkpoint and sidecar now.
    Snapshot,
    /// Stop admissions; the daemon keeps stepping resident cells.
    Drain,
    /// Graceful shutdown: stop admissions, final checkpoint, exit.
    Shutdown,
}

/// Per-cell slice of a [`StatusReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStatus {
    /// Cell id (stable across the daemon's lifetime and across
    /// resume).
    pub cell: u64,
    /// Supervisor health.
    pub health: CellHealth,
    /// Orchestrator state-machine position.
    pub state: OrchestratorState,
    /// Trace cursor, in sub-frames.
    pub cursor: u64,
    /// Total sub-frames in the cell's trace.
    pub trace_len: u64,
    /// Whether the trace is exhausted.
    pub done: bool,
    /// Restarts consumed.
    pub restarts: u32,
    /// Whether the cell is currently shed to PF fallback.
    pub shed: bool,
    /// Rounds spent shed so far.
    pub shed_rounds: u64,
    /// Admission priority.
    pub priority: u32,
    /// FNV-1a-64 digest (hex) of the cell's timing-normalized
    /// snapshot: two runs are bit-identical iff their digests match.
    pub digest: String,
    /// Streaming observation-window occupancy, in sub-frame
    /// observations (`0` for phased cells).
    pub window_occupancy: u64,
    /// Streaming observation-window capacity (`0` for phased cells).
    pub window_capacity: u64,
}

/// Daemon-side counters, surfaced through `Status` and `Metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceCounters {
    /// Cells admitted.
    pub admissions: u64,
    /// Admissions rejected (budget exhausted or draining).
    pub rejections: u64,
    /// Commands answered `Busy` because the command queue was full.
    pub busy_responses: u64,
    /// Malformed frames received (each one also closes its
    /// connection).
    pub malformed_frames: u64,
    /// Fleet rounds stepped.
    pub rounds: u64,
    /// Cells shed to PF under backpressure.
    pub shed_events: u64,
    /// Shed cells re-admitted.
    pub readmit_events: u64,
    /// Total cell-rounds served in shed (PF-only) mode.
    pub shed_rounds_total: u64,
    /// Supervisor restarts across the fleet.
    pub restarts: u64,
    /// Cells currently quarantined.
    pub quarantined: u64,
    /// Cells resumed from disk at daemon startup.
    pub resumed_cells: u64,
}

/// Full daemon status snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Wire protocol version of the daemon.
    pub version: u32,
    /// Whether admissions are closed (drain in progress).
    pub draining: bool,
    /// Configured admission budget.
    pub max_cells: u64,
    /// Daemon counters.
    pub counters: ServiceCounters,
    /// Per-cell status, in cell-id order.
    pub cells: Vec<CellStatus>,
}

/// A daemon → client reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted.
    Hello {
        /// Daemon protocol version.
        version: u32,
        /// Cells restored from the checkpoint directory at startup.
        resumed_cells: u64,
    },
    /// Command applied. `cell` carries the assigned id for `AddCell`.
    Done {
        /// Cell id the command created or removed, when applicable.
        cell: Option<u64>,
    },
    /// The daemon's command queue is full — backpressure, try again.
    /// The command was **not** enqueued.
    Busy,
    /// Admission control refused the command.
    Rejected {
        /// Why admission was refused.
        reason: String,
    },
    /// Status reply.
    Status(StatusReport),
    /// Metrics reply (Prometheus text exposition format).
    Metrics {
        /// The exposition body.
        text: String,
    },
    /// The daemon acknowledged shutdown/drain and will close this
    /// connection.
    Bye,
    /// The command failed (or could not be decoded).
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame: 4-byte big-endian length, then the payload.
/// Payloads larger than `max_frame` are refused with a typed error
/// before anything is written.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_frame: usize) -> Result<(), BluError> {
    if payload.is_empty() {
        return Err(BluError::Wire("refusing to write an empty frame".into()));
    }
    if payload.len() > max_frame {
        return Err(BluError::Wire(format!(
            "frame payload of {} bytes exceeds the {} byte limit",
            payload.len(),
            max_frame
        )));
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| BluError::Wire("frame payload exceeds u32::MAX bytes".into()))?;
    w.write_all(&len.to_be_bytes())
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| BluError::Wire(format!("writing frame: {e}")))
}

/// Read one frame. Returns `Ok(None)` on a clean close **at a frame
/// boundary** (zero bytes read); every other shortfall — a truncated
/// prefix, a truncated payload, a read timeout — is a typed
/// [`BluError::Wire`]. The length prefix is validated against
/// `max_frame` before the payload buffer is allocated.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, BluError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(BluError::Wire(format!(
                    "connection closed mid-prefix ({got} of {FRAME_HEADER_LEN} header bytes)"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(wire_io_error("reading frame prefix", &e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 {
        return Err(BluError::Wire("zero-length frame".into()));
    }
    if len > max_frame {
        return Err(BluError::Wire(format!(
            "frame length prefix {len} exceeds the {max_frame} byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(BluError::Wire(format!(
                    "connection closed mid-frame ({got} of {len} payload bytes)"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(wire_io_error("reading frame payload", &e)),
        }
    }
    Ok(Some(payload))
}

fn wire_io_error(what: &str, e: &std::io::Error) -> BluError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            BluError::Wire(format!("{what}: read deadline exceeded"))
        }
        _ => BluError::Wire(format!("{what}: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------------

/// Encode a request as a frame payload.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, BluError> {
    serde_json::to_vec(req).map_err(|e| BluError::Wire(format!("encoding request: {e}")))
}

/// Decode a frame payload as a request (garbage → typed error).
pub fn decode_request(payload: &[u8]) -> Result<Request, BluError> {
    serde_json::from_slice(payload).map_err(|e| BluError::Wire(format!("decoding request: {e}")))
}

/// Encode a response as a frame payload.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, BluError> {
    serde_json::to_vec(resp).map_err(|e| BluError::Wire(format!("encoding response: {e}")))
}

/// Decode a frame payload as a response (garbage → typed error).
pub fn decode_response(payload: &[u8]) -> Result<Response, BluError> {
    serde_json::from_slice(payload).map_err(|e| BluError::Wire(format!("decoding response: {e}")))
}

/// Client-side round trip: send one request, read one response.
pub fn roundtrip(
    stream: &mut (impl Read + Write),
    req: &Request,
    max_frame: usize,
) -> Result<Response, BluError> {
    write_frame(stream, &encode_request(req)?, max_frame)?;
    match read_frame(stream, max_frame)? {
        Some(payload) => decode_response(&payload),
        None => Err(BluError::Wire(
            "daemon closed the connection without replying".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"world!", DEFAULT_MAX_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"world!"
        );
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = vec![
            Request::Hello {
                version: WIRE_VERSION,
            },
            Request::AddCell {
                spec: CellSpec::new(7, 30),
            },
            Request::AddCell {
                spec: CellSpec {
                    churn_millihz: 200,
                    stream_window: 2_000,
                    ..CellSpec::new(11, 45)
                },
            },
            Request::RemoveCell { cell: 3 },
            Request::Step { rounds: 12 },
            Request::Status,
            Request::Metrics,
            Request::Snapshot,
            Request::Drain,
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = encode_request(&req).unwrap();
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
        let resp = Response::Rejected {
            reason: "budget".into(),
        };
        let bytes = encode_response(&resp).unwrap();
        assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn oversized_and_zero_prefixes_are_typed_errors() {
        // Length prefix claims 2 MiB against a 1 MiB limit: rejected
        // before allocation.
        let mut bytes = (2u32 << 20).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut Cursor::new(bytes), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(
            matches!(err, BluError::Wire(ref m) if m.contains("exceeds")),
            "{err}"
        );

        let zero = 0u32.to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(zero), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(
            matches!(err, BluError::Wire(ref m) if m.contains("zero-length")),
            "{err}"
        );
    }

    #[test]
    fn truncated_prefix_and_payload_are_typed_errors() {
        // Two of four header bytes.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0]), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(
            matches!(err, BluError::Wire(ref m) if m.contains("mid-prefix")),
            "{err}"
        );

        // Prefix promises 10 bytes, 3 arrive.
        let mut bytes = 10u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(bytes), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(
            matches!(err, BluError::Wire(ref m) if m.contains("mid-frame")),
            "{err}"
        );
    }

    #[test]
    fn garbage_payload_is_a_typed_decode_error() {
        for garbage in [
            b"not json at all".to_vec(),
            b"{\"Unknown\":{}}".to_vec(),
            b"{\"Step\":{\"rounds\":\"twelve\"}}".to_vec(),
            vec![0xFFu8; 32],
        ] {
            let err = decode_request(&garbage).unwrap_err();
            assert!(matches!(err, BluError::Wire(_)), "{err}");
        }
    }

    #[test]
    fn write_frame_refuses_oversize_and_empty() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &[0u8; 64], 16).unwrap_err(),
            BluError::Wire(_)
        ));
        assert!(matches!(
            write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap_err(),
            BluError::Wire(_)
        ));
        assert!(buf.is_empty(), "nothing written on refusal");
    }
}
