//! Deadline-bounded anytime inference.
//!
//! Coexistence in unlicensed spectrum runs on a subframe clock: an
//! inference result that arrives after the scheduling decision it was
//! meant to inform is worthless. Rather than aborting (and losing the
//! work), the inference loops accept a [`DeadlineToken`] and check it
//! once per proposal / repair iteration; on expiry they return the
//! best topology found so far, tagged `completed = false` with an
//! overshoot bound, so the orchestrator can speculate on a coarser
//! blueprint now and refine later.
//!
//! Two arms with different contracts:
//!
//! * [`Deadline::Steps`] — a deterministic work-unit budget. Expiry
//!   is exact (the budget'th unit is the last one executed) and the
//!   result is a pure function of the inputs, so differential tests
//!   can pin it.
//! * [`Deadline::Wall`] — a wall-clock budget. `Instant::now()` is
//!   only consulted every [`DEADLINE_CHECK_EVERY`] units (syscalls per
//!   proposal would dominate the 2 ms inference budget), so at most
//!   one check-batch of work runs past the deadline; the token
//!   reports that bound as `overshoot`.
//!
//! Neither arm consumes randomness, and [`Deadline::None`]
//! short-circuits before touching any counter state, so adding a
//! token to a loop cannot perturb an unbounded run — the
//! no-deadline-bit-identity differential tests rely on this.

use std::time::{Duration, Instant};

use crate::error::BluError;

/// How many work units run between wall-clock checks — and therefore
/// the worst-case number of units that execute past a wall deadline.
pub const DEADLINE_CHECK_EVERY: u32 = 64;

/// An inference time budget.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Deadline {
    /// No budget: run to convergence (the default; bit-identical to
    /// pre-deadline behavior).
    #[default]
    None,
    /// Budget of exactly this many work units (MCMC proposals /
    /// gradient repair iterations). Deterministic.
    Steps(u64),
    /// Wall-clock budget, checked every [`DEADLINE_CHECK_EVERY`]
    /// units.
    Wall(Duration),
}

impl Deadline {
    /// Whether this is the unbounded default.
    pub fn is_none(&self) -> bool {
        matches!(self, Deadline::None)
    }

    /// Reject degenerate budgets (a zero budget would silently return
    /// the initial candidate and look like an inference bug).
    pub fn validate(&self) -> Result<(), BluError> {
        match self {
            Deadline::None => Ok(()),
            Deadline::Steps(0) => Err(BluError::InvalidConfig(
                "deadline step budget must be > 0".into(),
            )),
            Deadline::Steps(_) => Ok(()),
            Deadline::Wall(d) if d.is_zero() => Err(BluError::InvalidConfig(
                "wall-clock deadline must be > 0".into(),
            )),
            Deadline::Wall(_) => Ok(()),
        }
    }

    /// Start the clock: produce a token for one inference run. For
    /// [`Deadline::Wall`] the budget is measured from this call.
    pub fn token(&self) -> DeadlineToken {
        DeadlineToken::new(*self)
    }
}

#[derive(Debug, Clone)]
enum Arm {
    None,
    Steps { budget: u64 },
    Wall { start: Instant, budget: Duration },
}

/// Cancellation token for one inference run.
///
/// Call [`tick`](Self::tick) immediately *before* each work unit; a
/// `true` return means the budget is spent and the unit must not run.
/// Once expired, a token stays expired.
#[derive(Debug, Clone)]
pub struct DeadlineToken {
    arm: Arm,
    /// Work units executed (i.e. ticks that returned `false`).
    units: u64,
    since_check: u32,
    units_at_last_check: u64,
    expired: bool,
    overshoot: u64,
}

impl DeadlineToken {
    /// Build a token for the given budget, starting the wall clock
    /// now.
    pub fn new(deadline: Deadline) -> Self {
        DeadlineToken {
            arm: match deadline {
                Deadline::None => Arm::None,
                Deadline::Steps(budget) => Arm::Steps { budget },
                Deadline::Wall(budget) => Arm::Wall {
                    start: Instant::now(),
                    budget,
                },
            },
            units: 0,
            since_check: 0,
            units_at_last_check: 0,
            expired: false,
            overshoot: 0,
        }
    }

    /// Register intent to execute one more work unit. Returns `true`
    /// when the budget is exhausted (the unit must not run).
    #[inline]
    pub fn tick(&mut self) -> bool {
        match self.arm {
            Arm::None => false,
            _ if self.expired => true,
            Arm::Steps { budget } => {
                if self.units >= budget {
                    self.expired = true;
                    true
                } else {
                    self.units += 1;
                    false
                }
            }
            Arm::Wall { start, budget } => {
                self.since_check += 1;
                if self.since_check >= DEADLINE_CHECK_EVERY {
                    self.since_check = 0;
                    if start.elapsed() >= budget {
                        self.expired = true;
                        // Units that ran after the last check known to
                        // be within budget — an upper bound on
                        // post-deadline work, ≤ one check batch.
                        self.overshoot = self.units - self.units_at_last_check;
                        return true;
                    }
                    self.units_at_last_check = self.units;
                }
                self.units += 1;
                false
            }
        }
    }

    /// Whether the budget ran out.
    pub fn expired(&self) -> bool {
        self.expired
    }

    /// Work units actually executed.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// Upper bound on work units executed past the deadline (0 for
    /// [`Deadline::None`] and [`Deadline::Steps`], at most
    /// [`DEADLINE_CHECK_EVERY`] for [`Deadline::Wall`]).
    pub fn overshoot(&self) -> u64 {
        self.overshoot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires_and_counts_nothing() {
        let mut t = Deadline::None.token();
        for _ in 0..10_000 {
            assert!(!t.tick());
        }
        assert!(!t.expired());
        assert_eq!(t.overshoot(), 0);
    }

    #[test]
    fn steps_budget_is_exact() {
        let mut t = Deadline::Steps(100).token();
        let mut executed = 0u64;
        for _ in 0..1_000 {
            if !t.tick() {
                executed += 1;
            }
        }
        assert_eq!(executed, 100, "exactly the budgeted units run");
        assert!(t.expired());
        assert_eq!(t.units(), 100);
        assert_eq!(t.overshoot(), 0, "step budgets never overshoot");
    }

    #[test]
    fn expired_token_stays_expired() {
        let mut t = Deadline::Steps(1).token();
        assert!(!t.tick());
        assert!(t.tick());
        assert!(t.tick());
        assert_eq!(t.units(), 1);
    }

    #[test]
    fn wall_deadline_expires_with_bounded_overshoot() {
        // A zero-ish budget expires at the very first check.
        let mut t = Deadline::Wall(Duration::from_nanos(1)).token();
        let mut executed = 0u64;
        for _ in 0..100_000 {
            if !t.tick() {
                executed += 1;
            }
        }
        assert!(t.expired());
        assert!(
            executed < u64::from(DEADLINE_CHECK_EVERY),
            "at most one check batch runs: {executed}"
        );
        assert!(t.overshoot() <= u64::from(DEADLINE_CHECK_EVERY));
    }

    #[test]
    fn generous_wall_deadline_does_not_expire() {
        let mut t = Deadline::Wall(Duration::from_secs(3600)).token();
        for _ in 0..10_000 {
            assert!(!t.tick());
        }
        assert!(!t.expired());
        assert_eq!(t.units(), 10_000);
    }

    #[test]
    fn validation_rejects_zero_budgets() {
        assert!(Deadline::None.validate().is_ok());
        assert!(Deadline::Steps(1).validate().is_ok());
        assert!(Deadline::Steps(0).validate().is_err());
        assert!(Deadline::Wall(Duration::from_millis(1)).validate().is_ok());
        assert!(Deadline::Wall(Duration::ZERO).validate().is_err());
    }
}
