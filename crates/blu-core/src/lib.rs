//! # blu-core — BLU: blue-printing interference for robust LTE uplink
//!
//! The paper's contribution, in four pieces:
//!
//! * [`measure`] — **Algorithm 1**: scheduling measurement sub-frames
//!   so that every client *pair* is jointly observed `T` times with
//!   near-minimal overhead (`⌈C(N,2)/C(K,2)·T⌉` sub-frames), plus the
//!   estimator that turns pilot-classified grant outcomes into
//!   empirical `p(i)`, `p(i,j)`.
//! * [`blueprint`] — **topology inference** (§3.4): log-transform the
//!   measured access probabilities into linear constraints (Eqn. 6)
//!   and repair a candidate hidden-terminal topology by gradient
//!   moves until the constraints are satisfied; multi-point
//!   initialization; an MCMC baseline for comparison; the paper's
//!   exact-edge-set accuracy metric.
//! * [`joint`] — **higher-order joint access distributions** (§3.6):
//!   the recursive topology-conditioning computation of `P(U, V̄)`
//!   (Eqns. 7–9) and an `O(h·2^w)` dynamic program producing the full
//!   access-pattern distribution of a client set — the form the
//!   scheduler consumes.
//! * [`sched`] — the **schedulers**: proportional fair (Eqn. 1), the
//!   access-aware baseline (Eqn. 5), and BLU's speculative scheduler
//!   (Eqns. 3–4) that over-schedules up to `f·M` clients per RB by
//!   expected marginal PF utility under the joint access
//!   distribution. SISO and MU-MIMO.
//!
//! [`engine`] owns the one per-subframe loop (CCA, pilots, ZF
//! decoding, PF averaging) and the staged measure → infer → generate
//! → schedule → transmit pipeline every orchestration layer composes:
//! [`emulator`] replays captured traces through a scheduler,
//! [`orchestrator`] runs the full two-phase BLU loop of Fig. 9
//! (measure → blue-print → speculate), and [`robust`] runs the
//! degraded-mode state machine — all through the same
//! [`engine::CellEngine`].
//!
//! ## End to end, in a dozen lines
//!
//! ```
//! use blu_core::blueprint::{infer_topology, ConstraintSystem, InferenceConfig};
//! use blu_sim::rng::DetRng;
//! use blu_sim::topology::InterferenceTopology;
//!
//! // A hidden-terminal field the eNB cannot see…
//! let mut rng = DetRng::seed_from_u64(7);
//! let truth = InterferenceTopology::random(6, 4, (0.2, 0.6), 0.4, &mut rng);
//!
//! // …blue-printed from nothing but pairwise access statistics.
//! let constraints = ConstraintSystem::from_topology(&truth);
//! let result = infer_topology(&constraints, &InferenceConfig::default());
//! assert!(result.violation < 1e-6);
//! // The inferred blue-print reproduces every client's access odds.
//! for i in 0..6 {
//!     let err = (result.topology.p_individual(i) - truth.p_individual(i)).abs();
//!     assert!(err < 1e-4);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blueprint;
pub mod downlink;
pub mod emulator;
pub mod engine;
pub mod error;
pub mod joint;
pub mod measure;
pub mod metrics;
pub mod orchestrator;
pub mod robust;
pub mod runtime;
pub mod sched;

pub use blueprint::infer::{InferenceConfig, InferenceResult, InferenceVerdict};
pub use emulator::{EmulationConfig, EmulationReport};
pub use engine::{CellEngine, FleetEngine, NullObserver, SubframeObserver};
pub use error::BluError;
pub use joint::AccessDistribution;
pub use orchestrator::{BluConfig, BluRunReport};
pub use robust::{
    compile_churn_script, run_blu_robust, run_robust_fleet, CheckpointPolicy, OrchestratorState,
    RobustConfig, RobustRunReport, RobustSnapshot, StreamingConfig,
};
pub use runtime::supervisor::{
    run_supervised_fleet, run_supervised_fleet_with_hook, CellHealth, CellSupervisor,
    FleetHealthReport, SheddingPolicy, SupervisedFleetOutcome, SupervisorConfig, SupervisorHook,
};
