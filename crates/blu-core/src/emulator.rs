//! Trace-driven uplink emulation (paper §4.2).
//!
//! Replays a captured [`TestbedTrace`] through a scheduler at
//! sub-frame granularity, reproducing the paper's experiment setup:
//! TxOPs of 1 DL + 3 UL sub-frames, per-sub-frame CCA from the access
//! trace, orthogonal DMRS pilots, zero-forcing MU-MIMO decoding
//! against the CSI trace, MCS fixed at grant time (so deep fades
//! produce fading losses, not blocking), PF averaging of delivered
//! throughput, and the utilization/throughput accounting behind
//! Figs. 10–13 and 15–18.
//!
//! The sub-frame loop itself lives in
//! [`crate::engine::CellEngine`] — this module is the emulation
//! facade over it: [`Emulator::run`] is a back-to-back engine
//! segment, [`Emulator::run_contended`] the same segment in LBT
//! [`AccessMode::Contended`] mode, and [`run_trials`] fans
//! independent trials across the [`FleetEngine`].

use crate::engine::{AccessMode, CellEngine, EngineArena, FleetEngine, NullObserver};
use crate::error::BluError;
use crate::measure::OutcomeEstimator;
use crate::metrics::UplinkMetrics;
use crate::sched::UlScheduler;
use blu_phy::cell::CellConfig;
use blu_sim::rng::DetRng;
use blu_traces::schema::TestbedTrace;

/// Uplink traffic model (paper footnote 1: finite-buffer coupling is
/// a "simple extension" to the scheduler — realized here by zeroing
/// the rates of clients with empty queues and draining queues by
/// delivered bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Every client always has data (the paper's evaluation setting).
    Backlogged,
    /// Poisson arrivals of `burst_bits` chunks at `bursts_per_sec`
    /// per client, buffered until delivered.
    Poisson {
        /// Mean bursts per second per client.
        bursts_per_sec: f64,
        /// Bits per burst.
        burst_bits: f64,
    },
}

/// Emulation parameters.
#[derive(Debug, Clone)]
pub struct EmulationConfig {
    /// Cell configuration (antennas, RBs, TxOP shape, K, f).
    pub cell: CellConfig,
    /// Number of TxOPs to run.
    pub n_txops: u64,
    /// Link-adaptation margin subtracted from estimated SINR when
    /// picking the grant MCS (dB).
    pub mcs_margin_db: f64,
    /// Per-RB frequency-selectivity jitter amplitude (dB): adds
    /// deterministic per-(client, RB, coherence-block) variation so
    /// OFDMA has diversity to exploit.
    pub rb_jitter_db: f64,
    /// PF averaging window α (sub-frames).
    pub pf_alpha: f64,
    /// HARQ retransmission limit within a TxOP burst (0 disables
    /// HARQ; fading losses are then final). Chase combining per
    /// `blu_phy::harq`.
    pub harq_max_retx: u8,
    /// Uplink traffic model.
    pub traffic: TrafficModel,
    /// SISO NOMA reception: when two over-scheduled clients both
    /// transmit on one RB of a single-antenna eNB, attempt
    /// successive interference cancellation instead of declaring a
    /// collision (paper §5: BLU's gains apply to NOMA).
    pub noma_sic: bool,
    /// RNG seed (jitter derivation).
    pub seed: u64,
    /// Sub-frame at which the run starts reading the trace. Lets a
    /// segmented orchestrator (e.g. the robust loop's
    /// measure/speculate/fallback phases) resume mid-trace instead of
    /// replaying the same prefix.
    pub start_subframe: u64,
}

impl EmulationConfig {
    /// Defaults matching the paper's setup for a given cell config.
    pub fn new(cell: CellConfig) -> Self {
        EmulationConfig {
            cell,
            n_txops: 500,
            mcs_margin_db: 1.0,
            rb_jitter_db: 2.0,
            pf_alpha: 100.0,
            harq_max_retx: 0,
            traffic: TrafficModel::Backlogged,
            noma_sic: false,
            seed: 0x0B1E,
            start_subframe: 0,
        }
    }
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct EmulationReport {
    /// Scheduler display name.
    pub scheduler: &'static str,
    /// Accumulated counters.
    pub metrics: UplinkMetrics,
    /// Wall-clock span of the run when TxOPs were acquired through
    /// LBT contention (`None` for the idealized back-to-back mode).
    pub wall_clock: Option<blu_sim::time::Micros>,
}

/// The emulator: the classic facade over one [`CellEngine`]. Owns its
/// engine (and therefore the PF state) and drives a scheduler over a
/// trace.
pub struct Emulator<'a> {
    engine: CellEngine<'a>,
}

impl<'a> Emulator<'a> {
    /// Create an emulator; validates the trace against the cell.
    pub fn new(trace: &'a TestbedTrace, config: EmulationConfig) -> Result<Self, BluError> {
        Ok(Emulator {
            engine: CellEngine::new(trace, config)?,
        })
    }

    /// The PF throughput averages accumulated so far (one per
    /// client).
    pub fn pf_averages(&self) -> &[f64] {
        self.engine.pf_averages()
    }

    /// Seed the PF averages — used by segmented runs to carry
    /// fairness state from one emulator segment into the next.
    /// Ignores a slice of the wrong length.
    pub fn seed_pf_averages(&mut self, avg: &[f64]) {
        self.engine.seed_pf_averages(avg)
    }

    /// Adopt recycled hot-state buffers from a fleet shard's
    /// [`EngineArena`] (see [`CellEngine::adopt_arena`]).
    pub fn adopt_arena(&mut self, arena: &mut EngineArena) {
        self.engine.adopt_arena(arena)
    }

    /// Return the hot-state buffers to the arena for the shard's next
    /// trial.
    pub fn yield_arena(&mut self, arena: &mut EngineArena) {
        self.engine.yield_arena(arena)
    }

    /// Run the emulation. `estimator`, when provided, receives every
    /// sub-frame's observations (this is how the orchestrator keeps
    /// measuring during the speculative phase).
    pub fn run(
        &mut self,
        scheduler: &mut dyn UlScheduler,
        estimator: Option<&mut OutcomeEstimator>,
    ) -> EmulationReport {
        self.engine.run_segment(
            scheduler,
            estimator,
            AccessMode::BackToBack,
            &mut NullObserver,
        )
    }

    /// Run with **LBT contention**: instead of back-to-back TxOPs,
    /// the eNB acquires each TxOP through Cat-4 listen-before-talk
    /// against `enb_busy` — the union activity of the WiFi nodes it
    /// can sense. Sub-frame indices (and therefore the clients'
    /// interference state) follow the wall clock, so throughput can
    /// be reported per wall-clock second: the honest coexistence
    /// number for a loaded channel.
    pub fn run_contended(
        &mut self,
        scheduler: &mut dyn UlScheduler,
        estimator: Option<&mut OutcomeEstimator>,
        enb_busy: &blu_sim::medium::ActivityTimeline,
        lbt_rng: DetRng,
    ) -> EmulationReport {
        self.engine.run_segment(
            scheduler,
            estimator,
            AccessMode::Contended {
                busy: enb_busy,
                lbt_rng,
            },
            &mut NullObserver,
        )
    }
}

/// Run `n_trials` independent emulations of one trace in parallel,
/// returning the reports **in trial order**.
///
/// Each trial builds its own [`Emulator`] (from `config_for(t)`) and
/// its own scheduler (from `scheduler_for(t)`), so trials share
/// nothing mutable — only the trace and whatever `Send + Sync` state
/// the factories capture (typically one [`AccessDistribution`]
/// provider, whose bounded memo cache is then warmed by all workers).
/// The [`FleetEngine`]'s ordered sharded reduction makes the result
/// vector byte-identical to running the same trials in a sequential
/// loop — the property `blu-bench`'s differential tests pin down.
///
/// Two fleet-level properties ride on the executor:
///
/// * **Per-trial panic isolation** — a panic inside one trial (a
///   misbehaving scheduler, a poisoned config) surfaces as that
///   trial's [`BluError::Panicked`]; every other trial still returns
///   its report.
/// * **Per-shard arenas** — each shard threads one [`EngineArena`]
///   through its trials, so the engines' SoA hot state (block caches,
///   ZF scratch, HARQ lanes, observation pools) is allocated once per
///   shard and recycled: steady-state trials allocate nothing per
///   sub-frame.
///
/// [`AccessDistribution`]: crate::joint::AccessDistribution
#[allow(clippy::needless_lifetimes)] // `'a` names the trace borrow the boxed schedulers may hold
pub fn run_trials<'a, C, S>(
    trace: &'a TestbedTrace,
    n_trials: usize,
    config_for: C,
    scheduler_for: S,
) -> Vec<Result<EmulationReport, BluError>>
where
    C: Fn(usize) -> EmulationConfig + Sync,
    S: Fn(usize) -> Box<dyn UlScheduler + 'a> + Sync,
{
    FleetEngine::run_isolated(
        (0..n_trials).collect(),
        EngineArena::new,
        |arena, t| -> Result<EmulationReport, BluError> {
            let mut emu = Emulator::new(trace, config_for(t))?;
            emu.adopt_arena(arena);
            let mut sched = scheduler_for(t);
            let report = emu.run(sched.as_mut(), None);
            emu.yield_arena(arena);
            Ok(report)
        },
    )
    .into_iter()
    .map(|r| r.and_then(|inner| inner))
    .collect()
}

#[cfg(test)]
mod trial_tests {
    use super::*;
    use crate::joint::TopologyAccess;
    use crate::sched::{PfScheduler, SpeculativeScheduler};
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    #[test]
    fn parallel_trials_match_sequential_loop() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(20),
                q_range: (0.3, 0.6),
                ..CaptureConfig::testbed_default()
            },
            31,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let cfg_for = |t: usize| {
            let mut c = EmulationConfig::new(cell.clone());
            c.n_txops = 40;
            c.seed = 0x0B1E + t as u64;
            c
        };
        // One shared provider across all worker threads: exercises
        // the Send + Sync bounded cache for real.
        let acc = TopologyAccess::new(&trace.ground_truth);
        let par = run_trials(&trace, 6, cfg_for, |_| {
            Box::new(SpeculativeScheduler::new(&acc))
        });
        let seq: Vec<UplinkMetrics> = (0..6)
            .map(|t| {
                let mut emu = Emulator::new(&trace, cfg_for(t)).unwrap();
                emu.run(&mut SpeculativeScheduler::new(&acc), None).metrics
            })
            .collect();
        assert_eq!(par.len(), 6);
        for (t, (p, s)) in par.into_iter().zip(seq).enumerate() {
            assert_eq!(p.unwrap().metrics, s, "trial {t} diverged");
        }
    }

    #[test]
    fn trial_setup_errors_surface_per_trial() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(10),
                ..CaptureConfig::testbed_default()
            },
            32,
        );
        let reports = run_trials(
            &trace,
            3,
            |t| {
                let mut cell = CellConfig::testbed_siso();
                cell.numerology.n_rbs = 10;
                if t == 1 {
                    // More antennas than the trace's CSI carries.
                    cell.m_antennas = 64;
                }
                let mut c = EmulationConfig::new(cell);
                c.n_txops = 10;
                c
            },
            |_| Box::new(PfScheduler),
        );
        assert!(reports[0].is_ok());
        assert!(reports[1].is_err(), "bad trial must fail alone");
        assert!(reports[2].is_ok());
    }

    /// A scheduler that panics on first use — a stand-in for any bug
    /// inside one trial's sub-frame loop.
    struct PanickingScheduler;

    impl UlScheduler for PanickingScheduler {
        fn name(&self) -> &'static str {
            "panicking"
        }
        fn schedule(
            &mut self,
            _input: &crate::sched::SchedInput<'_>,
        ) -> blu_phy::grant::RbSchedule {
            panic!("scheduler blew up mid-trial");
        }
    }

    #[test]
    fn panicking_trial_is_contained_and_healthy_trials_survive() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(10),
                ..CaptureConfig::testbed_default()
            },
            33,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let cfg_for = |t: usize| {
            let mut c = EmulationConfig::new(cell.clone());
            c.n_txops = 20;
            c.seed = 0x0B1E + t as u64;
            c
        };
        let reports = run_trials(&trace, 4, cfg_for, |t| -> Box<dyn UlScheduler> {
            if t == 2 {
                Box::new(PanickingScheduler)
            } else {
                Box::new(PfScheduler)
            }
        });
        assert_eq!(reports.len(), 4);
        match &reports[2] {
            Err(BluError::Panicked(msg)) => {
                assert!(msg.contains("scheduler blew up"), "{msg}")
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
        // The healthy trials — including whichever shared trial 2's
        // shard (and therefore its rebuilt arena) — must match a
        // plain sequential run bit-for-bit.
        for t in [0usize, 1, 3] {
            let mut emu = Emulator::new(&trace, cfg_for(t)).unwrap();
            let want = emu.run(&mut PfScheduler, None).metrics;
            assert_eq!(
                reports[t].as_ref().unwrap().metrics,
                want,
                "healthy trial {t} diverged"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::TopologyAccess;
    use crate::sched::{AccessAwareScheduler, PfScheduler, SpeculativeScheduler};
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    fn small_cell() -> CellConfig {
        let mut c = CellConfig::testbed_siso();
        c.numerology.n_rbs = 10; // keep unit tests fast
        c
    }

    fn quick_trace(seed: u64) -> blu_traces::schema::TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(20),
                q_range: (0.3, 0.6),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn quick_config(n_txops: u64) -> EmulationConfig {
        let mut cfg = EmulationConfig::new(small_cell());
        cfg.n_txops = n_txops;
        cfg
    }

    #[test]
    fn pf_emulation_produces_sane_metrics() {
        let trace = quick_trace(1);
        let mut emu = Emulator::new(&trace, quick_config(200)).unwrap();
        let report = emu.run(&mut PfScheduler, None);
        let m = &report.metrics;
        assert_eq!(m.subframes, 600);
        assert!(m.rbs_scheduled > 0);
        assert!(m.rbs_utilized <= m.rbs_scheduled);
        assert!(m.bits_delivered > 0.0);
        assert!(m.rb_utilization() < 1.0, "hidden terminals must bite");
        assert!(m.rbs_blocked > 0, "blocking must occur");
    }

    #[test]
    fn blu_beats_pf_on_interference_heavy_trace() {
        // The headline claim at small scale: with ground-truth
        // topology, speculative scheduling delivers more throughput
        // and higher utilization than PF.
        let trace = quick_trace(2);
        let topo = trace.ground_truth.clone();
        let acc = TopologyAccess::new(&topo);

        let mut emu_pf = Emulator::new(&trace, quick_config(200)).unwrap();
        let pf = emu_pf.run(&mut PfScheduler, None);

        let mut emu_blu = Emulator::new(&trace, quick_config(200)).unwrap();
        let mut blu = SpeculativeScheduler::new(&acc);
        let blu_report = emu_blu.run(&mut blu, None);

        assert!(
            blu_report.metrics.rb_utilization() > pf.metrics.rb_utilization(),
            "BLU {} vs PF {}",
            blu_report.metrics.rb_utilization(),
            pf.metrics.rb_utilization()
        );
        assert!(
            blu_report.metrics.throughput_mbps() > pf.metrics.throughput_mbps(),
            "BLU {} vs PF {} Mbps",
            blu_report.metrics.throughput_mbps(),
            pf.metrics.throughput_mbps()
        );
    }

    #[test]
    fn aa_tracks_pf_without_boosting_utilization() {
        // The paper's observation: AA cannot compensate for
        // under-utilization during access (it never over-schedules).
        let trace = quick_trace(3);
        let p: Vec<f64> = (0..trace.ground_truth.n_clients)
            .map(|i| trace.ground_truth.p_individual(i))
            .collect();
        let mut emu = Emulator::new(&trace, quick_config(150)).unwrap();
        let aa = emu.run(&mut AccessAwareScheduler::new(p), None);
        let mut emu2 = Emulator::new(&trace, quick_config(150)).unwrap();
        let pf = emu2.run(&mut PfScheduler, None);
        let ratio = aa.metrics.rb_utilization() / pf.metrics.rb_utilization().max(1e-9);
        assert!(
            (0.6..1.4).contains(&ratio),
            "AA utilization ratio vs PF: {ratio}"
        );
    }

    #[test]
    fn estimator_receives_observations() {
        let trace = quick_trace(4);
        let mut est = OutcomeEstimator::new(trace.ground_truth.n_clients);
        let mut emu = Emulator::new(&trace, quick_config(100)).unwrap();
        emu.run(&mut PfScheduler, Some(&mut est));
        // Scheduled clients must have been observed, and the measured
        // access probability should be in the right region.
        let observed: Vec<usize> = (0..trace.ground_truth.n_clients)
            .filter(|&i| est.stats().p_individual(i).is_some())
            .collect();
        assert!(!observed.is_empty());
        for i in observed {
            let emp = est.stats().p_individual(i).unwrap();
            let truth = trace.ground_truth.p_individual(i);
            assert!(
                (emp - truth).abs() < 0.25,
                "client {i}: measured {emp} vs truth {truth}"
            );
        }
    }

    #[test]
    fn emulation_is_deterministic() {
        let trace = quick_trace(5);
        let mut a = Emulator::new(&trace, quick_config(50)).unwrap();
        let ra = a.run(&mut PfScheduler, None);
        let mut b = Emulator::new(&trace, quick_config(50)).unwrap();
        let rb = b.run(&mut PfScheduler, None);
        assert_eq!(ra.metrics, rb.metrics);
    }

    #[test]
    fn collisions_occur_only_with_overscheduling() {
        let trace = quick_trace(6);
        let mut emu = Emulator::new(&trace, quick_config(150)).unwrap();
        let pf = emu.run(&mut PfScheduler, None);
        assert_eq!(pf.metrics.rbs_collided, 0, "PF cannot collide (SISO)");
    }
}

#[cfg(test)]
mod contended_tests {
    use super::*;
    use crate::sched::PfScheduler;
    use blu_sim::medium::ActivityTimeline;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};
    use blu_wifi::onoff::OnOffSource;

    fn quick_trace(seed: u64) -> blu_traces::schema::TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(30),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn small_config(n_txops: u64) -> EmulationConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut cfg = EmulationConfig::new(cell);
        cfg.n_txops = n_txops;
        cfg
    }

    #[test]
    fn idle_channel_contention_is_nearly_free() {
        let trace = quick_trace(1);
        let mut emu = Emulator::new(&trace, small_config(200)).unwrap();
        let report = emu.run_contended(
            &mut PfScheduler,
            None,
            &ActivityTimeline::new(),
            DetRng::seed_from_u64(1),
        );
        let wall = report.wall_clock.unwrap();
        // 200 TxOPs × 4 sub-frames = 800 ms of airtime; LBT on an
        // idle channel adds ≤ ~1 sub-frame per TxOP.
        assert!(wall >= Micros::from_millis(800));
        assert!(wall <= Micros::from_millis(1_100), "wall {wall}");
        assert_eq!(report.metrics.subframes, 600);
    }

    #[test]
    fn busy_channel_stretches_wall_clock() {
        let trace = quick_trace(2);
        let mut rng = DetRng::seed_from_u64(3);
        // Heavily loaded neighbour the eNB must defer to: 85% duty
        // in 20 ms bursts.
        let busy =
            OnOffSource::with_duty_cycle(0.85, 20_000.0).generate(Micros::from_secs(600), &mut rng);
        let mut emu_idle = Emulator::new(&trace, small_config(150)).unwrap();
        let idle = emu_idle.run_contended(
            &mut PfScheduler,
            None,
            &ActivityTimeline::new(),
            DetRng::seed_from_u64(4),
        );
        let mut emu_busy = Emulator::new(&trace, small_config(150)).unwrap();
        let contended =
            emu_busy.run_contended(&mut PfScheduler, None, &busy, DetRng::seed_from_u64(4));
        let w_idle = idle.wall_clock.unwrap().as_u64();
        let w_busy = contended.wall_clock.unwrap().as_u64();
        // 85% duty in 20 ms bursts: each TxOP waits out the residual
        // burst (~20 ms) most of the time — wall clock several times
        // the idle-channel run.
        assert!(
            w_busy as f64 > w_idle as f64 * 2.0,
            "busy {w_busy} vs idle {w_idle}"
        );
        // Same number of TxOPs delivered, just later.
        assert_eq!(idle.metrics.subframes, contended.metrics.subframes);
    }

    #[test]
    fn contended_run_is_deterministic() {
        let trace = quick_trace(5);
        let mut rng = DetRng::seed_from_u64(7);
        let busy =
            OnOffSource::with_duty_cycle(0.3, 2_000.0).generate(Micros::from_secs(60), &mut rng);
        let mut a = Emulator::new(&trace, small_config(80)).unwrap();
        let ra = a.run_contended(&mut PfScheduler, None, &busy, DetRng::seed_from_u64(9));
        let mut b = Emulator::new(&trace, small_config(80)).unwrap();
        let rb = b.run_contended(&mut PfScheduler, None, &busy, DetRng::seed_from_u64(9));
        assert_eq!(ra.metrics, rb.metrics);
        assert_eq!(ra.wall_clock, rb.wall_clock);
    }
}

#[cfg(test)]
mod harq_tests {
    use super::*;
    use crate::sched::PfScheduler;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    /// Low SNR + aggressive MCS: HARQ must convert a chunk of fading
    /// losses into delivered bits without touching blocking losses.
    #[test]
    fn harq_recovers_fading_losses_only() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(30),
                snr_range_db: (7.0, 11.0),
                q_range: (0.3, 0.5),
                ..CaptureConfig::testbed_default()
            },
            11,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut base = EmulationConfig::new(cell);
        base.n_txops = 800;
        base.mcs_margin_db = -2.0;

        let off = Emulator::new(&trace, base.clone())
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let mut cfg_on = base.clone();
        cfg_on.harq_max_retx = 3;
        let on = Emulator::new(&trace, cfg_on)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;

        assert!(
            off.rbs_faded > 100,
            "need fading pressure: {}",
            off.rbs_faded
        );
        assert!(
            on.rbs_faded < off.rbs_faded,
            "HARQ should reduce fading losses: {} vs {}",
            on.rbs_faded,
            off.rbs_faded
        );
        assert!(on.bits_delivered > off.bits_delivered);
        // HARQ cannot help blocked grants (no energy to combine).
        let diff = (on.rbs_blocked as f64 - off.rbs_blocked as f64).abs();
        assert!(
            diff / (off.rbs_blocked.max(1) as f64) < 0.01,
            "blocking must be untouched: {} vs {}",
            on.rbs_blocked,
            off.rbs_blocked
        );
    }

    #[test]
    fn harq_is_deterministic_and_off_by_default() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(10),
                ..CaptureConfig::testbed_default()
            },
            12,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let cfg = EmulationConfig::new(cell);
        assert_eq!(cfg.harq_max_retx, 0);
        let mut cfg = cfg;
        cfg.n_txops = 100;
        cfg.harq_max_retx = 2;
        let a = Emulator::new(&trace, cfg.clone())
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let b = Emulator::new(&trace, cfg)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod traffic_tests {
    use super::*;
    use crate::sched::PfScheduler;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    fn quick_trace(seed: u64) -> blu_traces::schema::TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(20),
                q_range: (0.2, 0.4),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn cfg(n_txops: u64) -> EmulationConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut c = EmulationConfig::new(cell);
        c.n_txops = n_txops;
        c
    }

    #[test]
    fn light_load_caps_delivery_at_offered_traffic() {
        let trace = quick_trace(21);
        let mut light = cfg(2_000);
        // 50 bursts/s × 2 kbit = 100 kbit/s per UE, far below capacity.
        light.traffic = TrafficModel::Poisson {
            bursts_per_sec: 50.0,
            burst_bits: 2_000.0,
        };
        let m = Emulator::new(&trace, light)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let n = trace.ground_truth.n_clients as f64;
        // Arrivals accrue over all 4 TxOP sub-frames but throughput
        // is accounted per UL sub-frame (3 of 4): rescale.
        let offered_mbps = n * 50.0 * 2_000.0 / 1e6 * (4.0 / 3.0);
        let got = m.throughput_mbps();
        // Delivery cannot exceed offered load (plus queueing slack),
        // and under light load most of it should get through.
        assert!(got <= offered_mbps * 1.1, "{got} vs offered {offered_mbps}");
        assert!(got >= offered_mbps * 0.4, "{got} vs offered {offered_mbps}");
    }

    #[test]
    fn backlogged_delivers_more_than_finite_load() {
        let trace = quick_trace(22);
        let back = Emulator::new(&trace, cfg(500))
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let mut finite = cfg(500);
        finite.traffic = TrafficModel::Poisson {
            bursts_per_sec: 20.0,
            burst_bits: 1_000.0,
        };
        let fin = Emulator::new(&trace, finite)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        assert!(back.bits_delivered > fin.bits_delivered * 2.0);
    }

    #[test]
    fn empty_queues_release_grants() {
        // With tiny offered load, most sub-frames should have few or
        // no scheduled RBs (rates zeroed for empty queues).
        let trace = quick_trace(23);
        let mut c = cfg(500);
        c.traffic = TrafficModel::Poisson {
            bursts_per_sec: 2.0,
            burst_bits: 500.0,
        };
        let m = Emulator::new(&trace, c)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let full_allocation = m.subframes * 10;
        assert!(
            m.rbs_scheduled < full_allocation / 2,
            "{} of {} RBs scheduled despite near-empty queues",
            m.rbs_scheduled,
            full_allocation
        );
    }

    #[test]
    fn finite_buffer_is_deterministic() {
        let trace = quick_trace(24);
        let mut c = cfg(200);
        c.traffic = TrafficModel::Poisson {
            bursts_per_sec: 100.0,
            burst_bits: 3_000.0,
        };
        let a = Emulator::new(&trace, c.clone())
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let b = Emulator::new(&trace, c)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod noma_tests {
    use super::*;
    use crate::joint::TopologyAccess;
    use crate::sched::{PfScheduler, SpeculativeScheduler};
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    fn heavy_trace(seed: u64) -> blu_traces::schema::TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(30),
                q_range: (0.4, 0.65),
                // Wide SNR spread: power-domain separation is viable.
                snr_range_db: (8.0, 30.0),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn cfg(noma: bool) -> EmulationConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut c = EmulationConfig::new(cell);
        c.n_txops = 400;
        c.noma_sic = noma;
        c
    }

    #[test]
    fn sic_rescues_overscheduling_collisions() {
        let trace = heavy_trace(41);
        let acc = TopologyAccess::new(&trace.ground_truth);
        let plain = Emulator::new(&trace, cfg(false))
            .unwrap()
            .run(&mut SpeculativeScheduler::new(&acc), None)
            .metrics;
        let noma = Emulator::new(&trace, cfg(true))
            .unwrap()
            .run(&mut SpeculativeScheduler::new(&acc), None)
            .metrics;
        assert!(plain.rbs_collided > 20, "need collision pressure");
        assert!(
            noma.rbs_collided < plain.rbs_collided,
            "SIC should resolve some pile-ups: {} vs {}",
            noma.rbs_collided,
            plain.rbs_collided
        );
        assert!(noma.bits_delivered > plain.bits_delivered);
    }

    #[test]
    fn noma_is_noop_for_pf() {
        // PF never over-schedules, so SIC has nothing to rescue.
        let trace = heavy_trace(42);
        let a = Emulator::new(&trace, cfg(false))
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let b = Emulator::new(&trace, cfg(true))
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        assert_eq!(a, b);
    }

    #[test]
    fn noma_estimator_still_counts_collisions_as_access() {
        // Both SIC outcomes (Success or Collision) prove the client
        // transmitted — the access statistics stay unbiased.
        let trace = heavy_trace(43);
        let acc = TopologyAccess::new(&trace.ground_truth);
        let mut est = crate::measure::OutcomeEstimator::new(trace.ground_truth.n_clients);
        Emulator::new(&trace, cfg(true))
            .unwrap()
            .run(&mut SpeculativeScheduler::new(&acc), Some(&mut est));
        for i in 0..trace.ground_truth.n_clients {
            if let Some(p) = est.stats().p_individual(i) {
                let truth = trace.ground_truth.p_individual(i);
                assert!((p - truth).abs() < 0.15, "UE {i}: {p} vs {truth}");
            }
        }
    }
}
