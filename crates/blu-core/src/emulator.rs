//! Trace-driven uplink emulation (paper §4.2).
//!
//! Replays a captured [`TestbedTrace`] through a scheduler at
//! sub-frame granularity, reproducing the paper's experiment setup:
//! TxOPs of 1 DL + 3 UL sub-frames, per-sub-frame CCA from the access
//! trace, orthogonal DMRS pilots, zero-forcing MU-MIMO decoding
//! against the CSI trace, MCS fixed at grant time (so deep fades
//! produce fading losses, not blocking), PF averaging of delivered
//! throughput, and the utilization/throughput accounting behind
//! Figs. 10–13 and 15–18.

use crate::error::BluError;
use crate::measure::OutcomeEstimator;
use crate::metrics::UplinkMetrics;
use crate::sched::{mimo_penalty, MatrixRates, PfAverager, SchedInput, UlScheduler};
use blu_phy::cell::CellConfig;
use blu_phy::mcs::{Cqi, McsTable};
use blu_phy::mimo::zf_sinrs;
use blu_phy::outcome::{classify_rb, DecodeOutcome, RbObservation};
use blu_sim::clientset::ClientSet;
use blu_sim::power::Db;
use blu_sim::rng::DetRng;
use blu_sim::time::SubframeIndex;
use blu_traces::schema::TestbedTrace;
use std::collections::HashMap;

/// In-flight HARQ processes of one TxOP burst, keyed by (client, RB).
type HarqState = HashMap<(usize, usize), blu_phy::harq::HarqProcess>;

/// Uplink traffic model (paper footnote 1: finite-buffer coupling is
/// a "simple extension" to the scheduler — realized here by zeroing
/// the rates of clients with empty queues and draining queues by
/// delivered bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Every client always has data (the paper's evaluation setting).
    Backlogged,
    /// Poisson arrivals of `burst_bits` chunks at `bursts_per_sec`
    /// per client, buffered until delivered.
    Poisson {
        /// Mean bursts per second per client.
        bursts_per_sec: f64,
        /// Bits per burst.
        burst_bits: f64,
    },
}

/// Emulation parameters.
#[derive(Debug, Clone)]
pub struct EmulationConfig {
    /// Cell configuration (antennas, RBs, TxOP shape, K, f).
    pub cell: CellConfig,
    /// Number of TxOPs to run.
    pub n_txops: u64,
    /// Link-adaptation margin subtracted from estimated SINR when
    /// picking the grant MCS (dB).
    pub mcs_margin_db: f64,
    /// Per-RB frequency-selectivity jitter amplitude (dB): adds
    /// deterministic per-(client, RB, coherence-block) variation so
    /// OFDMA has diversity to exploit.
    pub rb_jitter_db: f64,
    /// PF averaging window α (sub-frames).
    pub pf_alpha: f64,
    /// HARQ retransmission limit within a TxOP burst (0 disables
    /// HARQ; fading losses are then final). Chase combining per
    /// `blu_phy::harq`.
    pub harq_max_retx: u8,
    /// Uplink traffic model.
    pub traffic: TrafficModel,
    /// SISO NOMA reception: when two over-scheduled clients both
    /// transmit on one RB of a single-antenna eNB, attempt
    /// successive interference cancellation instead of declaring a
    /// collision (paper §5: BLU's gains apply to NOMA).
    pub noma_sic: bool,
    /// RNG seed (jitter derivation).
    pub seed: u64,
    /// Sub-frame at which the run starts reading the trace. Lets a
    /// segmented orchestrator (e.g. the robust loop's
    /// measure/speculate/fallback phases) resume mid-trace instead of
    /// replaying the same prefix.
    pub start_subframe: u64,
}

impl EmulationConfig {
    /// Defaults matching the paper's setup for a given cell config.
    pub fn new(cell: CellConfig) -> Self {
        EmulationConfig {
            cell,
            n_txops: 500,
            mcs_margin_db: 1.0,
            rb_jitter_db: 2.0,
            pf_alpha: 100.0,
            harq_max_retx: 0,
            traffic: TrafficModel::Backlogged,
            noma_sic: false,
            seed: 0x0B1E,
            start_subframe: 0,
        }
    }
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct EmulationReport {
    /// Scheduler display name.
    pub scheduler: &'static str,
    /// Accumulated counters.
    pub metrics: UplinkMetrics,
    /// Wall-clock span of the run when TxOPs were acquired through
    /// LBT contention (`None` for the idealized back-to-back mode).
    pub wall_clock: Option<blu_sim::time::Micros>,
}

/// Deterministic per-(client, RB, block) frequency-selectivity jitter
/// in dB, zero-mean uniform in ±`amp`.
fn rb_jitter(seed: u64, ue: usize, rb: usize, block: u64, amp: f64) -> f64 {
    if amp == 0.0 {
        return 0.0;
    }
    let key = (ue as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((rb as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(block.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(seed);
    let mut rng = DetRng::seed_from_u64(key);
    rng.range_f64(-amp, amp)
}

/// The emulator: owns the PF state and drives a scheduler over a
/// trace.
pub struct Emulator<'a> {
    trace: &'a TestbedTrace,
    config: EmulationConfig,
    mcs: McsTable,
    averager: PfAverager,
    /// Per-client buffered bits (finite-buffer mode only).
    queues: Vec<f64>,
    /// Arrival RNG (finite-buffer mode only).
    traffic_rng: DetRng,
}

impl<'a> Emulator<'a> {
    /// Create an emulator; validates the trace against the cell.
    pub fn new(trace: &'a TestbedTrace, config: EmulationConfig) -> Result<Self, BluError> {
        trace.validate().map_err(BluError::InvalidTrace)?;
        config.cell.validate()?;
        if trace.csi.n_antennas < config.cell.m_antennas {
            return Err(BluError::InvalidConfig(format!(
                "trace CSI has {} antennas but the cell needs {}",
                trace.csi.n_antennas, config.cell.m_antennas
            )));
        }
        let n = trace.ground_truth.n_clients;
        Ok(Emulator {
            trace,
            averager: PfAverager::new(n, config.pf_alpha),
            mcs: McsTable::release10(),
            queues: vec![0.0; n],
            traffic_rng: DetRng::seed_from_u64(config.seed ^ 0x007A_FF1C),
            config,
        })
    }

    /// The PF throughput averages accumulated so far (one per
    /// client).
    pub fn pf_averages(&self) -> &[f64] {
        &self.averager.avg
    }

    /// Seed the PF averages — used by segmented runs to carry
    /// fairness state from one emulator segment into the next.
    /// Ignores a slice of the wrong length.
    pub fn seed_pf_averages(&mut self, avg: &[f64]) {
        if avg.len() == self.averager.avg.len() {
            self.averager.avg.copy_from_slice(avg);
        }
    }

    /// Advance the traffic model by one sub-frame (1 ms): new arrivals
    /// land in the queues. No-op when backlogged.
    fn traffic_tick(&mut self) {
        if let TrafficModel::Poisson {
            bursts_per_sec,
            burst_bits,
        } = self.config.traffic
        {
            let p_arrival = (bursts_per_sec / 1_000.0).min(1.0);
            for q in self.queues.iter_mut() {
                if self.traffic_rng.chance(p_arrival) {
                    *q += burst_bits;
                }
            }
        }
    }

    /// Whether a client currently has data to send.
    fn has_data(&self, ue: usize) -> bool {
        matches!(self.config.traffic, TrafficModel::Backlogged) || self.queues[ue] > 0.0
    }

    /// Drain a client's queue by delivered bits.
    fn drain(&mut self, ue: usize, bits: f64) {
        if !matches!(self.config.traffic, TrafficModel::Backlogged) {
            self.queues[ue] = (self.queues[ue] - bits).max(0.0);
        }
    }

    /// Scalar channel power gain of a client at a sub-frame (average
    /// over the eNB antennas, mean ≈ 1).
    fn channel_gain(&self, ue: usize, sf: SubframeIndex) -> f64 {
        let h = self.trace.csi.channel(ue, sf);
        let m = self.config.cell.m_antennas;
        h.iter().take(m).map(|c| c.norm_sq()).sum::<f64>() / m as f64
    }

    /// True single-stream SINR (dB) of a client on an RB at a
    /// sub-frame.
    fn true_sinr_db(&self, ue: usize, rb: usize, sf: SubframeIndex) -> f64 {
        let block = sf.0 / self.trace.csi.coherence_subframes;
        self.trace.mean_snr_db[ue]
            + 10.0 * self.channel_gain(ue, sf).max(1e-9).log10()
            + rb_jitter(self.config.seed, ue, rb, block, self.config.rb_jitter_db)
    }

    /// Build the scheduler's grant-time rate matrix at a sub-frame.
    /// Clients with empty buffers get rate 0 (footnote-1 coupling:
    /// the scheduler simply never grants them).
    fn rate_matrix(&self, sf: SubframeIndex) -> MatrixRates {
        let n = self.trace.ground_truth.n_clients;
        let n_rbs = self.config.cell.numerology.n_rbs;
        MatrixRates::build(n, n_rbs, |ue, rb| {
            if !self.has_data(ue) {
                return 0.0;
            }
            let est = self.true_sinr_db(ue, rb, sf) - self.config.mcs_margin_db;
            self.mcs
                .rate_for_sinr(Db(est), &self.config.cell.numerology)
        })
    }

    /// Grant-time MCS for a client on an RB given the group size the
    /// scheduler built (applies the expected ZF penalty).
    fn grant_cqi(&self, ue: usize, rb: usize, sf: SubframeIndex, group_size: usize) -> Cqi {
        let m = self.config.cell.m_antennas;
        let expected_streams = group_size.min(m);
        let pen = mimo_penalty(expected_streams, m).max(1e-3);
        let est = self.true_sinr_db(ue, rb, sf) - self.config.mcs_margin_db + 10.0 * pen.log10();
        self.mcs.cqi_for_sinr(Db(est))
    }

    /// Decode one RB at one sub-frame: who transmitted, ZF SINRs,
    /// per-client outcomes. `harq` holds the burst's in-flight
    /// processes keyed by (client, RB); pass `None` to disable.
    fn decode_rb(
        &self,
        rb: usize,
        sf: SubframeIndex,
        group: ClientSet,
        accessible: ClientSet,
        grant_sf: SubframeIndex,
        mut harq: Option<&mut HarqState>,
    ) -> RbObservation {
        let m = self.config.cell.m_antennas;
        // The cyclic-shift budget must accommodate the whole group
        // (guaranteed by CellConfig::validate's f·M ≤ 8 cap).
        debug_assert!(
            blu_phy::pilot::PilotAssignment::for_group(group).is_some(),
            "group exceeds orthogonal pilot budget"
        );
        let transmitting = group.intersection(accessible);
        // DMRS pilot detection: cyclic shifts keep over-scheduled
        // pilots orthogonal, so each pilot's SINR is its single-stream
        // SNR (no inter-stream interference); detection fails only in
        // a very deep fade (below the −10 dB correlation floor).
        let pilots = blu_phy::pilot::detect_pilots(transmitting, |ue| {
            Db(self.trace.mean_snr_db[ue] + 10.0 * self.channel_gain(ue, sf).max(1e-9).log10())
        });
        let transmitting = pilots.detected;
        if transmitting.len() > m {
            // SISO NOMA: a 2-stream pile-up may still be separable by
            // successive interference cancellation.
            if self.config.noma_sic && m == 1 && transmitting.len() == 2 {
                return self.decode_rb_noma(rb, sf, group, transmitting, grant_sf);
            }
            return classify_rb(group, transmitting, m, |_| None);
        }
        // Zero-forcing decode of ≤ M streams.
        let members: Vec<usize> = transmitting.iter().collect();
        let block = sf.0 / self.trace.csi.coherence_subframes;
        let channels: Vec<Vec<blu_sim::fading::Complex>> = members
            .iter()
            .map(|&ue| self.trace.csi.channel(ue, sf)[..m].to_vec())
            .collect();
        let powers: Vec<f64> = members
            .iter()
            .map(|&ue| {
                let jit = rb_jitter(self.config.seed, ue, rb, block, self.config.rb_jitter_db);
                10f64.powf((self.trace.mean_snr_db[ue] + jit) / 10.0)
            })
            .collect();
        let sinrs = zf_sinrs(&channels, &powers, 1.0);
        let group_size = group.len();
        // Pre-compute per-transmitter decode results (HARQ mutates
        // state, so this cannot live in the classify closure).
        let mut results: Vec<(usize, Option<f64>)> = Vec::with_capacity(members.len());
        for (idx, &ue) in members.iter().enumerate() {
            let cqi = self.grant_cqi(ue, rb, grant_sf, group_size);
            let realized_linear = match &sinrs {
                Some(s) => s[idx].max(0.0),
                None => 0.0, // rank-deficient channel: no usable energy
            };
            let bits = self.mcs.bits_per_rb(cqi, &self.config.cell.numerology);
            let decoded = if !cqi.is_usable() {
                false
            } else if self
                .mcs
                .decodes(cqi, Db(10.0 * realized_linear.max(1e-12).log10()))
            {
                // Clean first-shot decode; drop any stale process.
                if let Some(h) = harq.as_deref_mut() {
                    h.remove(&(ue, rb));
                }
                true
            } else if let Some(h) = harq.as_deref_mut() {
                // Fading loss: soft-combine with the burst's pending
                // process (or open one).
                use blu_phy::harq::{HarqOutcome, HarqProcess};
                match h.get_mut(&(ue, rb)) {
                    Some(p) => match p.receive_retransmission(realized_linear, &self.mcs) {
                        HarqOutcome::Decoded => {
                            h.remove(&(ue, rb));
                            true
                        }
                        HarqOutcome::Exhausted => {
                            h.remove(&(ue, rb));
                            false
                        }
                        HarqOutcome::Pending => false,
                    },
                    None => {
                        h.insert(
                            (ue, rb),
                            HarqProcess::new(cqi, realized_linear, self.config.harq_max_retx),
                        );
                        false
                    }
                }
            } else {
                false // fading loss, HARQ disabled
            };
            results.push((ue, if decoded { Some(bits) } else { None }));
        }
        classify_rb(group, transmitting, m, |ue| {
            results
                .iter()
                .find(|&&(u, _)| u == ue)
                .and_then(|&(_, r)| r)
        })
    }

    /// SIC decode of exactly two superposed SISO streams: outcomes are
    /// `Success` for decoded streams and `Collision` for the rest.
    fn decode_rb_noma(
        &self,
        rb: usize,
        sf: SubframeIndex,
        group: ClientSet,
        transmitting: ClientSet,
        grant_sf: SubframeIndex,
    ) -> RbObservation {
        let members: Vec<usize> = transmitting.iter().collect();
        let block = sf.0 / self.trace.csi.coherence_subframes;
        let powers: Vec<f64> = members
            .iter()
            .map(|&ue| {
                let jit = rb_jitter(self.config.seed, ue, rb, block, self.config.rb_jitter_db);
                10f64.powf((self.trace.mean_snr_db[ue] + jit) / 10.0)
                    * self.channel_gain(ue, sf).max(1e-9)
            })
            .collect();
        let group_size = group.len();
        let decoded = blu_phy::noma::sic_decode(&powers, 1.0, |idx, sinr| {
            let ue = members[idx];
            let cqi = self.grant_cqi(ue, rb, grant_sf, group_size);
            cqi.is_usable() && self.mcs.decodes(cqi, Db(10.0 * sinr.max(1e-12).log10()))
        });
        let outcomes = group
            .iter()
            .map(|ue| {
                let outcome = if !transmitting.contains(ue) {
                    DecodeOutcome::Blocked
                } else if let Some(idx) = members.iter().position(|&u| u == ue) {
                    if decoded.contains(&idx) {
                        let cqi = self.grant_cqi(ue, rb, grant_sf, group_size);
                        DecodeOutcome::Success {
                            bits: self.mcs.bits_per_rb(cqi, &self.config.cell.numerology),
                        }
                    } else {
                        DecodeOutcome::Collision
                    }
                } else {
                    DecodeOutcome::Collision
                };
                (ue, outcome)
            })
            .collect();
        RbObservation {
            scheduled: group,
            outcomes,
        }
    }

    /// Run the emulation. `estimator`, when provided, receives every
    /// sub-frame's observations (this is how the orchestrator keeps
    /// measuring during the speculative phase).
    pub fn run(
        &mut self,
        scheduler: &mut dyn UlScheduler,
        mut estimator: Option<&mut OutcomeEstimator>,
    ) -> EmulationReport {
        let n = self.trace.ground_truth.n_clients;
        let n_rbs = self.config.cell.numerology.n_rbs;
        let mut metrics = UplinkMetrics::new(n);
        let mut sf = SubframeIndex(self.config.start_subframe);
        for _ in 0..self.config.n_txops {
            // DL part of the TxOP (grants go out here); traffic keeps
            // arriving while the eNB transmits.
            for _ in 0..self.config.cell.txop.dl_subframes {
                self.traffic_tick();
            }
            sf = sf.advance(self.config.cell.txop.dl_subframes);
            let grant_sf = sf;
            // One schedule per TxOP, reused over the UL burst (the
            // paper's 3-sub-frame grants).
            let rates = self.rate_matrix(grant_sf);
            let input = SchedInput {
                n_clients: n,
                n_rbs,
                m_antennas: self.config.cell.m_antennas,
                k_max: self.config.cell.max_ues_per_subframe,
                max_group: self.config.cell.max_group_size(),
                rates: &rates,
                avg_tput: &self.averager.avg,
            };
            let schedule = scheduler.schedule(&input);
            let mut harq: Option<HarqState> = if self.config.harq_max_retx > 0 {
                Some(HashMap::new())
            } else {
                None
            };
            for _ in 0..self.config.cell.txop.ul_subframes {
                self.traffic_tick();
                let accessible = self.trace.access.at(sf);
                let mut delivered = vec![0.0; n];
                // Transport blocks only carry real payload: cap each
                // client's deliverable bits at its queue contents
                // (backlogged mode: unlimited).
                let mut sendable: Vec<f64> = (0..n)
                    .map(|ue| {
                        if matches!(self.config.traffic, TrafficModel::Backlogged) {
                            f64::INFINITY
                        } else {
                            self.queues[ue]
                        }
                    })
                    .collect();
                let mut observations = Vec::with_capacity(n_rbs);
                let mut all_rbs_utilized = true;
                for rb in 0..n_rbs {
                    let group = schedule.group(rb);
                    if group.is_empty() {
                        all_rbs_utilized = false;
                        continue;
                    }
                    metrics.rbs_scheduled += 1;
                    let obs = self.decode_rb(rb, sf, group, accessible, grant_sf, harq.as_mut());
                    let bits = obs.delivered_bits();
                    if bits > 0.0 {
                        metrics.rbs_utilized += 1;
                    } else {
                        all_rbs_utilized = false;
                        if obs.collided() {
                            metrics.rbs_collided += 1;
                        } else if obs.transmitters().is_empty() {
                            metrics.rbs_blocked += 1;
                        } else {
                            metrics.rbs_faded += 1;
                        }
                    }
                    let mut credited_on_rb = 0.0;
                    for &(ue, outcome) in &obs.outcomes {
                        if let DecodeOutcome::Success { bits } = outcome {
                            let credited = bits.min(sendable[ue]);
                            sendable[ue] -= credited;
                            delivered[ue] += credited;
                            metrics.bits_per_client[ue] += credited;
                            credited_on_rb += credited;
                        }
                    }
                    metrics.bits_delivered += credited_on_rb;
                    observations.push(obs);
                }
                metrics.subframes += 1;
                if all_rbs_utilized && !observations.is_empty() {
                    metrics.fully_utilized_subframes += 1;
                }
                if let Some(est) = estimator.as_deref_mut() {
                    est.record_subframe(&observations);
                }
                for (ue, &bits) in delivered.iter().enumerate() {
                    if bits > 0.0 {
                        self.drain(ue, bits);
                    }
                }
                self.averager.update(&delivered);
                sf = sf.next();
            }
        }
        EmulationReport {
            scheduler: scheduler.name(),
            metrics,
            wall_clock: None,
        }
    }

    /// Run with **LBT contention**: instead of back-to-back TxOPs,
    /// the eNB acquires each TxOP through Cat-4 listen-before-talk
    /// against `enb_busy` — the union activity of the WiFi nodes it
    /// can sense. Sub-frame indices (and therefore the clients'
    /// interference state) follow the wall clock, so throughput can
    /// be reported per wall-clock second: the honest coexistence
    /// number for a loaded channel.
    pub fn run_contended(
        &mut self,
        scheduler: &mut dyn UlScheduler,
        mut estimator: Option<&mut OutcomeEstimator>,
        enb_busy: &blu_sim::medium::ActivityTimeline,
        lbt_rng: DetRng,
    ) -> EmulationReport {
        use blu_phy::laa::{Lbt, LbtConfig};
        use blu_sim::time::{Micros, SUBFRAME_US};
        let n = self.trace.ground_truth.n_clients;
        let n_rbs = self.config.cell.numerology.n_rbs;
        let mut metrics = UplinkMetrics::new(n);
        let mut lbt = Lbt::new(LbtConfig::default(), lbt_rng);
        let mut now = Micros::ZERO;
        for _ in 0..self.config.n_txops {
            // Win the channel, then align to the next sub-frame
            // boundary (LTE transmissions start on boundaries; the
            // reservation-signal gap is charged to the TxOP).
            let acquired = lbt.acquire(enb_busy, now);
            let start_sf = acquired.as_u64().div_ceil(SUBFRAME_US);
            let mut sf = SubframeIndex(start_sf);
            sf = sf.advance(self.config.cell.txop.dl_subframes);
            let grant_sf = sf;
            let rates = self.rate_matrix(grant_sf);
            let input = SchedInput {
                n_clients: n,
                n_rbs,
                m_antennas: self.config.cell.m_antennas,
                k_max: self.config.cell.max_ues_per_subframe,
                max_group: self.config.cell.max_group_size(),
                rates: &rates,
                avg_tput: &self.averager.avg,
            };
            let schedule = scheduler.schedule(&input);
            for _ in 0..self.config.cell.txop.ul_subframes {
                let accessible = self.trace.access.at(sf);
                let mut delivered = vec![0.0; n];
                let mut observations = Vec::with_capacity(n_rbs);
                for rb in 0..n_rbs {
                    let group = schedule.group(rb);
                    if group.is_empty() {
                        continue;
                    }
                    metrics.rbs_scheduled += 1;
                    let obs = self.decode_rb(rb, sf, group, accessible, grant_sf, None);
                    let bits = obs.delivered_bits();
                    if bits > 0.0 {
                        metrics.rbs_utilized += 1;
                    } else if obs.collided() {
                        metrics.rbs_collided += 1;
                    } else if obs.transmitters().is_empty() {
                        metrics.rbs_blocked += 1;
                    } else {
                        metrics.rbs_faded += 1;
                    }
                    for &(ue, outcome) in &obs.outcomes {
                        if let blu_phy::outcome::DecodeOutcome::Success { bits } = outcome {
                            delivered[ue] += bits;
                            metrics.bits_per_client[ue] += bits;
                        }
                    }
                    metrics.bits_delivered += bits;
                    observations.push(obs);
                }
                metrics.subframes += 1;
                if let Some(est) = estimator.as_deref_mut() {
                    est.record_subframe(&observations);
                }
                self.averager.update(&delivered);
                sf = sf.next();
            }
            now = sf.start();
            lbt.reset_cw();
        }
        EmulationReport {
            scheduler: scheduler.name(),
            metrics,
            wall_clock: Some(now),
        }
    }
}

/// Run `n_trials` independent emulations of one trace in parallel,
/// returning the reports **in trial order**.
///
/// Each trial builds its own [`Emulator`] (from `config_for(t)`) and
/// its own scheduler (from `scheduler_for(t)`), so trials share
/// nothing mutable — only the trace and whatever `Send + Sync` state
/// the factories capture (typically one [`AccessDistribution`]
/// provider, whose bounded memo cache is then warmed by all workers).
/// The rayon shim's ordered reduction makes the result vector
/// byte-identical to running the same trials in a sequential loop —
/// the property `blu-bench`'s differential tests pin down.
///
/// [`AccessDistribution`]: crate::joint::AccessDistribution
#[allow(clippy::needless_lifetimes)] // `'a` names the trace borrow the boxed schedulers may hold
pub fn run_trials<'a, C, S>(
    trace: &'a TestbedTrace,
    n_trials: usize,
    config_for: C,
    scheduler_for: S,
) -> Vec<Result<EmulationReport, BluError>>
where
    C: Fn(usize) -> EmulationConfig + Sync,
    S: Fn(usize) -> Box<dyn UlScheduler + 'a> + Sync,
{
    use rayon::prelude::*;
    (0..n_trials)
        .into_par_iter()
        .map(|t| {
            let mut emu = Emulator::new(trace, config_for(t))?;
            let mut sched = scheduler_for(t);
            Ok(emu.run(sched.as_mut(), None))
        })
        .collect()
}

#[cfg(test)]
mod trial_tests {
    use super::*;
    use crate::joint::TopologyAccess;
    use crate::sched::{PfScheduler, SpeculativeScheduler};
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    #[test]
    fn parallel_trials_match_sequential_loop() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(20),
                q_range: (0.3, 0.6),
                ..CaptureConfig::testbed_default()
            },
            31,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let cfg_for = |t: usize| {
            let mut c = EmulationConfig::new(cell.clone());
            c.n_txops = 40;
            c.seed = 0x0B1E + t as u64;
            c
        };
        // One shared provider across all worker threads: exercises
        // the Send + Sync bounded cache for real.
        let acc = TopologyAccess::new(&trace.ground_truth);
        let par = run_trials(&trace, 6, cfg_for, |_| {
            Box::new(SpeculativeScheduler::new(&acc))
        });
        let seq: Vec<UplinkMetrics> = (0..6)
            .map(|t| {
                let mut emu = Emulator::new(&trace, cfg_for(t)).unwrap();
                emu.run(&mut SpeculativeScheduler::new(&acc), None).metrics
            })
            .collect();
        assert_eq!(par.len(), 6);
        for (t, (p, s)) in par.into_iter().zip(seq).enumerate() {
            assert_eq!(p.unwrap().metrics, s, "trial {t} diverged");
        }
    }

    #[test]
    fn trial_setup_errors_surface_per_trial() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(10),
                ..CaptureConfig::testbed_default()
            },
            32,
        );
        let reports = run_trials(
            &trace,
            3,
            |t| {
                let mut cell = CellConfig::testbed_siso();
                cell.numerology.n_rbs = 10;
                if t == 1 {
                    // More antennas than the trace's CSI carries.
                    cell.m_antennas = 64;
                }
                let mut c = EmulationConfig::new(cell);
                c.n_txops = 10;
                c
            },
            |_| Box::new(PfScheduler),
        );
        assert!(reports[0].is_ok());
        assert!(reports[1].is_err(), "bad trial must fail alone");
        assert!(reports[2].is_ok());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::TopologyAccess;
    use crate::sched::{AccessAwareScheduler, PfScheduler, SpeculativeScheduler};
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    fn small_cell() -> CellConfig {
        let mut c = CellConfig::testbed_siso();
        c.numerology.n_rbs = 10; // keep unit tests fast
        c
    }

    fn quick_trace(seed: u64) -> blu_traces::schema::TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(20),
                q_range: (0.3, 0.6),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn quick_config(n_txops: u64) -> EmulationConfig {
        let mut cfg = EmulationConfig::new(small_cell());
        cfg.n_txops = n_txops;
        cfg
    }

    #[test]
    fn pf_emulation_produces_sane_metrics() {
        let trace = quick_trace(1);
        let mut emu = Emulator::new(&trace, quick_config(200)).unwrap();
        let report = emu.run(&mut PfScheduler, None);
        let m = &report.metrics;
        assert_eq!(m.subframes, 600);
        assert!(m.rbs_scheduled > 0);
        assert!(m.rbs_utilized <= m.rbs_scheduled);
        assert!(m.bits_delivered > 0.0);
        assert!(m.rb_utilization() < 1.0, "hidden terminals must bite");
        assert!(m.rbs_blocked > 0, "blocking must occur");
    }

    #[test]
    fn blu_beats_pf_on_interference_heavy_trace() {
        // The headline claim at small scale: with ground-truth
        // topology, speculative scheduling delivers more throughput
        // and higher utilization than PF.
        let trace = quick_trace(2);
        let topo = trace.ground_truth.clone();
        let acc = TopologyAccess::new(&topo);

        let mut emu_pf = Emulator::new(&trace, quick_config(200)).unwrap();
        let pf = emu_pf.run(&mut PfScheduler, None);

        let mut emu_blu = Emulator::new(&trace, quick_config(200)).unwrap();
        let mut blu = SpeculativeScheduler::new(&acc);
        let blu_report = emu_blu.run(&mut blu, None);

        assert!(
            blu_report.metrics.rb_utilization() > pf.metrics.rb_utilization(),
            "BLU {} vs PF {}",
            blu_report.metrics.rb_utilization(),
            pf.metrics.rb_utilization()
        );
        assert!(
            blu_report.metrics.throughput_mbps() > pf.metrics.throughput_mbps(),
            "BLU {} vs PF {} Mbps",
            blu_report.metrics.throughput_mbps(),
            pf.metrics.throughput_mbps()
        );
    }

    #[test]
    fn aa_tracks_pf_without_boosting_utilization() {
        // The paper's observation: AA cannot compensate for
        // under-utilization during access (it never over-schedules).
        let trace = quick_trace(3);
        let p: Vec<f64> = (0..trace.ground_truth.n_clients)
            .map(|i| trace.ground_truth.p_individual(i))
            .collect();
        let mut emu = Emulator::new(&trace, quick_config(150)).unwrap();
        let aa = emu.run(&mut AccessAwareScheduler::new(p), None);
        let mut emu2 = Emulator::new(&trace, quick_config(150)).unwrap();
        let pf = emu2.run(&mut PfScheduler, None);
        let ratio = aa.metrics.rb_utilization() / pf.metrics.rb_utilization().max(1e-9);
        assert!(
            (0.6..1.4).contains(&ratio),
            "AA utilization ratio vs PF: {ratio}"
        );
    }

    #[test]
    fn estimator_receives_observations() {
        let trace = quick_trace(4);
        let mut est = OutcomeEstimator::new(trace.ground_truth.n_clients);
        let mut emu = Emulator::new(&trace, quick_config(100)).unwrap();
        emu.run(&mut PfScheduler, Some(&mut est));
        // Scheduled clients must have been observed, and the measured
        // access probability should be in the right region.
        let observed: Vec<usize> = (0..trace.ground_truth.n_clients)
            .filter(|&i| est.stats().p_individual(i).is_some())
            .collect();
        assert!(!observed.is_empty());
        for i in observed {
            let emp = est.stats().p_individual(i).unwrap();
            let truth = trace.ground_truth.p_individual(i);
            assert!(
                (emp - truth).abs() < 0.25,
                "client {i}: measured {emp} vs truth {truth}"
            );
        }
    }

    #[test]
    fn emulation_is_deterministic() {
        let trace = quick_trace(5);
        let mut a = Emulator::new(&trace, quick_config(50)).unwrap();
        let ra = a.run(&mut PfScheduler, None);
        let mut b = Emulator::new(&trace, quick_config(50)).unwrap();
        let rb = b.run(&mut PfScheduler, None);
        assert_eq!(ra.metrics, rb.metrics);
    }

    #[test]
    fn collisions_occur_only_with_overscheduling() {
        let trace = quick_trace(6);
        let mut emu = Emulator::new(&trace, quick_config(150)).unwrap();
        let pf = emu.run(&mut PfScheduler, None);
        assert_eq!(pf.metrics.rbs_collided, 0, "PF cannot collide (SISO)");
    }
}

#[cfg(test)]
mod contended_tests {
    use super::*;
    use crate::sched::PfScheduler;
    use blu_sim::medium::ActivityTimeline;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};
    use blu_wifi::onoff::OnOffSource;

    fn quick_trace(seed: u64) -> blu_traces::schema::TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(30),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn small_config(n_txops: u64) -> EmulationConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut cfg = EmulationConfig::new(cell);
        cfg.n_txops = n_txops;
        cfg
    }

    #[test]
    fn idle_channel_contention_is_nearly_free() {
        let trace = quick_trace(1);
        let mut emu = Emulator::new(&trace, small_config(200)).unwrap();
        let report = emu.run_contended(
            &mut PfScheduler,
            None,
            &ActivityTimeline::new(),
            DetRng::seed_from_u64(1),
        );
        let wall = report.wall_clock.unwrap();
        // 200 TxOPs × 4 sub-frames = 800 ms of airtime; LBT on an
        // idle channel adds ≤ ~1 sub-frame per TxOP.
        assert!(wall >= Micros::from_millis(800));
        assert!(wall <= Micros::from_millis(1_100), "wall {wall}");
        assert_eq!(report.metrics.subframes, 600);
    }

    #[test]
    fn busy_channel_stretches_wall_clock() {
        let trace = quick_trace(2);
        let mut rng = DetRng::seed_from_u64(3);
        // Heavily loaded neighbour the eNB must defer to: 85% duty
        // in 20 ms bursts.
        let busy =
            OnOffSource::with_duty_cycle(0.85, 20_000.0).generate(Micros::from_secs(600), &mut rng);
        let mut emu_idle = Emulator::new(&trace, small_config(150)).unwrap();
        let idle = emu_idle.run_contended(
            &mut PfScheduler,
            None,
            &ActivityTimeline::new(),
            DetRng::seed_from_u64(4),
        );
        let mut emu_busy = Emulator::new(&trace, small_config(150)).unwrap();
        let contended =
            emu_busy.run_contended(&mut PfScheduler, None, &busy, DetRng::seed_from_u64(4));
        let w_idle = idle.wall_clock.unwrap().as_u64();
        let w_busy = contended.wall_clock.unwrap().as_u64();
        // 85% duty in 20 ms bursts: each TxOP waits out the residual
        // burst (~20 ms) most of the time — wall clock several times
        // the idle-channel run.
        assert!(
            w_busy as f64 > w_idle as f64 * 2.0,
            "busy {w_busy} vs idle {w_idle}"
        );
        // Same number of TxOPs delivered, just later.
        assert_eq!(idle.metrics.subframes, contended.metrics.subframes);
    }

    #[test]
    fn contended_run_is_deterministic() {
        let trace = quick_trace(5);
        let mut rng = DetRng::seed_from_u64(7);
        let busy =
            OnOffSource::with_duty_cycle(0.3, 2_000.0).generate(Micros::from_secs(60), &mut rng);
        let mut a = Emulator::new(&trace, small_config(80)).unwrap();
        let ra = a.run_contended(&mut PfScheduler, None, &busy, DetRng::seed_from_u64(9));
        let mut b = Emulator::new(&trace, small_config(80)).unwrap();
        let rb = b.run_contended(&mut PfScheduler, None, &busy, DetRng::seed_from_u64(9));
        assert_eq!(ra.metrics, rb.metrics);
        assert_eq!(ra.wall_clock, rb.wall_clock);
    }
}

#[cfg(test)]
mod harq_tests {
    use super::*;
    use crate::sched::PfScheduler;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    /// Low SNR + aggressive MCS: HARQ must convert a chunk of fading
    /// losses into delivered bits without touching blocking losses.
    #[test]
    fn harq_recovers_fading_losses_only() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(30),
                snr_range_db: (7.0, 11.0),
                q_range: (0.3, 0.5),
                ..CaptureConfig::testbed_default()
            },
            11,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut base = EmulationConfig::new(cell);
        base.n_txops = 800;
        base.mcs_margin_db = -2.0;

        let off = Emulator::new(&trace, base.clone())
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let mut cfg_on = base.clone();
        cfg_on.harq_max_retx = 3;
        let on = Emulator::new(&trace, cfg_on)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;

        assert!(
            off.rbs_faded > 100,
            "need fading pressure: {}",
            off.rbs_faded
        );
        assert!(
            on.rbs_faded < off.rbs_faded,
            "HARQ should reduce fading losses: {} vs {}",
            on.rbs_faded,
            off.rbs_faded
        );
        assert!(on.bits_delivered > off.bits_delivered);
        // HARQ cannot help blocked grants (no energy to combine).
        let diff = (on.rbs_blocked as f64 - off.rbs_blocked as f64).abs();
        assert!(
            diff / (off.rbs_blocked.max(1) as f64) < 0.01,
            "blocking must be untouched: {} vs {}",
            on.rbs_blocked,
            off.rbs_blocked
        );
    }

    #[test]
    fn harq_is_deterministic_and_off_by_default() {
        let trace = capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(10),
                ..CaptureConfig::testbed_default()
            },
            12,
        );
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let cfg = EmulationConfig::new(cell);
        assert_eq!(cfg.harq_max_retx, 0);
        let mut cfg = cfg;
        cfg.n_txops = 100;
        cfg.harq_max_retx = 2;
        let a = Emulator::new(&trace, cfg.clone())
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let b = Emulator::new(&trace, cfg)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod traffic_tests {
    use super::*;
    use crate::sched::PfScheduler;
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    fn quick_trace(seed: u64) -> blu_traces::schema::TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(20),
                q_range: (0.2, 0.4),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn cfg(n_txops: u64) -> EmulationConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut c = EmulationConfig::new(cell);
        c.n_txops = n_txops;
        c
    }

    #[test]
    fn light_load_caps_delivery_at_offered_traffic() {
        let trace = quick_trace(21);
        let mut light = cfg(2_000);
        // 50 bursts/s × 2 kbit = 100 kbit/s per UE, far below capacity.
        light.traffic = TrafficModel::Poisson {
            bursts_per_sec: 50.0,
            burst_bits: 2_000.0,
        };
        let m = Emulator::new(&trace, light)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let n = trace.ground_truth.n_clients as f64;
        // Arrivals accrue over all 4 TxOP sub-frames but throughput
        // is accounted per UL sub-frame (3 of 4): rescale.
        let offered_mbps = n * 50.0 * 2_000.0 / 1e6 * (4.0 / 3.0);
        let got = m.throughput_mbps();
        // Delivery cannot exceed offered load (plus queueing slack),
        // and under light load most of it should get through.
        assert!(got <= offered_mbps * 1.1, "{got} vs offered {offered_mbps}");
        assert!(got >= offered_mbps * 0.4, "{got} vs offered {offered_mbps}");
    }

    #[test]
    fn backlogged_delivers_more_than_finite_load() {
        let trace = quick_trace(22);
        let back = Emulator::new(&trace, cfg(500))
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let mut finite = cfg(500);
        finite.traffic = TrafficModel::Poisson {
            bursts_per_sec: 20.0,
            burst_bits: 1_000.0,
        };
        let fin = Emulator::new(&trace, finite)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        assert!(back.bits_delivered > fin.bits_delivered * 2.0);
    }

    #[test]
    fn empty_queues_release_grants() {
        // With tiny offered load, most sub-frames should have few or
        // no scheduled RBs (rates zeroed for empty queues).
        let trace = quick_trace(23);
        let mut c = cfg(500);
        c.traffic = TrafficModel::Poisson {
            bursts_per_sec: 2.0,
            burst_bits: 500.0,
        };
        let m = Emulator::new(&trace, c)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let full_allocation = m.subframes * 10;
        assert!(
            m.rbs_scheduled < full_allocation / 2,
            "{} of {} RBs scheduled despite near-empty queues",
            m.rbs_scheduled,
            full_allocation
        );
    }

    #[test]
    fn finite_buffer_is_deterministic() {
        let trace = quick_trace(24);
        let mut c = cfg(200);
        c.traffic = TrafficModel::Poisson {
            bursts_per_sec: 100.0,
            burst_bits: 3_000.0,
        };
        let a = Emulator::new(&trace, c.clone())
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let b = Emulator::new(&trace, c)
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod noma_tests {
    use super::*;
    use crate::joint::TopologyAccess;
    use crate::sched::{PfScheduler, SpeculativeScheduler};
    use blu_sim::time::Micros;
    use blu_traces::capture::{capture_synthetic, CaptureConfig};

    fn heavy_trace(seed: u64) -> blu_traces::schema::TestbedTrace {
        capture_synthetic(
            &CaptureConfig {
                duration: Micros::from_secs(30),
                q_range: (0.4, 0.65),
                // Wide SNR spread: power-domain separation is viable.
                snr_range_db: (8.0, 30.0),
                ..CaptureConfig::testbed_default()
            },
            seed,
        )
    }

    fn cfg(noma: bool) -> EmulationConfig {
        let mut cell = CellConfig::testbed_siso();
        cell.numerology.n_rbs = 10;
        let mut c = EmulationConfig::new(cell);
        c.n_txops = 400;
        c.noma_sic = noma;
        c
    }

    #[test]
    fn sic_rescues_overscheduling_collisions() {
        let trace = heavy_trace(41);
        let acc = TopologyAccess::new(&trace.ground_truth);
        let plain = Emulator::new(&trace, cfg(false))
            .unwrap()
            .run(&mut SpeculativeScheduler::new(&acc), None)
            .metrics;
        let noma = Emulator::new(&trace, cfg(true))
            .unwrap()
            .run(&mut SpeculativeScheduler::new(&acc), None)
            .metrics;
        assert!(plain.rbs_collided > 20, "need collision pressure");
        assert!(
            noma.rbs_collided < plain.rbs_collided,
            "SIC should resolve some pile-ups: {} vs {}",
            noma.rbs_collided,
            plain.rbs_collided
        );
        assert!(noma.bits_delivered > plain.bits_delivered);
    }

    #[test]
    fn noma_is_noop_for_pf() {
        // PF never over-schedules, so SIC has nothing to rescue.
        let trace = heavy_trace(42);
        let a = Emulator::new(&trace, cfg(false))
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        let b = Emulator::new(&trace, cfg(true))
            .unwrap()
            .run(&mut PfScheduler, None)
            .metrics;
        assert_eq!(a, b);
    }

    #[test]
    fn noma_estimator_still_counts_collisions_as_access() {
        // Both SIC outcomes (Success or Collision) prove the client
        // transmitted — the access statistics stay unbiased.
        let trace = heavy_trace(43);
        let acc = TopologyAccess::new(&trace.ground_truth);
        let mut est = crate::measure::OutcomeEstimator::new(trace.ground_truth.n_clients);
        Emulator::new(&trace, cfg(true))
            .unwrap()
            .run(&mut SpeculativeScheduler::new(&acc), Some(&mut est));
        for i in 0..trace.ground_truth.n_clients {
            if let Some(p) = est.stats().p_individual(i) {
                let truth = trace.ground_truth.p_individual(i);
                assert!((p - truth).abs() < 0.15, "UE {i}: {p} vs {truth}");
            }
        }
    }
}
