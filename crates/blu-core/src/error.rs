//! Unified error type for the BLU pipeline.
//!
//! Library paths in `blu-core` return [`BluError`] instead of
//! panicking: a malformed trace, an impossible measurement plan, or a
//! degenerate inference input must surface as a value the
//! orchestrator can route (typically into PF fallback), never as a
//! process abort — an eNB scheduler that panics on a weird
//! measurement is strictly worse than one that schedules
//! conservatively. Panics remain only in tests and binaries.

use blu_sim::error::SimError;
use std::fmt;

/// Any error the BLU pipeline can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum BluError {
    /// An error bubbled up from the simulation substrate.
    Sim(SimError),
    /// A trace is too short (or otherwise too small) for the
    /// requested operation.
    TraceTooShort {
        /// What was being attempted.
        what: &'static str,
        /// Sub-frames (or samples) the operation needs.
        needed: u64,
        /// Sub-frames (or samples) actually available.
        available: u64,
    },
    /// A trace failed schema validation.
    InvalidTrace(String),
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A required input collection was empty.
    EmptyInput(&'static str),
    /// Inference could not produce a usable blueprint.
    Inference(String),
    /// A client set is too large for a `2^|w|` pattern enumeration —
    /// the `1 << |w|` table index would overflow `usize`.
    SetTooLarge {
        /// What was being enumerated.
        what: &'static str,
        /// Members in the offending set.
        len: usize,
        /// Largest supported set size.
        max: usize,
    },
    /// An arithmetic operation would overflow its integer type.
    Overflow {
        /// What was being computed.
        what: &'static str,
    },
    /// A worker panicked and the panic was contained at an isolation
    /// boundary (per-cell `catch_unwind` in batch/fleet inference).
    /// Carries the rendered panic payload: non-string payloads are
    /// recorded as the typed
    /// [`NON_STRING_PANIC_PAYLOAD`](crate::runtime::NON_STRING_PANIC_PAYLOAD)
    /// marker, and oversized payloads are truncated to
    /// [`PANIC_MESSAGE_MAX_LEN`](crate::runtime::PANIC_MESSAGE_MAX_LEN)
    /// bytes (see [`panic_message`](crate::runtime::panic_message)).
    Panicked(String),
    /// A stage pipeline was composed or driven in a way that violates
    /// its structural contract (out-of-order stages, transmit without
    /// a planned segment, speculation without a blueprint, a
    /// fault-channel stage without a script). These used to be
    /// `expect`s inside the stages; as typed errors they surface
    /// through [`run_pipeline`](crate::engine::run_pipeline) and let
    /// a fleet keep its healthy cells when one cell's composition is
    /// wrong.
    StageInvariant(String),
    /// A checkpoint could not be written or read (I/O or corrupt
    /// serialization).
    Checkpoint(String),
    /// A checkpoint was written by an incompatible snapshot-format
    /// version.
    CheckpointVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// A wire-protocol frame was malformed, truncated, oversized, or
    /// carried an undecodable payload. Every byte sequence a client
    /// can send maps to either a decoded message or this variant —
    /// never a panic and never an unbounded read (see
    /// [`runtime::wire`](crate::runtime::wire)).
    Wire(String),
}

impl fmt::Display for BluError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BluError::Sim(e) => write!(f, "simulation error: {e}"),
            BluError::TraceTooShort {
                what,
                needed,
                available,
            } => write!(
                f,
                "trace too short for {what}: need {needed} sub-frames, have {available}"
            ),
            BluError::InvalidTrace(msg) => write!(f, "invalid trace: {msg}"),
            BluError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BluError::EmptyInput(what) => write!(f, "empty input: {what}"),
            BluError::Inference(msg) => write!(f, "inference failed: {msg}"),
            BluError::SetTooLarge { what, len, max } => write!(
                f,
                "client set too large for {what}: {len} members, at most {max} supported"
            ),
            BluError::Overflow { what } => write!(f, "arithmetic overflow computing {what}"),
            BluError::Panicked(payload) => {
                write!(f, "inference worker panicked (contained): {payload}")
            }
            BluError::StageInvariant(msg) => {
                write!(f, "stage pipeline invariant violated: {msg}")
            }
            BluError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            BluError::CheckpointVersion { found, expected } => write!(
                f,
                "checkpoint format version {found} incompatible with expected {expected}"
            ),
            BluError::Wire(msg) => write!(f, "wire protocol error: {msg}"),
        }
    }
}

impl std::error::Error for BluError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BluError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for BluError {
    fn from(e: SimError) -> Self {
        BluError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BluError::TraceTooShort {
            what: "measurement phase",
            needed: 100,
            available: 40,
        };
        let s = e.to_string();
        assert!(s.contains("measurement phase") && s.contains("100") && s.contains("40"));
    }

    #[test]
    fn sim_errors_convert_and_chain() {
        let sim = SimError::InvalidProbability {
            what: "q",
            value: 1.5,
        };
        let e: BluError = sim.clone().into();
        assert_eq!(e, BluError::Sim(sim));
        assert!(std::error::Error::source(&e).is_some());
    }
}
