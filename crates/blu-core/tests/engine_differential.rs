//! Engine differential tests: the staged `CellEngine` pipeline must
//! reproduce the pre-refactor subframe loops **bit-for-bit**.
//!
//! The golden file `tests/data/engine_golden_v1.json` was generated
//! by the standalone-loop implementations (`Emulator::run`,
//! `Emulator::run_contended`, `orchestrator::run_blu`,
//! `robust::run_blu_robust_cell`) immediately before the engine
//! refactor. Every scenario digest below — emulator runs across
//! traffic/HARQ/NOMA/contention modes, full two-phase BLU runs, and
//! robust runs with and without injected faults — must match that
//! file exactly: the engine is a structure change, never a numbers
//! change.
//!
//! Regenerate (only when intentionally changing semantics) with
//! `BLU_REGEN_ENGINE_GOLDEN=1 cargo test -p blu-core --test
//! engine_differential`.

use blu_core::emulator::{EmulationConfig, Emulator, TrafficModel};
use blu_core::joint::TopologyAccess;
use blu_core::metrics::UplinkMetrics;
use blu_core::orchestrator::{run_blu, BluConfig, BluRunReport};
use blu_core::robust::{run_blu_robust, RobustConfig, RobustRunReport};
use blu_core::sched::{PfScheduler, SpeculativeScheduler};
use blu_phy::cell::CellConfig;
use blu_sim::clientset::ClientSet;
use blu_sim::faults::{FaultEvent, FaultKind, FaultScript};
use blu_sim::rng::DetRng;
use blu_sim::time::Micros;
use blu_traces::capture::{capture_synthetic, CaptureConfig};
use blu_traces::faults::{capture_with_faults, FaultyCapture};
use blu_traces::schema::TestbedTrace;
use blu_wifi::onoff::OnOffSource;
use std::collections::BTreeMap;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/engine_golden_v1.json"
);

/// Order-sensitive fold of a `f64` slice down to one word, by exact
/// bit pattern (never by approximate value).
fn fold_bits(xs: &[f64]) -> u64 {
    xs.iter().fold(0x9E37_79B9_7F4A_7C15u64, |h, x| {
        h.rotate_left(7) ^ x.to_bits()
    })
}

fn digest_metrics(m: &UplinkMetrics) -> String {
    format!(
        "sf={} sch={} ut={} col={} blk={} fad={} full={} bits={:016x} pc={:016x}",
        m.subframes,
        m.rbs_scheduled,
        m.rbs_utilized,
        m.rbs_collided,
        m.rbs_blocked,
        m.rbs_faded,
        m.fully_utilized_subframes,
        m.bits_delivered.to_bits(),
        fold_bits(&m.bits_per_client),
    )
}

fn digest_blu(r: &BluRunReport) -> String {
    let topo = &r.inference.topology;
    let topo_fold = topo.hts.iter().fold(topo.n_clients as u64, |h, ht| {
        h.rotate_left(9) ^ ht.q.to_bits() ^ (ht.edges.0 as u64) ^ ((ht.edges.0 >> 64) as u64)
    });
    format!(
        "meas={} floor={} viol={:016x} iters={} restarts={} resid={:016x} verdict={} \
         topo={:016x} acc={}/{}/{} spec=[{}]",
        r.measurement_subframes,
        r.measurement_floor,
        r.inference.violation.to_bits(),
        r.inference.iterations,
        r.inference.restarts,
        r.inference.residual_fraction.to_bits(),
        r.inference.verdict,
        topo_fold,
        r.accuracy.exact_matches,
        r.accuracy.n_truth,
        r.accuracy.n_inferred,
        digest_metrics(&r.speculative.metrics),
    )
}

fn digest_robust(r: &RobustRunReport) -> String {
    // `inference_micros` is wall-clock timing and explicitly outside
    // the determinism contract; everything else is pinned.
    let trans_fold = r.transitions.iter().fold(0u64, |h, t| {
        h.rotate_left(5) ^ t.at_subframe ^ ((t.state as u64) << 56)
    });
    let verdict_fold = r
        .verdicts
        .iter()
        .fold(0u64, |h, v| h.rotate_left(3) ^ (*v as u64 + 1));
    format!(
        "meas={} remeas={} spec={} fb={} trans={}x{:016x} verdicts={}x{:016x} conf={:016x} \
         drift={:016x} brk={} panics={} ddl={} quar={} metrics=[{}]",
        r.measurement_subframes,
        r.n_remeasurements,
        r.speculative_txops,
        r.fallback_txops,
        r.transitions.len(),
        trans_fold,
        r.verdicts.len(),
        verdict_fold,
        r.final_confidence.to_bits(),
        r.peak_drift.to_bits(),
        r.breaker_transitions.len(),
        r.inference_panics,
        r.deadline_misses,
        r.quarantined_constraints,
        digest_metrics(&r.metrics),
    )
}

fn trace(secs: u64, seed: u64) -> TestbedTrace {
    capture_synthetic(
        &CaptureConfig {
            duration: Micros::from_secs(secs),
            q_range: (0.25, 0.55),
            ..CaptureConfig::testbed_default()
        },
        seed,
    )
}

fn emu_config(n_txops: u64) -> EmulationConfig {
    let mut cell = CellConfig::testbed_siso();
    cell.numerology.n_rbs = 10;
    let mut cfg = EmulationConfig::new(cell);
    cfg.n_txops = n_txops;
    cfg
}

fn faulty_capture(secs: u64, seed: u64, script: FaultScript) -> FaultyCapture {
    capture_with_faults(
        &CaptureConfig {
            duration: Micros::from_secs(secs),
            q_range: (0.25, 0.55),
            ..CaptureConfig::testbed_default()
        },
        &script,
        seed,
    )
    .unwrap()
}

/// The scenario the robust-loop goldens (and the kill-and-resume
/// unit test inside `robust.rs`) share: a strong hidden terminal
/// appears mid-run and blankets four clients.
fn ht_appear_script() -> FaultScript {
    FaultScript::new(vec![FaultEvent {
        at_subframe: 20_000,
        kind: FaultKind::HtAppear {
            q: 0.6,
            edges: ClientSet::from_iter([0, 1, 2, 3]),
        },
    }])
}

fn scenario_digests() -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();

    // Back-to-back emulator runs across three seeds (PF scheduler).
    for seed in [1u64, 2, 3] {
        let t = trace(12, seed);
        let mut emu = Emulator::new(&t, emu_config(40)).unwrap();
        let report = emu.run(&mut PfScheduler, None);
        out.insert(
            format!("emulator_pf_seed{seed}"),
            digest_metrics(&report.metrics),
        );
    }

    // Speculative scheduler over the ground-truth blueprint.
    {
        let t = trace(12, 1);
        let access = TopologyAccess::new(&t.ground_truth);
        let mut sched = SpeculativeScheduler::new(&access);
        let mut emu = Emulator::new(&t, emu_config(40)).unwrap();
        let report = emu.run(&mut sched, None);
        out.insert(
            "emulator_speculative_seed1".into(),
            digest_metrics(&report.metrics),
        );
    }

    // Finite-buffer traffic + HARQ + SISO NOMA: the loop branches the
    // contended path never takes.
    {
        let t = trace(12, 2);
        let mut cfg = emu_config(60);
        cfg.traffic = TrafficModel::Poisson {
            bursts_per_sec: 40.0,
            burst_bits: 24_000.0,
        };
        cfg.harq_max_retx = 3;
        cfg.noma_sic = true;
        let mut emu = Emulator::new(&t, cfg).unwrap();
        let report = emu.run(&mut PfScheduler, None);
        out.insert(
            "emulator_poisson_harq_noma_seed2".into(),
            digest_metrics(&report.metrics),
        );
    }

    // LBT-contended runs against a 30%-duty neighbour, two seeds.
    for seed in [1u64, 2] {
        let t = trace(30, seed);
        let mut rng = DetRng::seed_from_u64(seed + 100);
        let busy =
            OnOffSource::with_duty_cycle(0.3, 2_000.0).generate(Micros::from_secs(120), &mut rng);
        let mut emu = Emulator::new(&t, emu_config(60)).unwrap();
        let report = emu.run_contended(
            &mut PfScheduler,
            None,
            &busy,
            DetRng::seed_from_u64(seed + 200),
        );
        out.insert(
            format!("emulator_contended_seed{seed}"),
            format!(
                "wall={} {}",
                report.wall_clock.unwrap().as_u64(),
                digest_metrics(&report.metrics)
            ),
        );
    }

    // Full two-phase BLU loop across three seeds.
    for seed in [2u64, 3, 4] {
        let t = trace(60, seed);
        let config = BluConfig::new(emu_config(40));
        let report = run_blu(&t, &config).unwrap();
        out.insert(format!("run_blu_seed{seed}"), digest_blu(&report));
    }

    // Robust loop: one clean run and one fault-injected run (the
    // kill-and-resume twin of the fault scenario is pinned against
    // the same digest by `robust::tests`).
    {
        let cap = faulty_capture(60, 11, FaultScript::none());
        let cfg = RobustConfig::new(BluConfig::new(emu_config(40)));
        let report = run_blu_robust(&cap, &cfg).unwrap();
        out.insert("robust_clean_seed11".into(), digest_robust(&report));
    }
    {
        let cap = faulty_capture(90, 12, ht_appear_script());
        let cfg = RobustConfig::new(BluConfig::new(emu_config(40)));
        let report = run_blu_robust(&cap, &cfg).unwrap();
        out.insert("robust_ht_appear_seed12".into(), digest_robust(&report));
    }

    out
}

#[test]
fn engine_reports_match_pre_refactor_golden() {
    let got = scenario_digests();
    if std::env::var_os("BLU_REGEN_ENGINE_GOLDEN").is_some() {
        let json = serde_json::to_string_pretty(&got).unwrap();
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, json + "\n").unwrap();
    }
    let golden: BTreeMap<String, String> =
        serde_json::from_str(&std::fs::read_to_string(GOLDEN_PATH).unwrap()).unwrap();
    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        got.keys().collect::<Vec<_>>(),
        "scenario set drifted from the golden file"
    );
    for (name, want) in &golden {
        assert_eq!(
            got.get(name).unwrap(),
            want,
            "scenario `{name}` no longer matches the pre-refactor report"
        );
    }
}
