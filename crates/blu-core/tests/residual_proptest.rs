//! Property tests of the incremental residual kernel: after ANY
//! sequence of hidden-terminal edits, the [`ResidualTracker`]'s
//! per-constraint residuals and its accumulated incremental energy
//! must agree with a from-scratch recompute against the edited
//! topology (within float accumulation noise, 1e-9).

use blu_core::blueprint::constraints::{TransformedHt, TransformedTopology};
use blu_core::blueprint::{ConstraintSystem, ResidualTracker};
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_sim::topology::InterferenceTopology;
use proptest::prelude::*;

const N: usize = 8;

/// One random hidden-terminal edit.
#[derive(Debug, Clone)]
enum Edit {
    Add { edges: u8, q: f64 },
    Remove { pick: usize },
    Toggle { pick: usize, client: usize },
    Reweight { pick: usize, factor: f64 },
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    (
        0usize..4,
        1u8..=u8::MAX,
        0.01f64..0.9,
        0usize..64,
        0usize..N,
        0.5f64..1.5,
    )
        .prop_map(|(kind, edges, q, pick, client, factor)| match kind {
            0 => Edit::Add { edges, q },
            1 => Edit::Remove { pick },
            2 => Edit::Toggle { pick, client },
            _ => Edit::Reweight { pick, factor },
        })
}

fn system(seed: u64, with_triples: bool) -> ConstraintSystem {
    let mut rng = DetRng::seed_from_u64(seed);
    let topo = InterferenceTopology::random(N, 5, (0.15, 0.6), 0.4, &mut rng);
    let mut sys = ConstraintSystem::from_topology(&topo);
    if with_triples {
        sys.add_triples_from_topology(&topo, &[(0, 1, 2), (2, 4, 5), (1, 3, 7)]);
    }
    sys
}

/// Apply one edit to both the tracker (incrementally) and the mirror
/// topology, returning the tracker-reported violation delta.
fn apply(edit: &Edit, tracker: &mut ResidualTracker<'_>, hts: &mut Vec<TransformedHt>) -> f64 {
    match *edit {
        Edit::Add { edges, q } => {
            let edges = ClientSet(edges as u128);
            hts.push(TransformedHt { q_t: q, edges });
            tracker.shift(edges, q)
        }
        Edit::Remove { pick } => {
            if hts.is_empty() {
                return 0.0;
            }
            let ht = hts.swap_remove(pick % hts.len());
            tracker.shift(ht.edges, -ht.q_t)
        }
        Edit::Toggle { pick, client } => {
            if hts.is_empty() {
                return 0.0;
            }
            let k = pick % hts.len();
            let old = hts[k].edges;
            let mut new = old;
            if new.contains(client) {
                new.remove(client);
            } else {
                new.insert(client);
            }
            let dv = tracker.apply_edge_change(old, new, hts[k].q_t);
            hts[k].edges = new;
            if new.is_empty() {
                hts.swap_remove(k);
            }
            dv
        }
        Edit::Reweight { pick, factor } => {
            if hts.is_empty() {
                return 0.0;
            }
            let k = pick % hts.len();
            let q_new = (hts[k].q_t * factor).max(1e-4);
            let dv = tracker.shift(hts[k].edges, q_new - hts[k].q_t);
            hts[k].q_t = q_new;
            dv
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn edit_sequence_matches_scratch_recompute(
        seed in 0u64..32,
        with_triples in any::<bool>(),
        edits in proptest::collection::vec(arb_edit(), 0..60),
    ) {
        let sys = system(seed, with_triples);
        let mut tracker = ResidualTracker::new(&sys);
        let mut hts: Vec<TransformedHt> = Vec::new();
        // Incremental energy: empty-topology violation plus every
        // tracker-reported delta.
        let mut violation = tracker.recompute_violation();
        for edit in &edits {
            violation += apply(edit, &mut tracker, &mut hts);
        }

        let topo = TransformedTopology { hts: hts.clone() };
        // Per-constraint residuals agree with a from-scratch compute.
        for c in sys.all_constraints() {
            let inc = tracker.residual(c);
            let scratch = sys.residual(&topo, c);
            prop_assert!(
                (inc - scratch).abs() < 1e-9,
                "residual {c:?}: incremental {inc} vs scratch {scratch}"
            );
        }
        // Accumulated incremental energy agrees with total_violation.
        let scratch_v = sys.total_violation(&topo);
        prop_assert!(
            (violation - scratch_v).abs() < 1e-9,
            "violation: incremental {violation} vs scratch {scratch_v}"
        );
        // And with the tracker's own canonical-order recompute.
        let tracker_v = tracker.recompute_violation();
        prop_assert!((violation - tracker_v).abs() < 1e-9);
    }
}
