//! Integration tests of the `blu serve` daemon: wire-protocol
//! hardening against a live socket, admission control, bounded-queue
//! backpressure, watermark shedding, and the graceful-drain →
//! crash-safe-resume contract.
//!
//! Everything here drives a real [`BluService`] over real TCP — the
//! same code path `blu ctl` exercises — with manual cadence, so every
//! fleet advance is an explicit `Step` command and the runs are
//! deterministic.

use blu_core::orchestrator::BluConfig;
use blu_core::robust::RobustConfig;
use blu_core::runtime::supervisor::CellHealth;
use blu_core::runtime::wire::{
    read_frame, roundtrip, write_frame, CellSpec, Request, Response, StatusReport,
    DEFAULT_MAX_FRAME, WIRE_VERSION,
};
use blu_core::runtime::{BluService, ServiceConfig, ServiceHandle};
use blu_core::EmulationConfig;
use blu_phy::cell::CellConfig;
use blu_sim::rng::DetRng;
use rand::RngCore;
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn quick_robust() -> RobustConfig {
    let mut cell = CellConfig::testbed_siso();
    cell.numerology.n_rbs = 10;
    RobustConfig::new(BluConfig::new(EmulationConfig::new(cell)))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blu-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(dir: &Path, resume: bool, f: impl FnOnce(&mut ServiceConfig)) -> ServiceHandle {
    let mut config = ServiceConfig::new(quick_robust(), dir.to_path_buf());
    config.resume = resume;
    f(&mut config);
    BluService::start(config).expect("daemon starts")
}

fn connect(handle: &ServiceHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
}

fn ask(handle: &ServiceHandle, req: &Request) -> Response {
    let mut stream = connect(handle);
    roundtrip(&mut stream, req, DEFAULT_MAX_FRAME).expect("roundtrip")
}

fn status_of(handle: &ServiceHandle) -> StatusReport {
    match ask(handle, &Request::Status) {
        Response::Status(status) => status,
        other => panic!("expected Status, got {other:?}"),
    }
}

fn add_cell(handle: &ServiceHandle, spec: CellSpec) -> u64 {
    match ask(handle, &Request::AddCell { spec }) {
        Response::Done { cell: Some(id) } => id,
        other => panic!("expected admission, got {other:?}"),
    }
}

fn step(handle: &ServiceHandle, rounds: u64) {
    match ask(handle, &Request::Step { rounds }) {
        Response::Done { .. } => {}
        other => panic!("expected Done, got {other:?}"),
    }
}

fn step_to_completion(handle: &ServiceHandle) -> StatusReport {
    for _ in 0..200 {
        step(handle, 500);
        let status = status_of(handle);
        if !status.cells.is_empty() && status.cells.iter().all(|c| c.done) {
            return status;
        }
    }
    panic!("fleet did not finish");
}

fn digests(status: &StatusReport) -> Vec<(u64, String)> {
    status
        .cells
        .iter()
        .map(|c| (c.cell, c.digest.clone()))
        .collect()
}

// ---------------------------------------------------------------------------
// Wire hardening: every malformed input is a typed reply or a clean
// close, never a hang — and the daemon survives all of it.
// ---------------------------------------------------------------------------

#[test]
fn malformed_wire_input_yields_typed_errors_and_daemon_survives() {
    let dir = scratch_dir("harden");
    let handle = start(&dir, false, |_| {});

    let expect_error_then_close = |bytes: &[u8]| {
        let mut stream = connect(&handle);
        stream.write_all(bytes).expect("write raw bytes");
        // The daemon may also just close the connection instead of
        // answering — fine; what it must never do is hang or crash.
        if let Ok(Some(payload)) = read_frame(&mut stream, DEFAULT_MAX_FRAME) {
            let resp: Response = serde_json::from_slice(&payload).expect("typed reply");
            assert!(
                matches!(resp, Response::Error { ref message } if message.contains("wire")),
                "expected a wire error reply, got {resp:?}"
            );
        }
    };

    // Oversized length prefix (claims ~4 GiB).
    expect_error_then_close(&[0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0]);
    // Zero-length frame.
    expect_error_then_close(&0u32.to_be_bytes());
    // Garbage payload under a valid prefix.
    {
        let mut bytes = 12u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"not json :-(");
        expect_error_then_close(&bytes);
    }
    // Mid-prefix disconnect.
    {
        let mut stream = connect(&handle);
        stream.write_all(&[0u8, 1]).unwrap();
        drop(stream);
    }
    // Mid-frame disconnect: prefix promises 64 bytes, 8 arrive.
    {
        let mut stream = connect(&handle);
        stream.write_all(&64u32.to_be_bytes()).unwrap();
        stream.write_all(&[1u8; 8]).unwrap();
        drop(stream);
    }
    // Deterministic fuzz: random byte blobs, raw on the socket.
    let mut rng = DetRng::seed_from_u64(0xF422);
    for _ in 0..32 {
        let len = (rng.next_u32() % 64) as usize + 1;
        let blob: Vec<u8> = (0..len).map(|_| (rng.next_u32() & 0xFF) as u8).collect();
        let mut stream = connect(&handle);
        let _ = stream.write_all(&blob);
        drop(stream);
    }

    // The daemon survived all of it: the handshake still works, cells
    // still admit and step, and the malformed-frame counter moved.
    match ask(
        &handle,
        &Request::Hello {
            version: WIRE_VERSION,
        },
    ) {
        Response::Hello { version, .. } => assert_eq!(version, WIRE_VERSION),
        other => panic!("daemon no longer answers hello: {other:?}"),
    }
    add_cell(&handle, CellSpec::new(3, 10));
    step(&handle, 5);
    let status = status_of(&handle);
    assert_eq!(status.cells.len(), 1);
    assert!(
        status.counters.malformed_frames >= 3,
        "malformed frames must be counted, got {}",
        status.counters.malformed_frames
    );

    // A wrong-version handshake is a typed refusal.
    match ask(&handle, &Request::Hello { version: 999 }) {
        Response::Error { message } => assert!(message.contains("version"), "{message}"),
        other => panic!("expected a version error, got {other:?}"),
    }

    handle.shutdown();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_frame_is_refused_before_allocation() {
    let dir = scratch_dir("bigframe");
    // A deliberately tiny frame limit.
    let handle = start(&dir, false, |c| c.max_frame = 4_096);

    // A 1 MiB prefix against the 4 KiB limit: typed error, socket
    // closed, daemon alive.
    let mut stream = connect(&handle);
    stream.write_all(&(1u32 << 20).to_be_bytes()).unwrap();
    stream.write_all(&[0u8; 128]).unwrap();
    if let Ok(Some(payload)) = read_frame(&mut stream, DEFAULT_MAX_FRAME) {
        let resp: Response = serde_json::from_slice(&payload).unwrap();
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
    }
    drop(stream);

    // And a frame the *client* would overflow with is refused by the
    // client-side writer too.
    let mut stream = connect(&handle);
    let huge = vec![0u8; 8_192];
    assert!(write_frame(&mut stream, &huge, 4_096).is_err());

    assert!(status_of(&handle).cells.is_empty());
    handle.shutdown();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Admission control and backpressure
// ---------------------------------------------------------------------------

#[test]
fn admission_budget_rejects_and_drain_closes_admissions() {
    let dir = scratch_dir("admission");
    let handle = start(&dir, false, |c| c.max_cells = 2);

    add_cell(&handle, CellSpec::new(1, 10));
    add_cell(&handle, CellSpec::new(2, 10));
    match ask(
        &handle,
        &Request::AddCell {
            spec: CellSpec::new(3, 10),
        },
    ) {
        Response::Rejected { reason } => assert!(reason.contains("budget"), "{reason}"),
        other => panic!("expected Rejected, got {other:?}"),
    }

    // Removing a cell frees budget.
    match ask(&handle, &Request::RemoveCell { cell: 0 }) {
        Response::Done { cell: Some(0) } => {}
        other => panic!("expected removal, got {other:?}"),
    }
    add_cell(&handle, CellSpec::new(3, 10));

    // Draining closes admissions for good.
    assert!(matches!(
        ask(&handle, &Request::Drain),
        Response::Done { .. }
    ));
    match ask(
        &handle,
        &Request::AddCell {
            spec: CellSpec::new(4, 10),
        },
    ) {
        Response::Rejected { reason } => assert!(reason.contains("drain"), "{reason}"),
        other => panic!("expected Rejected while draining, got {other:?}"),
    }
    let status = status_of(&handle);
    assert!(status.draining);
    assert_eq!(status.counters.rejections, 2);
    assert_eq!(status.counters.admissions, 3);

    handle.shutdown();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturated_command_queue_answers_busy() {
    let dir = scratch_dir("busy");
    let handle = start(&dir, false, |c| c.queue_depth = 1);
    add_cell(&handle, CellSpec::new(5, 60));
    add_cell(&handle, CellSpec::new(6, 60));

    // Sixteen barrier-synchronized clients each fire a long Step burst
    // at the 1-deep queue: the engine can hold one in flight plus one
    // queued, so most of the wave must bounce with Busy — and nothing
    // may hang or crash the daemon.
    let addr = handle.addr();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(16));
    let clients: Vec<_> = (0..16)
        .map(|_| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(300)))
                    .unwrap();
                barrier.wait();
                roundtrip(
                    &mut stream,
                    &Request::Step { rounds: 200 },
                    DEFAULT_MAX_FRAME,
                )
                .unwrap()
            })
        })
        .collect();
    let mut busy = 0u64;
    let mut done = 0u64;
    for client in clients {
        match client.join().unwrap() {
            Response::Busy => busy += 1,
            Response::Done { .. } => done += 1,
            other => panic!("unexpected reply under load: {other:?}"),
        }
    }
    assert!(busy > 0, "a saturated queue must answer Busy at least once");
    assert!(done > 0, "accepted commands still complete");
    let status = status_of(&handle);
    assert_eq!(status.counters.busy_responses, busy);

    handle.shutdown();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watermark_overload_sheds_low_priority_and_readmits() {
    let dir = scratch_dir("shed");
    // One healthy high-priority cell plus one 4×-stalled low-priority
    // cell: pressure 5 exceeds the high watermark, so the stalled cell
    // must be shed to PF and later re-admitted once pressure drops.
    let handle = start(&dir, false, |c| {
        c.high_watermark = 3.0;
        c.low_watermark = 0.5;
    });
    add_cell(
        &handle,
        CellSpec {
            priority: 1,
            ..CellSpec::new(61, 30)
        },
    );
    add_cell(
        &handle,
        CellSpec {
            priority: 0,
            stall_at: Some(0),
            stall_factor: 4,
            ..CellSpec::new(62, 30)
        },
    );
    let finished = step_to_completion(&handle);
    assert!(finished.counters.shed_events > 0, "overload must shed");
    assert!(
        finished.counters.readmit_events > 0,
        "pressure drop must re-admit"
    );
    assert!(finished.counters.shed_rounds_total > 0);
    let low = finished.cells.iter().find(|c| c.cell == 1).unwrap();
    let high = finished.cells.iter().find(|c| c.cell == 0).unwrap();
    assert!(low.shed_rounds > 0, "low priority takes the shedding");
    assert_eq!(high.shed_rounds, 0, "high priority is protected");
    assert_eq!(high.health, CellHealth::Healthy);

    handle.shutdown();
    handle.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Graceful drain and crash-safe resume
// ---------------------------------------------------------------------------

#[test]
fn graceful_shutdown_persists_and_resume_is_bit_identical() {
    // Golden: an uninterrupted run of the same two cells.
    let dir_g = scratch_dir("drain-golden");
    let golden = {
        let handle = start(&dir_g, false, |_| {});
        add_cell(&handle, CellSpec::new(71, 15));
        add_cell(&handle, CellSpec::new(72, 15));
        let status = step_to_completion(&handle);
        handle.shutdown();
        handle.wait().unwrap();
        digests(&status)
    };

    // Interrupted: stop mid-run through the signal path (the CLI's
    // SIGINT/SIGTERM handlers raise exactly this flag), while a step
    // burst is in flight on another connection.
    let dir_k = scratch_dir("drain-kill");
    {
        let handle = start(&dir_k, false, |_| {});
        add_cell(&handle, CellSpec::new(71, 15));
        add_cell(&handle, CellSpec::new(72, 15));
        step(&handle, 10);
        let addr = handle.addr();
        let burst = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(300)))
                .unwrap();
            // The reply may be Done (burst interrupted early) or an
            // error if the daemon wins the race and closes first —
            // both are acceptable; hanging is not.
            let _ = roundtrip(
                &mut stream,
                &Request::Step { rounds: 100_000 },
                DEFAULT_MAX_FRAME,
            );
        });
        std::thread::sleep(Duration::from_millis(150));
        handle.shutdown();
        handle.wait().expect("graceful drain exits cleanly");
        burst.join().unwrap();
    }
    // The drain persisted both cells: versioned checkpoint + sidecar.
    for id in 0..2 {
        assert!(dir_k.join(format!("cell-{id}.json")).exists());
        assert!(dir_k.join(format!("cell-{id}.serve.json")).exists());
        blu_core::runtime::load_robust_checkpoint(&dir_k.join(format!("cell-{id}.json")))
            .expect("final checkpoint loads and version-checks");
    }

    // Resume and run to completion: bit-identical to the golden.
    {
        let handle = start(&dir_k, true, |_| {});
        match ask(
            &handle,
            &Request::Hello {
                version: WIRE_VERSION,
            },
        ) {
            Response::Hello { resumed_cells, .. } => assert_eq!(resumed_cells, 2),
            other => panic!("expected hello, got {other:?}"),
        }
        let status = step_to_completion(&handle);
        assert_eq!(digests(&status), golden, "resume must be bit-identical");
        handle.shutdown();
        handle.wait().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir_g);
    let _ = std::fs::remove_dir_all(&dir_k);
}

#[test]
fn resume_before_first_checkpoint_keeps_the_roster() {
    // Kill the daemon right after admission (no Step at all): the
    // admission-time sidecar must preserve the fleet roster, and the
    // resumed run must equal an uninterrupted one from scratch.
    let dir_g = scratch_dir("roster-golden");
    let golden = {
        let handle = start(&dir_g, false, |_| {});
        add_cell(&handle, CellSpec::new(81, 10));
        let status = step_to_completion(&handle);
        handle.shutdown();
        handle.wait().unwrap();
        digests(&status)
    };

    let dir_k = scratch_dir("roster-kill");
    {
        let handle = start(&dir_k, false, |_| {});
        add_cell(&handle, CellSpec::new(81, 10));
        // Dropping the handle is the hard-abort analogue available
        // in-process: no Step ran, no checkpoint grid was crossed.
        drop(handle);
    }
    {
        let handle = start(&dir_k, true, |_| {});
        let status = step_to_completion(&handle);
        assert_eq!(digests(&status), golden);
        handle.shutdown();
        handle.wait().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir_g);
    let _ = std::fs::remove_dir_all(&dir_k);
}
