//! Property tests of the fleet blueprint cache's canonical topology
//! signature and determinism contract:
//!
//! * the signature key (and the canonical bytes behind it) is
//!   invariant under any relabeling of a cell's UEs, across random
//!   geometries and both inference backends;
//! * an un-permuted cache hit returns a result **byte-identical** to
//!   the cell's own fresh solve, across random geometries, seeds and
//!   backends;
//! * distinct systems get distinct keys (no accidental canonical
//!   merging of different geometries).

use blu_core::blueprint::fleetcache::relabel_system;
use blu_core::blueprint::InferenceBackend;
use blu_core::blueprint::{
    ConstraintSystem, FleetBlueprintCache, FleetCacheEvent, InferenceConfig, InferenceResult,
    McmcConfig, TopologySignature,
};
use blu_sim::rng::DetRng;
use blu_sim::topology::InterferenceTopology;
use proptest::prelude::*;

/// A random measured-looking constraint system: random topology of
/// `n` UEs plus a few triple constraints.
fn system(n: usize, seed: u64) -> ConstraintSystem {
    let mut rng = DetRng::seed_from_u64(seed);
    let hts = 1 + (seed % 4) as usize;
    let topo = InterferenceTopology::random(n, hts, (0.15, 0.6), 0.4, &mut rng);
    let mut sys = ConstraintSystem::from_topology(&topo);
    if n >= 4 {
        sys.add_triples_from_topology(&topo, &[(0, 1, 2), (1, 2, 3)]);
    }
    sys
}

/// Shuffle `0..n` into a permutation with a deterministic RNG.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = DetRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    perm
}

fn backend_of(mcmc: bool, seed: u64) -> InferenceBackend {
    if mcmc {
        InferenceBackend::Mcmc {
            config: McmcConfig {
                steps: 500,
                ..Default::default()
            },
            seed,
        }
    } else {
        InferenceBackend::Gradient
    }
}

fn assert_bit_identical(a: &InferenceResult, b: &InferenceResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.topology.n_clients, b.topology.n_clients);
    prop_assert_eq!(a.topology.hts.len(), b.topology.hts.len());
    for (x, y) in a.topology.hts.iter().zip(&b.topology.hts) {
        prop_assert_eq!(x.edges.0, y.edges.0);
        prop_assert_eq!(x.q.to_bits(), y.q.to_bits());
    }
    prop_assert_eq!(a.violation.to_bits(), b.violation.to_bits());
    prop_assert_eq!(a.iterations, b.iterations);
    prop_assert_eq!(a.restarts, b.restarts);
    prop_assert_eq!(a.residual_fraction.to_bits(), b.residual_fraction.to_bits());
    prop_assert_eq!(a.verdict, b.verdict);
    prop_assert_eq!(a.completed, b.completed);
    prop_assert_eq!(a.overshoot, b.overshoot);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Relabeling the UEs of a cell must not change its cache key:
    /// two cells seeing the same geometry under different labels
    /// share one entry.
    #[test]
    fn signature_is_permutation_invariant(
        n in 3usize..10,
        seed in 0u64..1_000,
        perm_seed in 0u64..1_000,
        mcmc in any::<bool>(),
    ) {
        let sys = system(n, seed);
        let perm = permutation(n, perm_seed);
        let relabeled = relabel_system(&sys, &perm);
        let config = InferenceConfig::default();
        let backend = backend_of(mcmc, seed);
        let a = TopologySignature::new(&sys, &config, &backend);
        let b = TopologySignature::new(&relabeled, &config, &backend);
        prop_assert_eq!(a.key(), b.key(), "key changed under relabeling {:?}", perm);
    }

    /// An un-permuted hit — the storm/repeat case the fleet cache
    /// exists for — must be byte-identical to the cell solving fresh.
    #[test]
    fn unpermuted_hits_are_byte_identical_to_fresh_inference(
        n in 3usize..9,
        seed in 0u64..1_000,
        mcmc in any::<bool>(),
    ) {
        let sys = system(n, seed);
        let config = InferenceConfig::default();
        let backend = backend_of(mcmc, seed);
        let fresh = backend.infer(&sys, &config);

        let cache = FleetBlueprintCache::new(8);
        let sig = TopologySignature::new(&sys, &config, &backend);
        let (published, ev) =
            cache.get_or_solve_infallible(&sig, || backend.infer(&sys, &config));
        prop_assert_eq!(ev, FleetCacheEvent::Miss);
        let (hit, ev) = cache.get_or_solve_infallible(&sig, || {
            panic!("second lookup of the same signature must not re-solve")
        });
        prop_assert_eq!(ev, FleetCacheEvent::Hit);
        assert_bit_identical(&published, &fresh)?;
        assert_bit_identical(&hit, &fresh)?;
    }

    /// Different geometries must not collide canonically: the
    /// signature separates what the solver would treat differently.
    #[test]
    fn distinct_systems_get_distinct_keys(
        n in 3usize..9,
        seed in 0u64..500,
    ) {
        let a = system(n, seed);
        let b = system(n, seed + 7_919);
        let config = InferenceConfig::default();
        let backend = InferenceBackend::Gradient;
        let ka = TopologySignature::new(&a, &config, &backend).key();
        let kb = TopologySignature::new(&b, &config, &backend).key();
        // Random float targets make accidental canonical equality
        // impossible unless the systems really are equal.
        prop_assert!(ka != kb || a == b);
    }
}
