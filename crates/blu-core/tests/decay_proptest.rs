//! Property tests of estimator decay (staleness windowing, §3.7).
//!
//! [`OutcomeEstimator::decay`] ages the accumulated access counters by
//! a retention factor `keep`. The properties a re-measurement loop
//! silently relies on:
//!
//! * counters never go negative or exceed their pre-decay values —
//!   decay only forgets, it never invents evidence;
//! * the `accessed ≤ observed` books invariant survives, so every
//!   post-decay empirical probability stays inside `[0, 1]`;
//! * decay is **monotone in `keep`**: retaining more can never leave
//!   fewer samples, component-wise;
//! * out-of-range and non-finite `keep` values are clamped into
//!   `[0, 1]` (NaN retains everything) instead of erasing the books.

use blu_core::measure::OutcomeEstimator;
use blu_sim::clientset::ClientSet;
use blu_sim::rng::DetRng;
use blu_traces::stats::EmpiricalAccess;
use proptest::prelude::*;

const N: usize = 6;

/// Build an estimator with a random but reproducible history.
fn seeded_estimator(seed: u64, subframes: u16) -> OutcomeEstimator {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut est = OutcomeEstimator::new(N);
    for _ in 0..subframes {
        let mut observed = ClientSet::EMPTY;
        let mut accessed = ClientSet::EMPTY;
        for ue in 0..N {
            if rng.chance(0.7) {
                observed.insert(ue);
                if rng.chance(0.5) {
                    accessed.insert(ue);
                }
            }
        }
        if !observed.is_empty() {
            est.stats_mut().record(observed, accessed);
        }
    }
    est
}

fn counters(stats: &EmpiricalAccess) -> Vec<u64> {
    stats
        .obs_individual
        .iter()
        .chain(&stats.acc_individual)
        .chain(&stats.obs_pair)
        .chain(&stats.acc_pair)
        .copied()
        .collect()
}

/// `accessed ≤ observed` for every individual and pair counter.
fn books_consistent(stats: &EmpiricalAccess) -> bool {
    stats
        .acc_individual
        .iter()
        .zip(&stats.obs_individual)
        .chain(stats.acc_pair.iter().zip(&stats.obs_pair))
        .all(|(a, o)| a <= o)
}

proptest! {
    /// Decay only forgets: every counter stays within [0, before],
    /// and the accessed ≤ observed invariant survives, so all
    /// empirical probabilities remain valid.
    #[test]
    fn decay_never_inflates_or_corrupts(seed in any::<u64>(), subframes in 1u16..200, keep in 0.0f64..1.0) {
        let mut est = seeded_estimator(seed, subframes);
        let before = counters(est.stats());
        est.decay(keep);
        let after = counters(est.stats());
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(a <= b, "decay inflated a counter: {b} -> {a}");
        }
        prop_assert!(books_consistent(est.stats()));
        for ue in 0..N {
            if let Some(p) = est.stats().p_individual(ue) {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    /// Monotone in keep: retaining more history never leaves fewer
    /// samples in any counter.
    #[test]
    fn decay_is_monotone_in_keep(seed in any::<u64>(), subframes in 1u16..200, lo in 0.0f64..1.0, hi in 0.0f64..1.0) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut a = seeded_estimator(seed, subframes);
        let mut b = a.clone();
        a.decay(lo);
        b.decay(hi);
        for (x, y) in counters(a.stats()).iter().zip(&counters(b.stats())) {
            prop_assert!(x <= y, "keep {lo} left {x} samples but keep {hi} left {y}");
        }
    }

    /// Out-of-range keep clamps to the nearest bound; NaN and +inf
    /// retain everything rather than zeroing the books.
    #[test]
    fn out_of_range_keep_is_clamped(seed in any::<u64>(), subframes in 1u16..100) {
        let reference = seeded_estimator(seed, subframes);

        let mut zeroed = reference.clone();
        zeroed.decay(-3.5);
        prop_assert!(counters(zeroed.stats()).iter().all(|&c| c == 0));

        for keep in [2.0, f64::INFINITY, f64::NAN] {
            let mut kept = reference.clone();
            kept.decay(keep);
            prop_assert_eq!(counters(kept.stats()), counters(reference.stats()));
        }
    }
}
