//! Property tests of the fleet supervisor's per-cell health machine.
//!
//! [`CellSupervisor`] is deliberately a pure state machine — no I/O,
//! no clock, no RNG — precisely so these properties can be checked
//! over arbitrary interleavings of watchdog evidence:
//!
//! * every recorded transition is drawn from the machine's legal edge
//!   set (and its `from` chains to the previous `to`);
//! * the restart budget is **monotone**: `restarts_used` never
//!   decreases and never exceeds the configured maximum;
//! * `Quarantined` is **absorbing** within a run: once entered, no
//!   input sequence leaves it or records further transitions;
//! * watchdog bookkeeping never fires a stall before
//!   `stall_threshold_steps` consecutive silent steps.

use blu_core::runtime::supervisor::{
    CellHealth, CellSupervisor, FailureKind, HealthCause, RestartDecision, SupervisorConfig,
};
use proptest::prelude::*;

/// One step of randomized watchdog evidence.
#[derive(Debug, Clone, Copy)]
enum Input {
    Breaker { open: bool },
    Step { heartbeats: u64, hard_stalled: bool },
    Failure(FailureKind),
    RestartComplete,
}

fn input_strategy() -> impl Strategy<Value = Input> {
    // (which arm, breaker-open, heartbeats, hard-stalled, which kind)
    (0u8..4, any::<bool>(), 0u64..3, any::<bool>(), 0u8..3).prop_map(
        |(arm, open, heartbeats, hard_stalled, kind)| match arm {
            0 => Input::Breaker { open },
            1 => Input::Step {
                heartbeats,
                hard_stalled,
            },
            2 => Input::Failure(match kind {
                0 => FailureKind::Panic,
                1 => FailureKind::Stall,
                _ => FailureKind::Error,
            }),
            _ => Input::RestartComplete,
        },
    )
}

/// The machine's legal edge set: anything else is a bug.
fn edge_is_legal(from: CellHealth, to: CellHealth, cause: HealthCause) -> bool {
    use CellHealth::*;
    use HealthCause::*;
    matches!(
        (from, to, cause),
        (Healthy, Degraded, BreakerOpen)
            | (Degraded, Healthy, BreakerRecovered)
            | (
                Healthy | Degraded | Restarting,
                Restarting,
                Panic | Stall | Error
            )
            | (Restarting, Healthy, RestartComplete)
            | (
                Healthy | Degraded | Restarting,
                Quarantined,
                RetryBudgetExhausted
            )
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_evidence_never_reaches_an_illegal_state(
        max_restarts in 0u32..5,
        threshold in 1u32..5,
        inputs in proptest::collection::vec(input_strategy(), 0..200),
    ) {
        let config = SupervisorConfig {
            max_restarts,
            stall_threshold_steps: threshold,
            ..Default::default()
        };
        let mut m = CellSupervisor::new(&config);
        let mut prev_restarts = 0u32;
        let mut quarantined_at: Option<usize> = None;
        let mut silent_run = 0u64;

        for (sf, input) in inputs.iter().enumerate() {
            let before = m.health();
            let transitions_before = m.transitions().len();
            match *input {
                Input::Breaker { open } => m.note_breaker(sf as u64, open),
                Input::Step { heartbeats, hard_stalled } => {
                    let fired = m.note_step(sf as u64, heartbeats, hard_stalled);
                    if hard_stalled {
                        prop_assert_eq!(fired, Some(FailureKind::Stall),
                            "a hard stall must fire immediately");
                        silent_run = 0;
                    } else if heartbeats == 0 {
                        silent_run += 1;
                        if fired.is_some() {
                            prop_assert!(silent_run >= u64::from(threshold),
                                "stall fired after only {} silent steps", silent_run);
                            silent_run = 0;
                        }
                    } else {
                        prop_assert_eq!(fired, None, "a live step never fires the watchdog");
                        silent_run = 0;
                    }
                }
                Input::Failure(kind) => {
                    match m.on_failure(sf as u64, kind) {
                        RestartDecision::Restart { attempt } => {
                            prop_assert!(before != CellHealth::Quarantined);
                            prop_assert_eq!(attempt, m.restarts_used());
                            prop_assert_eq!(m.health(), CellHealth::Restarting);
                        }
                        RestartDecision::Quarantine => {
                            prop_assert_eq!(m.health(), CellHealth::Quarantined);
                        }
                    }
                }
                Input::RestartComplete => m.restart_complete(sf as u64),
            }

            // Budget monotonicity, bounded by the configuration.
            prop_assert!(m.restarts_used() >= prev_restarts, "budget went backwards");
            prop_assert!(m.restarts_used() <= max_restarts, "budget overdrawn");
            prev_restarts = m.restarts_used();

            // Quarantine is absorbing: no exit, no further ledger.
            if let Some(at) = quarantined_at {
                prop_assert_eq!(m.health(), CellHealth::Quarantined,
                    "left quarantine entered at input {}", at);
                prop_assert_eq!(m.transitions().len(), transitions_before);
            }
            if m.health() == CellHealth::Quarantined && quarantined_at.is_none() {
                quarantined_at = Some(sf);
            }
        }

        // Every recorded transition is a legal edge, and they chain.
        let transitions = m.transitions();
        for t in transitions {
            prop_assert!(edge_is_legal(t.from, t.to, t.cause),
                "illegal edge {:?} -> {:?} via {:?}", t.from, t.to, t.cause);
        }
        let mut state = CellHealth::Healthy;
        for t in transitions {
            prop_assert_eq!(t.from, state, "transition chain broke");
            state = t.to;
        }
        prop_assert_eq!(state, m.health(), "ledger disagrees with final health");
        let sfs: Vec<u64> = transitions.iter().map(|t| t.at_subframe).collect();
        prop_assert!(sfs.windows(2).all(|w| w[0] <= w[1]), "ledger out of order");
    }
}
